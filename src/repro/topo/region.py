"""One region of a fleet: routers, channels, and local artifacts.

A :class:`RegionWorld` owns the routers of one partition region, every
outbound :class:`~repro.topo.links.FleetChannel` (the direction whose
source lives here), and the region's artifact streams: the delivery
log (execution order), the span list, and a private
:class:`~repro.obs.MetricsRegistry`.

The same class serves both execution modes.  Serially, every region
shares one :class:`~repro.sim.Simulator` and cross-region sends are
scheduled straight into the destination world; sharded, each region
has its own simulator and cross-region sends land in an outbox the
conductor drains at window boundaries.  Because artifacts are kept
per region in *both* modes, the byte-identical serial-vs-sharded
comparison reduces to event-execution order — which the delivery
ranks pin down (see :mod:`repro.topo.links`).
"""

from __future__ import annotations

from typing import Any, Callable

from ..core.instrument import acting_as
from ..network.neighbor import NeighborEntry
from ..network.packets import DataPacket
from ..network.router import Router
from ..network.routing.link_state import LinkState
from ..obs.metrics import MetricsRegistry
from ..sim.engine import Rank, Simulator
from .links import Delivery, FleetChannel
from .spec import FleetSpec, bfs_distances, iface_index, link_id, static_fibs
from .traffic import Flow

#: Routing modes: ``static`` pre-installs oracle FIBs and neighbor
#: tables (no control traffic — the scale/benchmark mode); ``protocol``
#: runs hellos + LSP flooding to convergence (the fidelity mode).
ROUTING_MODES = ("static", "protocol")

#: One cross-region delivery in flight: (arrival, rank, dst, packet).
CrossEntry = Delivery


class RegionWorld:
    """The routers and links of one region, plus its artifact streams."""

    def __init__(
        self,
        spec: FleetSpec,
        region_id: int,
        sim: Simulator,
        routing: str = "static",
        cross_sink: Callable[[CrossEntry], None] | None = None,
        hello_interval: float = 1.0,
        dead_interval: float = 3.5,
    ):
        self.spec = spec
        self.region_id = region_id
        self.sim = sim
        self.routing = routing
        self.registry = MetricsRegistry()
        self.deliveries: list[dict[str, Any]] = []
        self.spans: list[dict[str, Any]] = []
        self.routers: dict[int, Router] = {}
        self.channels: dict[tuple[int, int], FleetChannel] = {}
        self.outbox: list[CrossEntry] = []
        self._cross_sink = cross_sink if cross_sink is not None else self.outbox.append
        self._members = set(spec.regions[region_id])
        self._ifaces = iface_index(spec)

        for node in sorted(self._members):
            router = Router(
                node,
                sim.clock(),
                routing_cls=LinkState,
                hello_interval=hello_interval,
                dead_interval=dead_interval,
                metrics=self.registry,
            )
            router.on_deliver = self._record_delivery
            self.routers[node] = router
        # Interfaces in ascending-neighbor order so every region agrees
        # with iface_index(); channels for every direction sourced here.
        for node in sorted(self._members):
            router = self.routers[node]
            for peer in self._neighbors(node):
                interface = router.add_interface()
                assert interface.index == self._ifaces[(node, peer)]
                channel = FleetChannel(
                    src=node,
                    dst=peer,
                    delay=spec.link_delay,
                    link_id=link_id(spec, node, peer),
                    now=lambda: self.sim.now,
                    sink=(
                        self._local_sink
                        if peer in self._members
                        else self._cross_sink
                    ),
                    metrics=self.registry,
                )
                interface.send = channel.send
                self.channels[(node, peer)] = channel
        if routing == "static":
            self._install_static_state()
        elif routing != "protocol":
            raise ValueError(f"routing must be one of {ROUTING_MODES}")

    def start_routing(self) -> None:
        """Start hello/LSP machinery (protocol mode only).

        Deliberately separate from construction: the first hellos go
        out synchronously, so in serial mode every region's world must
        exist before any router starts.
        """
        if self.routing == "protocol":
            for node in sorted(self._members):
                self.routers[node].start()

    # ------------------------------------------------------------------
    def _neighbors(self, node: int) -> list[int]:
        return sorted(
            p for (n, p) in self._ifaces if n == node
        )

    def _install_static_state(self) -> None:
        fibs = static_fibs(self.spec)
        for node in sorted(self._members):
            router = self.routers[node]
            entries = {
                peer: NeighborEntry(
                    address=peer,
                    interface=self._ifaces[(node, peer)],
                    last_heard=0.0,
                )
                for peer in self._neighbors(node)
            }
            with acting_as("neighbor"):
                router.neighbor.state.entries = entries
            with acting_as("forwarding"):
                router.forwarding.install(fibs[node])

    # ------------------------------------------------------------------
    # Delivery paths
    # ------------------------------------------------------------------
    def _local_sink(self, entry: CrossEntry) -> None:
        arrival, rank, dst, packet = entry
        self.sim.schedule_at(
            arrival, lambda: self._receive(rank, dst, packet), rank=rank
        )

    def inject(self, entries: list[CrossEntry]) -> None:
        """Schedule cross-region deliveries handed over by the conductor."""
        for entry in entries:
            self._local_sink(entry)

    def _receive(self, rank: Rank, dst: int, packet: Any) -> None:
        # The rank's stream id is the directed link id; decode the
        # sender to find the receiving interface — both endpoint
        # regions derive the same numbering from the spec alone.
        edge = self.spec.edges[rank[2] // 2]
        src = edge[0] if rank[2] % 2 == 0 else edge[1]
        self.routers[dst].receive(packet, self._ifaces[(dst, src)])

    def drain_outbox(self) -> list[CrossEntry]:
        """Hand the accumulated cross-region sends to the conductor."""
        # Drain in place: channel sinks hold a bound append to this
        # exact list, so rebinding self.outbox would orphan them.
        entries = list(self.outbox)
        self.outbox.clear()
        return entries

    def _record_delivery(self, packet: DataPacket) -> None:
        t = self.sim.now
        record = {
            "t": t,
            "src": packet.src,
            "dst": packet.dst,
            "ident": packet.header["ident"],
        }
        self.deliveries.append(record)
        self.spans.append(
            {
                "sid": len(self.spans),
                "stack": f"region{self.region_id}",
                "direction": "up",
                "caller": "fleet",
                "actor": f"node:{packet.dst}",
                "t0": t,
                "t1": t,
                "w0": 0.0,
                "w1": 0.0,
                "pdu": f"{packet.src}->{packet.dst}#{packet.header['ident']}",
            }
        )

    # ------------------------------------------------------------------
    # Traffic and faults
    # ------------------------------------------------------------------
    def schedule_traffic(self, flows: list[Flow]) -> int:
        """Schedule this region's share of the plan (flows sourced here)."""
        scheduled = 0
        for flow in flows:
            if flow.src not in self._members:
                continue
            for k in range(flow.packets):
                self.sim.schedule_at(
                    flow.start + k * flow.interval,
                    self._sender(flow, k),
                )
                scheduled += 1
        return scheduled

    def _sender(self, flow: Flow, k: int) -> Callable[[], None]:
        # TTL must cover any simple path in the fleet (a 32x32 grid has
        # 62-hop shortest paths); n+1 does, and is a pure spec function.
        ttl = len(self.spec.nodes) + 1

        def send() -> None:
            self.routers[flow.src].send_data(
                flow.dst, payload=b"", ident=flow.ident(k), ttl=ttl
            )

        return send

    def set_link_alive(self, a: int, b: int, alive: bool) -> None:
        """Cut or restore the directions of edge (a, b) sourced here."""
        for key in ((a, b), (b, a)):
            channel = self.channels.get(key)
            if channel is not None:
                channel.alive = alive

    def schedule_link_change(self, t: float, a: int, b: int, alive: bool) -> None:
        """Schedule a cut/restore of edge (a, b) at virtual time ``t``."""
        self.sim.schedule_at(t, lambda: self.set_link_alive(a, b, alive))

    # ------------------------------------------------------------------
    # Convergence oracle (protocol mode)
    # ------------------------------------------------------------------
    def routes_correct(self) -> bool:
        """Every local FIB reaches every reachable node along shortest
        paths of the full graph — checkable locally because distances
        are a pure function of the spec."""
        fibs = {
            node: self.routers[node].forwarding.fib()
            for node in sorted(self._members)
        }
        for dst in self.spec.nodes:
            dist = bfs_distances(self.spec, dst)
            for node, fib in fibs.items():
                if dst == node or node not in dist:
                    continue
                hop = fib.get(dst)
                if hop is None:
                    return False
                if dist.get(hop, 1 << 30) != dist[node] - 1:
                    return False
        return True

    # ------------------------------------------------------------------
    def result(self) -> dict[str, Any]:
        """This region's picklable artifact bundle."""
        return {
            "region": self.region_id,
            "deliveries": self.deliveries,
            "spans": self.spans,
            "snapshot": self.registry.snapshot(),
            "events": self.sim.events_processed,
        }
