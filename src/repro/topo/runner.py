"""The fleet conductor: serial, in-process sharded, and forked runs.

Three execution modes over the same :class:`~repro.topo.region
.RegionWorld` regions, producing the same artifacts byte-for-byte:

* **serial** — every region on one simulator; cross-region sends are
  scheduled straight into the destination region.  The ground truth.
* **sharded (in-process)** — one simulator per region, advanced in
  conservative-lookahead windows; cross-region sends travel through
  outboxes the conductor drains at window boundaries.
* **sharded (forked)** — the same window algorithm, but each region
  lives in a forked :class:`~repro.par.ForkPool` worker and converses
  with the conductor over pre-fork :func:`multiprocessing.Pipe` pairs.

The conservative window rule: with every inter-region link having
delay Δ (the lookahead) and L the global lower bound on pending event
times, every region may safely execute the half-open window
``[L, L + Δ)`` — any cross-region send inside the window departs at
``t >= L`` and so arrives at ``t + Δ >= L + Δ``, beyond the horizon.
Events at *exactly* ``L + Δ`` must wait for the next window (the
classic off-by-one the shard-boundary tests pin), which is why region
simulators run with ``inclusive=False``.  Each round advances the
bound by at least Δ, so progress is guaranteed; delivery ranks (see
:mod:`repro.topo.links`) make same-instant execution order identical
to the serial run's.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from ..core.errors import ConfigurationError
from ..obs.export import merge_jsonl, spans_to_jsonl
from ..obs.metrics import MetricsRegistry
from ..par.pool import ForkPool, effective_jobs
from ..sim.engine import Simulator
from .region import CrossEntry, RegionWorld
from .spec import FleetSpec, static_fibs
from .traffic import Flow, plan_traffic

MODES = ("serial", "sharded")

#: Virtual seconds of control-plane warmup before traffic starts in
#: protocol mode (hello exchange + LSP flooding on fleet diameters).
PROTOCOL_WARMUP = 30.0

#: How long the parent waits on a region pipe before rechecking the
#: worker's future for a crash (seconds, wall clock).
_PIPE_POLL_S = 0.5


@dataclass
class FleetResult:
    """All artifacts of one fleet run, region-structured and picklable."""

    spec: FleetSpec
    mode: str
    routing: str
    regions: list[dict[str, Any]]
    converged: bool | None = None
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def deliveries(self) -> list[dict[str, Any]]:
        """All deliveries: per-region execution order, region-major."""
        return [d for region in self.regions for d in region["deliveries"]]

    @property
    def events(self) -> int:
        """Total executed events (conductor-recorded: per-region sim
        counts double-count the shared serial simulator)."""
        return int(self.extras.get("events", 0))

    def merged_snapshot(self) -> dict[str, Any]:
        """Region registries folded in region order (names are unique
        per node/link, so the fold equals a single shared registry)."""
        registry = MetricsRegistry()
        for region in self.regions:
            registry.merge_snapshot(region["snapshot"])
        return registry.snapshot()

    def summary(self) -> dict[str, Any]:
        """Run shape and headline counts (the ``summary.json`` payload)."""
        return {
            "spec": self.spec.name,
            "nodes": len(self.spec.nodes),
            "edges": len(self.spec.edges),
            "shards": self.spec.shards,
            "mode": self.mode,
            "routing": self.routing,
            "delivered": len(self.deliveries),
            "converged": self.converged,
            "events": self.events,
        }


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run_fleet(
    spec: FleetSpec,
    mode: str = "serial",
    routing: str = "static",
    flows: int = 8,
    packets: int = 10,
    interval: float = 0.01,
    duration: float | None = None,
    jobs: int | None = None,
    link_changes: list[tuple[float, int, int, bool]] | None = None,
) -> FleetResult:
    """Run a fleet to quiescence (or ``duration``) and collect artifacts.

    ``mode="sharded"`` uses the spec's region partition; with
    ``jobs`` >= 2 (or 0 = all CPUs) each region runs in a forked
    worker, otherwise the window loop interleaves regions in-process.
    ``link_changes`` are scheduled ``(t, a, b, alive)`` cut/restore
    events, applied identically in every mode.
    """
    if mode not in MODES:
        raise ConfigurationError(f"mode must be one of {MODES}, got {mode!r}")
    if routing == "protocol" and duration is None:
        raise ConfigurationError(
            "protocol routing never quiesces (periodic hellos); pass duration"
        )
    traffic_at = PROTOCOL_WARMUP if routing == "protocol" else 0.0
    plan = [
        replace(flow, start=flow.start + traffic_at)
        for flow in plan_traffic(spec, flows, packets, interval=interval)
    ]
    if routing == "static":
        static_fibs(spec)  # warm the pure cache once (pre-fork)
    if mode == "serial" or spec.shards == 1:
        return _run_serial(spec, mode, routing, plan, duration, link_changes)
    if effective_jobs(jobs) > 1:
        return _run_forked(spec, routing, plan, duration, link_changes)
    return _run_windows_inprocess(spec, routing, plan, duration, link_changes)


def _prepare(world: RegionWorld, plan: list[Flow], link_changes) -> None:
    world.start_routing()
    world.schedule_traffic(plan)
    for t, a, b, alive in link_changes or []:
        world.schedule_link_change(t, a, b, alive)


def _finish(world: RegionWorld, routing: str) -> dict[str, Any]:
    result = world.result()
    result["converged"] = world.routes_correct() if routing == "protocol" else None
    return result


def _assemble(
    spec: FleetSpec, mode: str, routing: str, regions: list[dict[str, Any]]
) -> FleetResult:
    converged: bool | None = None
    if routing == "protocol":
        converged = all(region["converged"] for region in regions)
    return FleetResult(
        spec=spec, mode=mode, routing=routing, regions=regions, converged=converged
    )


# ----------------------------------------------------------------------
# Serial
# ----------------------------------------------------------------------
def _run_serial(
    spec: FleetSpec,
    mode: str,
    routing: str,
    plan: list[Flow],
    duration: float | None,
    link_changes,
) -> FleetResult:
    sim = Simulator()
    worlds: dict[int, RegionWorld] = {}

    def dispatch(entry: CrossEntry) -> None:
        worlds[spec.region_of(entry[2])].inject([entry])

    for region_id in range(spec.shards):
        worlds[region_id] = RegionWorld(
            spec, region_id, sim, routing=routing, cross_sink=dispatch
        )
    for world in worlds.values():
        _prepare(world, plan, link_changes)
    if duration is None:
        sim.run_until_idle()
    else:
        sim.run(until=duration)
    regions = [_finish(worlds[r], routing) for r in range(spec.shards)]
    result = _assemble(spec, mode, routing, regions)
    result.extras["events"] = sim.events_processed
    return result


# ----------------------------------------------------------------------
# Sharded, in-process
# ----------------------------------------------------------------------
def _run_windows_inprocess(
    spec: FleetSpec,
    routing: str,
    plan: list[Flow],
    duration: float | None,
    link_changes,
) -> FleetResult:
    worlds = [
        RegionWorld(spec, region_id, Simulator(), routing=routing)
        for region_id in range(spec.shards)
    ]
    for world in worlds:
        _prepare(world, plan, link_changes)
    delta = spec.link_delay
    windows = 0
    while True:
        for world in worlds:
            for entry in world.drain_outbox():
                worlds[spec.region_of(entry[2])].inject([entry])
        bound = min(world.sim.next_event_time() for world in worlds)
        if bound == float("inf") or (duration is not None and bound > duration):
            break
        windows += 1
        horizon = bound + delta
        if duration is not None and horizon > duration:
            # Final window [bound, duration]: narrower than Δ, so any
            # cross send inside it still arrives past `duration`.
            for world in worlds:
                world.sim.run(until=duration, inclusive=True)
        else:
            for world in worlds:
                world.sim.run(until=horizon, inclusive=False)
    regions = [_finish(world, routing) for world in worlds]
    result = _assemble(spec, "sharded", routing, regions)
    result.extras["events"] = sum(world.sim.events_processed for world in worlds)
    result.extras["windows"] = windows
    return result


# ----------------------------------------------------------------------
# Sharded, forked workers
# ----------------------------------------------------------------------
#: Context inherited by forked region workers (set pre-fork).  The
#: usual repro.par pattern: closures and simulators cannot cross a
#: pickle boundary, so workers rebuild their region from the spec and
#: converse over inherited pipes.
_FLEET_CONTEXT: dict[str, Any] | None = None


def _region_worker(region_id: int) -> dict[str, Any]:
    """One forked worker: build the region, then serve window commands."""
    ctx = _FLEET_CONTEXT
    if ctx is None:
        raise ConfigurationError("fleet worker forked without context")
    for index, (parent_end, child_end) in enumerate(ctx["pipes"]):
        parent_end.close()
        if index != region_id:
            child_end.close()
    conn = ctx["pipes"][region_id][1]
    world = RegionWorld(
        ctx["spec"], region_id, Simulator(), routing=ctx["routing"]
    )
    _prepare(world, ctx["plan"], ctx["link_changes"])
    while True:
        command = conn.recv()
        if command[0] == "window":
            _, until, inclusive, entries = command
            world.inject(entries)
            if until is not None:
                world.sim.run(until=until, inclusive=inclusive)
            conn.send((world.sim.next_event_time(), world.drain_outbox()))
        elif command[0] == "finish":
            conn.close()
            return _finish(world, ctx["routing"])
        else:  # pragma: no cover - protocol bug guard
            raise ConfigurationError(f"unknown fleet command {command[0]!r}")


def _recv(conn: Any, future: Any) -> Any:
    """Receive from a region pipe, failing fast if the worker died."""
    while not conn.poll(_PIPE_POLL_S):
        if future.done():
            future.result()  # raises the worker's exception
            raise ConfigurationError("fleet worker exited mid-protocol")
    return conn.recv()


def _run_forked(
    spec: FleetSpec,
    routing: str,
    plan: list[Flow],
    duration: float | None,
    link_changes,
) -> FleetResult:
    global _FLEET_CONTEXT
    import multiprocessing

    context = multiprocessing.get_context("fork")
    pipes = [context.Pipe() for _ in range(spec.shards)]
    _FLEET_CONTEXT = {
        "spec": spec,
        "routing": routing,
        "plan": plan,
        "link_changes": link_changes,
        "pipes": pipes,
    }
    delta = spec.link_delay
    windows = 0
    try:
        # One *blocking* item per region, so the pool must hold exactly
        # one worker per region — a smaller pool would deadlock.
        with ForkPool(_region_worker, jobs=spec.shards) as pool:
            if pool.jobs == 1:  # fork unavailable: same loop, in-process
                _FLEET_CONTEXT = None
                return _run_windows_inprocess(
                    spec, routing, plan, duration, link_changes
                )
            futures = [pool.submit(region) for region in range(spec.shards)]
            conns = [parent_end for parent_end, _ in pipes]
            next_times = [float("inf")] * spec.shards
            pending: list[list[CrossEntry]] = [[] for _ in range(spec.shards)]

            def exchange(until: float | None, inclusive: bool) -> None:
                for region, conn in enumerate(conns):
                    conn.send(("window", until, inclusive, pending[region]))
                    pending[region] = []
                for region, conn in enumerate(conns):
                    next_times[region], outbox = _recv(conn, futures[region])
                    for entry in outbox:
                        pending[spec.region_of(entry[2])].append(entry)

            exchange(None, True)  # probe initial event times
            while True:
                bound = min(
                    next_times
                    + [entry[0] for queue in pending for entry in queue]
                )
                if bound == float("inf") or (
                    duration is not None and bound > duration
                ):
                    break
                windows += 1
                horizon = bound + delta
                if duration is not None and horizon > duration:
                    exchange(duration, True)
                else:
                    exchange(horizon, False)
            for conn in conns:
                conn.send(("finish",))
            regions = [future.result() for future in futures]
    finally:
        _FLEET_CONTEXT = None
        for parent_end, child_end in pipes:
            parent_end.close()
            child_end.close()
    result = _assemble(spec, "sharded", routing, regions)
    result.extras["events"] = sum(region["events"] for region in regions)
    result.extras["windows"] = windows
    result.extras["workers"] = spec.shards
    return result


# ----------------------------------------------------------------------
# Canonical artifact files
# ----------------------------------------------------------------------
def write_artifacts(result: FleetResult, out_dir: Any) -> dict[str, str]:
    """Write the canonical artifact set; returns {artifact: path}.

    * ``deliveries.jsonl`` — every delivery, region-major in per-region
      execution order (the byte-for-byte delivery-order witness);
    * ``spans-r<N>.jsonl`` — each region's trace, virtual-clock spans;
    * ``spans.jsonl`` — the regions merged via
      :func:`~repro.obs.export.merge_jsonl` (sids rebased);
    * ``metrics.json`` — the merged metrics snapshot;
    * ``summary.json`` — run shape and counts.

    Every file depends only on simulated behavior, so a serial and a
    sharded run of the same spec must produce identical bytes.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths: dict[str, str] = {}

    deliveries = out / "deliveries.jsonl"
    with open(deliveries, "w", encoding="utf-8") as fp:
        for record in result.deliveries:
            fp.write(json.dumps(record, sort_keys=True) + "\n")
    paths["deliveries"] = str(deliveries)

    region_files = []
    for region in result.regions:
        region_path = out / f"spans-r{region['region']}.jsonl"
        spans_to_jsonl(region["spans"], region_path)
        region_files.append(region_path)
        paths[f"spans-r{region['region']}"] = str(region_path)
    merged = out / "spans.jsonl"
    merge_jsonl(region_files, merged)
    paths["spans"] = str(merged)

    metrics = out / "metrics.json"
    metrics.write_text(
        json.dumps(result.merged_snapshot(), sort_keys=True, indent=1) + "\n"
    )
    paths["metrics"] = str(metrics)

    summary = out / "summary.json"
    summary.write_text(json.dumps(result.summary(), sort_keys=True, indent=1) + "\n")
    paths["summary"] = str(summary)
    return paths
