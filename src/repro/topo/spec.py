"""Fleet topology declaration: generators, partitioning, oracle FIBs.

A :class:`FleetSpec` is a frozen, hashable description of a routed
fleet — node set, edge set, link delay, region partition, seed.  Every
derived structure here (interface numbering, BFS distances, oracle
next hops, region assignment) is a **pure function of the spec**, so
the serial conductor, each forked region worker, and any test can
recompute it independently and agree bit-for-bit without exchanging
state.

Generators produce the canonical shapes of the scale experiments:
star, ring, grid, fat-tree, and seeded random graphs, from a handful
of nodes up to thousands.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from functools import lru_cache

from ..core.errors import ConfigurationError
from ..sim.rng import derive_seed

#: Generator names accepted by :func:`make_spec` and the CLI.
KINDS = ("star", "ring", "grid", "fat-tree", "random")

Edge = tuple[int, int]


@dataclass(frozen=True)
class FleetSpec:
    """An immutable fleet description; every derived map is pure."""

    name: str
    nodes: tuple[int, ...]
    edges: tuple[Edge, ...]
    regions: tuple[tuple[int, ...], ...]
    link_delay: float = 0.005
    seed: int = 0

    def __post_init__(self) -> None:
        """Validate shape invariants once; everything downstream trusts them."""
        node_set = set(self.nodes)
        if len(node_set) != len(self.nodes):
            raise ConfigurationError("duplicate node addresses in spec")
        for a, b in self.edges:
            if a >= b:
                raise ConfigurationError(f"edge ({a}, {b}) not normalized a < b")
            if a not in node_set or b not in node_set:
                raise ConfigurationError(f"edge ({a}, {b}) references unknown node")
        covered = [n for region in self.regions for n in region]
        if sorted(covered) != sorted(self.nodes):
            raise ConfigurationError("regions are not a partition of the nodes")
        if self.link_delay <= 0:
            raise ConfigurationError("link_delay must be positive")

    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        """Number of regions in the partition."""
        return len(self.regions)

    def region_of(self, node: int) -> int:
        """The region index a node belongs to."""
        return _region_map(self)[node]

    def cross_edges(self) -> list[Edge]:
        """Edges whose endpoints live in different regions."""
        rmap = _region_map(self)
        return [(a, b) for a, b in self.edges if rmap[a] != rmap[b]]

    def with_regions(self, shards: int) -> "FleetSpec":
        """The same graph re-partitioned into ``shards`` regions."""
        return FleetSpec(
            name=self.name,
            nodes=self.nodes,
            edges=self.edges,
            regions=assign_regions(self.nodes, self.edges, shards),
            link_delay=self.link_delay,
            seed=self.seed,
        )


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def star(n: int) -> tuple[tuple[int, ...], tuple[Edge, ...]]:
    """Node 1 is the hub; 2..n are leaves."""
    if n < 2:
        raise ConfigurationError("star needs >= 2 nodes")
    nodes = tuple(range(1, n + 1))
    return nodes, tuple((1, leaf) for leaf in range(2, n + 1))


def ring(n: int) -> tuple[tuple[int, ...], tuple[Edge, ...]]:
    """A cycle 1-2-…-n-1."""
    if n < 3:
        raise ConfigurationError("ring needs >= 3 nodes")
    nodes = tuple(range(1, n + 1))
    edges = [(i, i + 1) for i in range(1, n)]
    edges.append((1, n))
    return nodes, tuple(sorted(edges))


def grid(rows: int, cols: int) -> tuple[tuple[int, ...], tuple[Edge, ...]]:
    """A rows x cols mesh, row-major addressing from 1."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise ConfigurationError("grid needs >= 2 nodes")
    def addr(r: int, c: int) -> int:
        return r * cols + c + 1

    nodes = tuple(range(1, rows * cols + 1))
    edges: list[Edge] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((addr(r, c), addr(r, c + 1)))
            if r + 1 < rows:
                edges.append((addr(r, c), addr(r + 1, c)))
    return nodes, tuple(sorted(edges))


def fat_tree(k: int) -> tuple[tuple[int, ...], tuple[Edge, ...]]:
    """A k-ary fat tree: (k/2)^2 core, k pods of k/2 + k/2 switches,
    (k^3)/4 hosts.  Addresses are assigned core, then per-pod
    aggregation/edge, then hosts — contiguous and deterministic."""
    if k < 2 or k % 2:
        raise ConfigurationError("fat-tree needs even k >= 2")
    half = k // 2
    counter = 1

    def take(count: int) -> list[int]:
        nonlocal counter
        block = list(range(counter, counter + count))
        counter += count
        return block

    core = take(half * half)
    edges: list[Edge] = []
    hosts: list[int] = []
    aggs: list[list[int]] = []
    eds: list[list[int]] = []
    for _pod in range(k):
        agg = take(half)
        edge_sw = take(half)
        aggs.append(agg)
        eds.append(edge_sw)
        for i, a in enumerate(agg):
            # Aggregation switch i of every pod uplinks to core block i.
            for c in core[i * half : (i + 1) * half]:
                edges.append((min(a, c), max(a, c)))
            for e in edge_sw:
                edges.append((min(a, e), max(a, e)))
    for pod in range(k):
        for e in eds[pod]:
            for h in take(half):
                hosts.append(h)
                edges.append((min(e, h), max(e, h)))
    nodes = tuple(range(1, counter))
    return nodes, tuple(sorted(set(edges)))


def random_graph(
    n: int, degree: int, seed: int
) -> tuple[tuple[int, ...], tuple[Edge, ...]]:
    """A connected seeded random graph: a ring backbone (connectivity)
    plus extra edges until the average degree reaches ``degree``."""
    if n < 3:
        raise ConfigurationError("random graph needs >= 3 nodes")
    nodes, edges = ring(n)
    present = set(edges)
    rng = random.Random(derive_seed(seed, f"random-graph:{n}:{degree}"))
    want = max(len(present), (n * degree) // 2)
    attempts = 0
    while len(present) < want and attempts < 20 * want:
        attempts += 1
        a = rng.randrange(1, n + 1)
        b = rng.randrange(1, n + 1)
        if a == b:
            continue
        present.add((min(a, b), max(a, b)))
    return nodes, tuple(sorted(present))


def make_spec(
    kind: str,
    nodes: int,
    shards: int = 1,
    seed: int = 0,
    link_delay: float = 0.005,
    degree: int = 4,
) -> FleetSpec:
    """Build a named generator's spec at roughly ``nodes`` nodes.

    ``grid`` rounds to the nearest rows x cols factorization;
    ``fat-tree`` picks the smallest even k whose tree reaches the
    request (so the exact node count may differ from ``nodes``).
    """
    if kind == "star":
        node_tuple, edges = star(nodes)
    elif kind == "ring":
        node_tuple, edges = ring(nodes)
    elif kind == "grid":
        rows = max(1, int(nodes**0.5))
        while nodes % rows:
            rows -= 1
        node_tuple, edges = grid(rows, nodes // rows)
    elif kind == "fat-tree":
        k = 2
        while k**3 // 4 + 5 * k * k // 4 < nodes:
            k += 2
        node_tuple, edges = fat_tree(k)
    elif kind == "random":
        node_tuple, edges = random_graph(nodes, degree, seed)
    else:
        raise ConfigurationError(f"unknown topology kind {kind!r}; one of {KINDS}")
    return FleetSpec(
        name=f"{kind}-{len(node_tuple)}",
        nodes=node_tuple,
        edges=edges,
        regions=assign_regions(node_tuple, edges, shards),
        link_delay=link_delay,
        seed=seed,
    )


# ----------------------------------------------------------------------
# Partitioning and pure derived maps
# ----------------------------------------------------------------------
def adjacency(
    nodes: tuple[int, ...], edges: tuple[Edge, ...]
) -> dict[int, list[int]]:
    """Neighbor lists, each sorted ascending (the interface order)."""
    adj: dict[int, list[int]] = {n: [] for n in nodes}
    for a, b in edges:
        adj[a].append(b)
        adj[b].append(a)
    return {n: sorted(peers) for n, peers in adj.items()}


def assign_regions(
    nodes: tuple[int, ...], edges: tuple[Edge, ...], shards: int
) -> tuple[tuple[int, ...], ...]:
    """Slice the graph into ``shards`` contiguous regions.

    Deterministic BFS from the lowest unvisited address, emitting nodes
    in visit order and cutting every ``ceil(n / shards)`` nodes — a
    locality-preserving partition (BFS keeps neighborhoods together)
    that any process can recompute from the spec alone.
    """
    if shards < 1:
        raise ConfigurationError("shards must be >= 1")
    shards = min(shards, len(nodes))
    adj = adjacency(nodes, edges)
    order: list[int] = []
    seen: set[int] = set()
    for root in sorted(nodes):
        if root in seen:
            continue
        seen.add(root)
        queue = deque([root])
        while queue:
            node = queue.popleft()
            order.append(node)
            for peer in adj[node]:
                if peer not in seen:
                    seen.add(peer)
                    queue.append(peer)
    per = -(-len(order) // shards)  # ceil
    regions = [
        tuple(sorted(order[i : i + per])) for i in range(0, len(order), per)
    ]
    while len(regions) < shards:
        regions.append(())
    return tuple(regions)


@lru_cache(maxsize=64)
def _region_map(spec: FleetSpec) -> dict[int, int]:
    return {
        node: index
        for index, region in enumerate(spec.regions)
        for node in region
    }


@lru_cache(maxsize=64)
def iface_index(spec: FleetSpec) -> dict[tuple[int, int], int]:
    """``(node, peer) -> interface index``: each node numbers its
    neighbors in ascending address order.  Both endpoint regions derive
    the same numbering because it depends only on the spec."""
    table: dict[tuple[int, int], int] = {}
    for node, peers in adjacency(spec.nodes, spec.edges).items():
        for index, peer in enumerate(peers):
            table[(node, peer)] = index
    return table


def bfs_distances(spec: FleetSpec, source: int) -> dict[int, int]:
    """Hop counts from ``source`` over the full graph."""
    adj = adjacency(spec.nodes, spec.edges)
    dist = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for peer in adj[node]:
            if peer not in dist:
                dist[peer] = dist[node] + 1
                queue.append(peer)
    return dist


@lru_cache(maxsize=16)
def static_fibs(spec: FleetSpec) -> dict[int, dict[int, int]]:
    """Oracle FIBs: shortest-path next hops with lowest-address
    tie-break, per node.  One reverse-BFS per destination, so the cost
    is O(nodes * edges) — computed once per spec (and inherited by
    forked workers through this cache when computed pre-fork)."""
    adj = adjacency(spec.nodes, spec.edges)
    fibs: dict[int, dict[int, int]] = {n: {} for n in spec.nodes}
    for dst in spec.nodes:
        dist = bfs_distances(spec, dst)
        for node in spec.nodes:
            if node == dst or node not in dist:
                continue
            # The next hop is the lowest-address neighbor strictly
            # closer to dst; BFS layers guarantee one exists.
            for peer in adj[node]:
                if dist.get(peer, 1 << 30) == dist[node] - 1:
                    fibs[node][dst] = peer
                    break
    return fibs


def flow_spec(spec: FleetSpec, ttl: int = 32) -> dict:
    """The fleet's oracle forwarding state in the declarative flow-spec
    shape (:meth:`repro.flow.spec.FlowSpec.from_dict`), so generated
    topologies feed straight into the T4/T5 symbolic analyzer."""
    return {
        "name": spec.name,
        "nodes": sorted(spec.nodes),
        "edges": [list(edge) for edge in sorted(spec.edges)],
        "fibs": {
            str(node): {str(dst): hop for dst, hop in sorted(fib.items())}
            for node, fib in sorted(static_fibs(spec).items())
        },
        "zones": [],
        "tenants": [],
        "ttl": ttl,
    }


def link_id(spec: FleetSpec, src: int, dst: int) -> int:
    """A globally unique id per *direction* of an edge, derived from
    the sorted edge list — the stable stream id inside delivery ranks."""
    key = (min(src, dst), max(src, dst))
    index = _edge_index(spec)[key]
    return index * 2 + (0 if src < dst else 1)


@lru_cache(maxsize=64)
def _edge_index(spec: FleetSpec) -> dict[Edge, int]:
    return {edge: index for index, edge in enumerate(spec.edges)}
