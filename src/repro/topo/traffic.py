"""Deterministic traffic plans over a fleet.

A plan is a list of :class:`Flow` records — (src, dst, start, packet
count, interval) — drawn from the spec's named ``traffic`` rng stream,
so the plan is a pure function of ``(spec, flows, packets)``: the
serial conductor and every sharded worker can rebuild it identically,
and nothing about the plan needs to cross a pipe.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.errors import ConfigurationError
from ..sim.rng import derive_seed
from .spec import FleetSpec

#: Ident space reserved per flow; packet k of flow f gets ident
#: ``f * FLOW_IDENT_STRIDE + k`` — globally unique, order-free.
FLOW_IDENT_STRIDE = 100_000


@dataclass(frozen=True)
class Flow:
    """One unidirectional packet train between two fleet nodes."""

    index: int
    src: int
    dst: int
    start: float
    packets: int
    interval: float

    def ident(self, k: int) -> int:
        """Globally unique packet id: flow index striped by packet number."""
        return self.index * FLOW_IDENT_STRIDE + k


def plan_traffic(
    spec: FleetSpec,
    flows: int,
    packets: int,
    interval: float = 0.01,
    spread: float = 0.25,
) -> list[Flow]:
    """Draw ``flows`` random src->dst trains from the ``traffic`` stream.

    Endpoints are distinct nodes drawn uniformly; start times spread
    over ``[0, spread)`` so trains overlap but do not align, which is
    what makes the C13 benchmark exercise concurrent multi-hop paths.
    """
    if flows < 1 or packets < 1:
        raise ConfigurationError("traffic plan needs flows >= 1, packets >= 1")
    if len(spec.nodes) < 2:
        raise ConfigurationError("traffic needs >= 2 nodes")
    rng = random.Random(derive_seed(spec.seed, "traffic"))
    plan: list[Flow] = []
    for index in range(flows):
        src = rng.choice(spec.nodes)
        dst = rng.choice(spec.nodes)
        while dst == src:
            dst = rng.choice(spec.nodes)
        start = round(rng.uniform(0.0, spread), 6)
        plan.append(
            Flow(
                index=index,
                src=src,
                dst=dst,
                start=start,
                packets=packets,
                interval=interval,
            )
        )
    return plan
