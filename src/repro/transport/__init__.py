"""Transport layer: the sublayered TCP (Fig 5), the lwIP-style
monolithic baseline (Section 4.2), ISN schemes, and the RFC 793 wire
format shared by the baseline and the interop shim."""

from . import quic
from .config import TcpConfig
from .isn import ClockIsn, CryptoIsn, ISN_SCHEMES, IsnScheme, TimerIsn
from .monolithic import MonolithicTcpHost, MonoTcpSocket
from .rfc793 import TCP_HEADER, TcpSegment
from .seqspace import SEQ_MOD, fold, seq_between, unfold
from .sublayered import Rfc793Shim, SublayeredTcpHost, SubTcpSocket, TimerCmSublayer

__all__ = [
    "ClockIsn",
    "CryptoIsn",
    "ISN_SCHEMES",
    "IsnScheme",
    "MonoTcpSocket",
    "MonolithicTcpHost",
    "Rfc793Shim",
    "SEQ_MOD",
    "SubTcpSocket",
    "SublayeredTcpHost",
    "TCP_HEADER",
    "TcpConfig",
    "TcpSegment",
    "TimerCmSublayer",
    "TimerIsn",
    "fold",
    "quic",
    "seq_between",
    "unfold",
]
