"""Shared transport configuration for both TCP implementations.

Keeping one config type means the C3 performance comparison and the C2
interop runs are parameterized identically on both sides.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import ConfigurationError
from .isn import ClockIsn, IsnScheme


@dataclass
class TcpConfig:
    """Tunables common to the monolithic and sublayered TCPs."""

    mss: int = 1000                    # max segment payload, bytes
    rto_initial: float = 0.2
    rto_min: float = 0.05
    rto_max: float = 10.0
    recv_buffer: int = 65535           # advertised-window ceiling
    initial_cwnd_segments: int = 2
    dupack_threshold: int = 3
    max_syn_retries: int = 8
    isn_scheme: IsnScheme = field(default_factory=ClockIsn)

    def __post_init__(self) -> None:
        if self.mss <= 0:
            raise ConfigurationError("mss must be positive")
        if self.recv_buffer < self.mss:
            raise ConfigurationError("recv_buffer must hold at least one segment")
        if self.rto_initial <= 0:
            raise ConfigurationError("rto_initial must be positive")

    @property
    def initial_cwnd(self) -> int:
        return self.initial_cwnd_segments * self.mss
