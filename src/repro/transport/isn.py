"""Initial-sequence-number schemes — CM's encapsulated mechanism.

Section 3: "RFC793 ... suggested choosing the initial sequence number
to be unique in time using the low-order bits of a clock ...  RFC1948
then proposed using a cryptographic hash of ports, addresses, and a
secret key ...  Regardless of the mechanism encapsulated, the main
function of CM is to choose ISNs that are unique and hard to predict."

Three schemes behind one interface, so the CM sublayer (and the
monolithic TCP) can swap them freely — the C5 replace experiment:

* :class:`ClockIsn` — RFC 793: a 32-bit clock ticking every 4 µs;
* :class:`CryptoIsn` — RFC 1948: clock + SHA-256(4-tuple, secret);
* :class:`TimerIsn` — Watson-style timer-based: a coarser clock whose
  tick exceeds the maximum segment lifetime, so sequence uniqueness
  follows from time alone.
"""

from __future__ import annotations

import hashlib

from ..core.clock import Clock
from .seqspace import SEQ_MOD

FourTuple = tuple[int, int, int, int]  # (laddr, lport, raddr, rport)


class IsnScheme:
    """Interface: pick an ISN for a connection attempt."""

    name = "abstract"

    def choose(self, clock: Clock, four_tuple: FourTuple) -> int:
        raise NotImplementedError


class ClockIsn(IsnScheme):
    """RFC 793: the low 32 bits of a clock incrementing every 4 µs."""

    name = "clock"

    def choose(self, clock: Clock, four_tuple: FourTuple) -> int:
        return int(clock.now() / 4e-6) % SEQ_MOD


class CryptoIsn(IsnScheme):
    """RFC 1948: clock component plus a keyed hash of the 4-tuple.

    The hash makes the per-connection offset unpredictable without the
    secret, defeating sequence-guessing attacks.
    """

    name = "crypto"

    def __init__(self, secret: bytes = b"repro-secret"):
        self.secret = secret

    def choose(self, clock: Clock, four_tuple: FourTuple) -> int:
        material = ",".join(str(x) for x in four_tuple).encode() + self.secret
        digest = hashlib.sha256(material).digest()
        offset = int.from_bytes(digest[:4], "big")
        base = int(clock.now() / 4e-6)
        return (base + offset) % SEQ_MOD


class TimerIsn(IsnScheme):
    """Watson-style: a coarse clock whose tick exceeds the maximum
    segment lifetime, so no two connection incarnations can reuse a
    sequence number while old segments survive in the network."""

    name = "timer"

    def __init__(self, max_segment_lifetime: float = 1.0):
        self.msl = max_segment_lifetime

    def choose(self, clock: Clock, four_tuple: FourTuple) -> int:
        epoch = int(clock.now() / self.msl)
        # spread incarnations across the space: one epoch = 2^16 seqs
        return (epoch << 16) % SEQ_MOD


#: Registry for the C5 replace benchmark.
ISN_SCHEMES: dict[str, type[IsnScheme]] = {
    cls.name: cls for cls in (ClockIsn, CryptoIsn, TimerIsn)
}
