"""The lwIP-style monolithic TCP baseline (Section 4.2's subject)."""

from .pcb import (
    CLOSED,
    CLOSE_WAIT,
    CLOSING,
    ESTABLISHED,
    FIN_WAIT_1,
    FIN_WAIT_2,
    LAST_ACK,
    LISTEN,
    SUBFUNCTIONS,
    SYN_RCVD,
    SYN_SENT,
    TIME_WAIT,
    make_pcb,
)
from .tcp import MonolithicTcpHost, MonoTcpSocket

__all__ = [
    "CLOSED",
    "CLOSE_WAIT",
    "CLOSING",
    "ESTABLISHED",
    "FIN_WAIT_1",
    "FIN_WAIT_2",
    "LAST_ACK",
    "LISTEN",
    "MonoTcpSocket",
    "MonolithicTcpHost",
    "SUBFUNCTIONS",
    "SYN_RCVD",
    "SYN_SENT",
    "TIME_WAIT",
    "make_pcb",
]
