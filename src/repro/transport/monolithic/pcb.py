"""The Protocol Control Block: TCP's famously entangled shared state.

Section 2.3: "the state maintained by the transport layer (e.g.,
sequence numbers, window sizes, etc.) is shared by all of these
subfunctions, which leads to non-modular code" — and "all of which
share and mutate the same state (encapsulated in the PCB block)".

The PCB here is an :class:`~repro.core.instrument.InstrumentedState`
with target ``"pcb"``.  The monolithic input/output routines run their
demultiplexing, connection-management, reliable-delivery, congestion-
control, and flow-control sections under different instrumentation
actors, so the A1/E3 experiments can measure exactly which subfunction
touches which PCB field — the quantified version of the paper's
entanglement argument.
"""

from __future__ import annotations

from ...core.instrument import AccessLog, InstrumentedState

# TCP states (RFC 793 names).
CLOSED = "CLOSED"
LISTEN = "LISTEN"
SYN_SENT = "SYN_SENT"
SYN_RCVD = "SYN_RCVD"
ESTABLISHED = "ESTABLISHED"
FIN_WAIT_1 = "FIN_WAIT_1"
FIN_WAIT_2 = "FIN_WAIT_2"
CLOSE_WAIT = "CLOSE_WAIT"
CLOSING = "CLOSING"
LAST_ACK = "LAST_ACK"
TIME_WAIT = "TIME_WAIT"

#: The subfunction actors the monolithic code runs under.
SUBFUNCTIONS = ("demux", "cm", "rd", "cc", "flow")


def make_pcb(
    lport: int,
    rport: int,
    config,
    access_log: AccessLog | None = None,
) -> InstrumentedState:
    """A fresh PCB with every field the monolithic machine uses."""
    return InstrumentedState(
        "pcb",
        log=access_log,
        # --- identification (demux) ---
        lport=lport,
        rport=rport,
        # --- connection management ---
        state=CLOSED,
        iss=0,
        irs=0,
        fin_pending=False,
        fin_seq=None,          # absolute seq of our FIN, once queued
        fin_sent=False,
        syn_retries=0,
        # --- reliable delivery (send side) ---
        snd_una=0,
        snd_nxt=0,
        stream=b"",            # all bytes the app ever sent
        rtx_timer=None,
        rtt_seq=None,          # sequence being timed for RTT
        rtt_start=0.0,
        srtt=None,
        rttvar=0.0,
        rto=config.rto_initial,
        retransmits=0,
        # --- reliable delivery (receive side) ---
        rcv_nxt=0,
        ooo={},                # absolute seq -> payload bytes
        fin_rcvd=False,
        # --- congestion control ---
        cwnd=config.initial_cwnd,
        ssthresh=64 * 1024,
        dupacks=0,
        # --- flow control ---
        snd_wnd=config.mss,    # until the peer advertises
        app_buffered=0,        # delivered-but-unread bytes (reader paused)
        persist_timer=None,
    )
