"""A monolithic TCP in the lwIP style — the paper's Section 4.2 subject.

One input routine, one output routine, one shared PCB.  The code is
*deliberately* organized the way lwIP (and BSD before it) organizes
it: ``tcp_input`` interleaves demultiplexing, connection management,
reliable delivery, congestion control, and flow control over the same
PCB fields, because that is the artifact whose verification difficulty
the paper reports ("the window is crucial for ensuring reliable
delivery, but reasoning is complicated because congestion/flow control
can also alter the window").

Each concern's statements run under a distinct instrumentation actor
(``demux``/``cm``/``rd``/``cc``/``flow``), which changes nothing about
behaviour but lets the A1/E3 experiments *measure* the entanglement:
the interference matrix over PCB fields is the quantified version of
the paper's Section 2.3 argument.

Functionally this TCP speaks a standard-shaped protocol over
:class:`~repro.transport.rfc793.TcpSegment` wire units: three-way
handshake with pluggable ISN schemes, cumulative acks, RTT-adaptive
retransmission with Karn's rule, fast retransmit, Reno-style slow
start/congestion avoidance, receiver flow control with zero-window
probing, and FIN teardown.
"""

from __future__ import annotations

from typing import Any, Callable

from ...core.clock import Clock
from ...core.errors import ConnectionError_
from ...core.instrument import AccessLog, acting_as
from ..config import TcpConfig
from ..rfc793 import TcpSegment
from ..seqspace import fold, unfold
from . import pcb as S
from .pcb import make_pcb


class MonoTcpSocket:
    """The application's handle on one monolithic TCP connection."""

    def __init__(self, host: "MonolithicTcpHost", key: tuple[int, int]):
        self._host = host
        self.key = key
        self.received: list[bytes] = []
        self.on_data: Callable[[bytes], None] | None = None
        self.on_connect: Callable[[], None] | None = None
        self.on_close: Callable[[], None] | None = None
        self.on_error: Callable[[str], None] | None = None
        self._paused = False

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        control = self._host._pcbs.get(self.key)
        if control is None:
            return S.CLOSED
        with self._host.access_log.paused():
            return control.snapshot()["state"]

    @property
    def connected(self) -> bool:
        return self.state == S.ESTABLISHED

    def send(self, data: bytes) -> None:
        self._host._app_send(self.key, data)

    def close(self) -> None:
        self._host._app_close(self.key)

    def pause_reading(self) -> None:
        """Stop consuming: delivered bytes count against the window."""
        self._paused = True

    def resume_reading(self) -> None:
        self._paused = False
        self._host._app_resumed(self.key)

    def bytes_received(self) -> bytes:
        return b"".join(self.received)

    def __repr__(self) -> str:
        return f"MonoTcpSocket({self.key}, {self.state})"


class MonolithicTcpHost:
    """One endpoint running the monolithic TCP over a segment pipe."""

    def __init__(
        self,
        name: str,
        clock: Clock,
        config: TcpConfig | None = None,
        access_log: AccessLog | None = None,
        addr: int = 0,
    ):
        self.name = name
        self.clock = clock
        self.config = config or TcpConfig()
        self.access_log = access_log if access_log is not None else AccessLog()
        self.addr = addr
        self.on_transmit: Callable[[TcpSegment], None] | None = None
        self.on_accept: Callable[[MonoTcpSocket], None] | None = None
        self._pcbs: dict[tuple[int, int], Any] = {}
        self._sockets: dict[tuple[int, int], MonoTcpSocket] = {}
        self._listeners: set[int] = set()
        self.segments_sent = 0
        self.segments_received = 0

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------
    def listen(self, port: int) -> None:
        self._listeners.add(port)

    def connect(self, lport: int, rport: int) -> MonoTcpSocket:
        key = (lport, rport)
        if key in self._pcbs:
            raise ConnectionError_(f"{key} already in use")
        control = make_pcb(lport, rport, self.config, self.access_log)
        self._pcbs[key] = control
        socket = MonoTcpSocket(self, key)
        self._sockets[key] = socket
        with acting_as("cm"):
            iss = self.config.isn_scheme.choose(
                self.clock, (self.addr, lport, 0, rport)
            )
            control.iss = iss
            control.snd_una = iss
            control.snd_nxt = iss + 1  # SYN occupies one sequence
            control.state = S.SYN_SENT
        self._emit(control, syn=True, seq=iss, with_ack=False)
        self._arm_rtx(control)
        return socket

    def socket_for(self, lport: int, rport: int) -> MonoTcpSocket | None:
        return self._sockets.get((lport, rport))

    def _app_send(self, key: tuple[int, int], data: bytes) -> None:
        control = self._pcbs.get(key)
        if control is None:
            raise ConnectionError_(f"{key} is closed")
        with acting_as("rd"):
            if control.fin_pending:
                raise ConnectionError_("cannot send after close()")
            control.stream = control.stream + bytes(data)
        self._output(control)

    def _app_close(self, key: tuple[int, int]) -> None:
        control = self._pcbs.get(key)
        if control is None:
            return
        with acting_as("cm"):
            control.fin_pending = True
        self._output(control)

    def _app_resumed(self, key: tuple[int, int]) -> None:
        control = self._pcbs.get(key)
        if control is None:
            return
        with acting_as("flow"):
            control.app_buffered = 0
        # Window update so a blocked sender can resume.
        self._emit(control, seq=control.snd_nxt)

    # ------------------------------------------------------------------
    # Input path — one big routine, lwIP style.
    # ------------------------------------------------------------------
    def receive(self, segment: TcpSegment, **meta: Any) -> None:
        if not isinstance(segment, TcpSegment):
            return  # foreign wire unit (e.g. a native sublayered pdu)
        self.segments_received += 1
        # --- demultiplexing: find the PCB -----------------------------
        with acting_as("demux"):
            key = (segment.dport, segment.sport)
            control = self._pcbs.get(key)
        if control is None:
            if segment.syn and not segment.has_ack and (
                segment.dport in self._listeners
            ):
                self._passive_open(segment)
            return
        state = self._state_of(control)
        if state == S.SYN_SENT:
            self._input_syn_sent(control, segment)
            return
        if state == S.TIME_WAIT:
            if segment.fin:  # peer retransmitted its FIN: re-ack
                self._emit(control, seq=control.snd_nxt)
            return
        self._input_established_family(control, segment)

    def _state_of(self, control) -> str:
        with acting_as("cm"):
            return control.state

    def _passive_open(self, segment: TcpSegment) -> None:
        key = (segment.dport, segment.sport)
        control = make_pcb(segment.dport, segment.sport, self.config, self.access_log)
        self._pcbs[key] = control
        socket = MonoTcpSocket(self, key)
        self._sockets[key] = socket
        with acting_as("cm"):
            control.irs = segment.seq
            control.rcv_nxt = segment.seq + 1
            iss = self.config.isn_scheme.choose(
                self.clock, (self.addr, segment.dport, 0, segment.sport)
            )
            control.iss = iss
            control.snd_una = iss
            control.snd_nxt = iss + 1
            control.state = S.SYN_RCVD
        with acting_as("flow"):
            control.snd_wnd = segment.window
        self._emit(control, syn=True, seq=control.iss)
        self._arm_rtx(control)

    def _input_syn_sent(self, control, segment: TcpSegment) -> None:
        if not (segment.syn and segment.has_ack):
            return
        with acting_as("cm"):
            expected = fold(control.iss + 1)
            if segment.ack != expected:
                return  # wrong ack: not our handshake
            control.irs = segment.seq
            control.rcv_nxt = segment.seq + 1
            control.state = S.ESTABLISHED
        with acting_as("rd"):
            control.snd_una = control.iss + 1
            self._cancel_rtx(control)
        with acting_as("flow"):
            control.snd_wnd = segment.window
        self._emit(control, seq=control.snd_nxt)  # the handshake ACK
        socket = self._sockets.get((control.lport, control.rport))
        if socket is not None and socket.on_connect is not None:
            socket.on_connect()
        self._output(control)

    def _input_established_family(self, control, segment: TcpSegment) -> None:
        # --- connection management: SYN_RCVD completion ---------------
        state = self._state_of(control)
        if state == S.SYN_RCVD and segment.has_ack:
            with acting_as("cm"):
                if unfold(control.snd_una, segment.ack) >= control.iss + 1:
                    control.state = S.ESTABLISHED
                    state = S.ESTABLISHED
            with acting_as("rd"):
                if control.snd_una < control.iss + 1:
                    control.snd_una = control.iss + 1
                self._cancel_rtx(control)
            socket = self._sockets.get((control.lport, control.rport))
            if socket is not None and self.on_accept is not None:
                self.on_accept(socket)
        if state == S.SYN_RCVD:
            if segment.syn and not segment.has_ack:
                self._emit(control, syn=True, seq=control.iss)  # re-SYNACK
            return

        # --- ACK processing: reliable delivery + congestion + flow ----
        if segment.has_ack:
            self._process_ack(control, segment)

        # --- in-bound data: reliable delivery --------------------------
        if segment.payload:
            self._process_data(control, segment)

        # --- FIN: connection management --------------------------------
        if segment.fin:
            self._process_fin(control, segment)

    # ------------------------------------------------------------------
    def _process_ack(self, control, segment: TcpSegment) -> None:
        with acting_as("rd"):
            snd_una = control.snd_una
            snd_nxt = control.snd_nxt
            ack_abs = unfold(snd_una, segment.ack)
        with acting_as("flow"):
            control.snd_wnd = segment.window

        if ack_abs > snd_nxt:
            return  # acks data we never sent
        if ack_abs > snd_una:
            with acting_as("rd"):
                control.snd_una = ack_abs
                control.retransmits = 0
                # RTT sampling with Karn's rule (only untimed-clean seqs)
                if control.rtt_seq is not None and ack_abs > control.rtt_seq:
                    self._rtt_sample(control, self.clock.now() - control.rtt_start)
                    control.rtt_seq = None
                self._cancel_rtx(control)
                if ack_abs < snd_nxt or self._fin_outstanding(control):
                    self._arm_rtx(control)
            with acting_as("cc"):
                control.dupacks = 0
                bytes_acked = ack_abs - snd_una
                if control.cwnd < control.ssthresh:
                    control.cwnd = control.cwnd + min(
                        bytes_acked, self.config.mss
                    )  # slow start
                else:
                    control.cwnd = control.cwnd + max(
                        1, self.config.mss * self.config.mss // control.cwnd
                    )  # congestion avoidance
            self._ack_advances_close(control, ack_abs)
            self._output(control)
        elif ack_abs == snd_una and snd_nxt > snd_una and not segment.payload:
            with acting_as("cc"):
                control.dupacks = control.dupacks + 1
                dupacks = control.dupacks
            if dupacks == self.config.dupack_threshold:
                self._fast_retransmit(control)

    def _fin_outstanding(self, control) -> bool:
        return control.fin_sent and control.snd_una < (control.fin_seq or 0) + 1

    def _ack_advances_close(self, control, ack_abs: int) -> None:
        with acting_as("cm"):
            if control.fin_seq is None or ack_abs < control.fin_seq + 1:
                return
            state = control.state
            if state == S.FIN_WAIT_1:
                control.state = S.FIN_WAIT_2
            elif state == S.CLOSING:
                self._enter_time_wait(control)
            elif state == S.LAST_ACK:
                control.state = S.CLOSED
                self._destroy(control)

    def _process_data(self, control, segment: TcpSegment) -> None:
        socket = self._sockets.get((control.lport, control.rport))
        with acting_as("rd"):
            seq_abs = unfold(control.rcv_nxt, segment.seq)
            rcv_nxt = control.rcv_nxt
        if seq_abs > rcv_nxt:
            with acting_as("rd"):
                ooo = dict(control.ooo)
                ooo.setdefault(seq_abs, segment.payload)
                control.ooo = ooo
            self._emit(control, seq=control.snd_nxt)  # dup ack
            return
        # trim any already-received prefix
        offset = rcv_nxt - seq_abs
        payload = segment.payload[offset:] if offset < len(segment.payload) else b""
        if not payload:
            self._emit(control, seq=control.snd_nxt)  # pure duplicate
            return
        with acting_as("flow"):
            paused = socket is not None and socket._paused
            room = self.config.recv_buffer - control.app_buffered
        if paused and len(payload) > room:
            # Receiver is full: honest flow control drops what the
            # window did not allow; the ack below re-advertises.
            self._emit(control, seq=control.snd_nxt)
            return
        with acting_as("rd"):
            control.rcv_nxt = rcv_nxt + len(payload)
        self._deliver(control, socket, payload)
        self._drain_ooo(control, socket)
        self._emit(control, seq=control.snd_nxt)

    def _deliver(self, control, socket, payload: bytes) -> None:
        if socket is None:
            return
        socket.received.append(payload)
        if socket._paused:
            with acting_as("flow"):
                control.app_buffered = control.app_buffered + len(payload)
        if socket.on_data is not None:
            socket.on_data(payload)

    def _drain_ooo(self, control, socket) -> None:
        with acting_as("rd"):
            ooo = dict(control.ooo)
            rcv_nxt = control.rcv_nxt
        progressed = True
        while progressed:
            progressed = False
            for seq in sorted(ooo):
                if seq <= rcv_nxt:
                    payload = ooo.pop(seq)
                    usable = payload[rcv_nxt - seq :]
                    if usable:
                        self._deliver(control, socket, usable)
                        rcv_nxt += len(usable)
                    progressed = True
                    break
                break
        with acting_as("rd"):
            control.ooo = ooo
            control.rcv_nxt = rcv_nxt

    def _process_fin(self, control, segment: TcpSegment) -> None:
        with acting_as("rd"):
            seq_abs = unfold(control.rcv_nxt, segment.seq)
            fin_seq = seq_abs + len(segment.payload)
            if fin_seq != control.rcv_nxt:
                self._emit(control, seq=control.snd_nxt)
                return
            control.rcv_nxt = control.rcv_nxt + 1
        socket = self._sockets.get((control.lport, control.rport))
        with acting_as("cm"):
            control.fin_rcvd = True
            state = control.state
            if state == S.ESTABLISHED:
                control.state = S.CLOSE_WAIT
            elif state == S.FIN_WAIT_1:
                control.state = S.CLOSING
            elif state == S.FIN_WAIT_2:
                self._enter_time_wait(control)
        self._emit(control, seq=control.snd_nxt)  # ack the FIN
        if socket is not None and socket.on_close is not None:
            socket.on_close()

    def _enter_time_wait(self, control) -> None:
        control.state = S.TIME_WAIT
        self.clock.call_later(1.0, lambda: self._destroy(control))

    def _destroy(self, control) -> None:
        self._cancel_rtx(control)
        with self.access_log.paused():
            key = (control.snapshot()["lport"], control.snapshot()["rport"])
        self._pcbs.pop(key, None)

    # ------------------------------------------------------------------
    # Output path
    # ------------------------------------------------------------------
    def _output(self, control) -> None:
        while True:
            with acting_as("cm"):
                state = control.state
            if state not in (S.ESTABLISHED, S.CLOSE_WAIT, S.FIN_WAIT_1, S.CLOSING,
                             S.LAST_ACK):
                return
            with acting_as("rd"):
                # The send-window computation is reliable-delivery code
                # reading congestion- and flow-control state — exactly
                # the cross-subfunction coupling Section 2.3 describes,
                # and the instrumentation records it as such.
                snd_wnd = control.snd_wnd
                cwnd = control.cwnd
                snd_una = control.snd_una
                snd_nxt = control.snd_nxt
                stream_end = control.iss + 1 + len(control.stream)
                window = min(cwnd, snd_wnd)
                usable = snd_una + window - snd_nxt
                available = stream_end - snd_nxt
                chunk = min(usable, available, self.config.mss)
            if chunk > 0:
                self._send_data_chunk(control, snd_nxt, chunk)
                continue
            if (
                available == 0
                and self._should_send_fin(control)
                and usable > 0
            ):
                self._send_fin(control)
                continue
            if available > 0 and snd_wnd == 0 and snd_una == snd_nxt:
                self._arm_persist(control)
            return

    def _should_send_fin(self, control) -> bool:
        with acting_as("cm"):
            return control.fin_pending and not control.fin_sent

    def _send_data_chunk(self, control, seq: int, length: int) -> None:
        with acting_as("rd"):
            start = seq - (control.iss + 1)
            payload = control.stream[start : start + length]
            control.snd_nxt = seq + length
            if control.rtt_seq is None:
                control.rtt_seq = seq
                control.rtt_start = self.clock.now()
        self._emit(control, seq=seq, payload=payload)
        self._arm_rtx(control)

    def _send_fin(self, control) -> None:
        with acting_as("cm"):
            control.fin_sent = True
            control.fin_seq = control.snd_nxt
            state = control.state
            if state in (S.ESTABLISHED,):
                control.state = S.FIN_WAIT_1
            elif state == S.CLOSE_WAIT:
                control.state = S.LAST_ACK
        with acting_as("rd"):
            fin_seq = control.snd_nxt
            control.snd_nxt = fin_seq + 1
        self._emit(control, fin=True, seq=fin_seq)
        self._arm_rtx(control)

    def _emit(
        self,
        control,
        seq: int,
        payload: bytes = b"",
        syn: bool = False,
        fin: bool = False,
        with_ack: bool = True,
    ) -> None:
        with acting_as("flow"):
            ooo_bytes = sum(len(p) for p in control.ooo.values())
            window = max(
                0, self.config.recv_buffer - control.app_buffered - ooo_bytes
            )
        with acting_as("rd"):
            ack_value = fold(control.rcv_nxt) if with_ack else 0
        header = {
            "sport": control.lport,
            "dport": control.rport,
            "seq": fold(seq),
            "ack": ack_value,
            "ack_flag": int(with_ack),
            "syn": int(syn),
            "fin": int(fin),
            "psh": int(bool(payload)),
            "window": min(window, 0xFFFF),
        }
        self.segments_sent += 1
        if self.on_transmit is not None:
            self.on_transmit(TcpSegment(header=header, payload=bytes(payload)))

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _arm_rtx(self, control) -> None:
        with self.access_log.paused():
            timer = control.snapshot()["rtx_timer"]
            rto = control.snapshot()["rto"]
        if timer is not None:
            timer.cancel()
        handle = self.clock.call_later(rto, lambda: self._on_rtx_timeout(control))
        with acting_as("rd"):
            control.rtx_timer = handle

    def _cancel_rtx(self, control) -> None:
        with self.access_log.paused():
            timer = control.snapshot()["rtx_timer"]
        if timer is not None:
            timer.cancel()
        with acting_as("rd"):
            control.rtx_timer = None

    def _on_rtx_timeout(self, control) -> None:
        with acting_as("cm"):
            state = control.state
        if state == S.SYN_SENT or state == S.SYN_RCVD:
            self._retransmit_handshake(control)
            return
        with acting_as("rd"):
            snd_una = control.snd_una
            snd_nxt = control.snd_nxt
        if snd_una >= snd_nxt:
            return  # everything acked meanwhile
        with acting_as("cc"):
            flight = snd_nxt - snd_una
            control.ssthresh = max(flight // 2, 2 * self.config.mss)
            control.cwnd = self.config.mss
            control.dupacks = 0
        with acting_as("rd"):
            control.rto = min(control.rto * 2, self.config.rto_max)
            control.retransmits = control.retransmits + 1
            control.rtt_seq = None  # Karn: no sampling on retransmits
        self._retransmit_front(control)
        self._arm_rtx(control)

    def _retransmit_handshake(self, control) -> None:
        with acting_as("cm"):
            control.syn_retries = control.syn_retries + 1
            retries = control.syn_retries
            state = control.state
        if retries > self.config.max_syn_retries:
            socket = self._sockets.get((control.lport, control.rport))
            with acting_as("cm"):
                control.state = S.CLOSED
            self._destroy(control)
            if socket is not None and socket.on_error is not None:
                socket.on_error("connection timed out")
            return
        with acting_as("rd"):
            control.rto = min(control.rto * 2, self.config.rto_max)
        self._emit(
            control, syn=True, seq=control.iss, with_ack=(state == S.SYN_RCVD)
        )
        self._arm_rtx(control)

    def _retransmit_front(self, control) -> None:
        """Resend the earliest unacked chunk (data or FIN)."""
        with acting_as("rd"):
            snd_una = control.snd_una
            start = snd_una - (control.iss + 1)
            payload = control.stream[start : start + self.config.mss]
        if payload:
            self._emit(control, seq=snd_una, payload=payload)
        elif self._fin_outstanding(control):
            self._emit(control, fin=True, seq=control.fin_seq)

    def _fast_retransmit(self, control) -> None:
        with acting_as("cc"):
            flight = control.snd_nxt - control.snd_una
            control.ssthresh = max(flight // 2, 2 * self.config.mss)
            control.cwnd = control.ssthresh
        with acting_as("rd"):
            control.rtt_seq = None
        self._retransmit_front(control)

    def _arm_persist(self, control) -> None:
        with self.access_log.paused():
            if control.snapshot()["persist_timer"] is not None:
                return
            rto = control.snapshot()["rto"]
        handle = self.clock.call_later(rto, lambda: self._persist_probe(control))
        with acting_as("flow"):
            control.persist_timer = handle

    def _persist_probe(self, control) -> None:
        with acting_as("flow"):
            control.persist_timer = None
            snd_wnd = control.snd_wnd
        with acting_as("rd"):
            snd_nxt = control.snd_nxt
            stream_end = control.iss + 1 + len(control.stream)
        if snd_wnd > 0 or snd_nxt >= stream_end:
            self._output(control)
            return
        # One byte beyond the window: the zero-window probe.
        with acting_as("rd"):
            start = snd_nxt - (control.iss + 1)
            probe = control.stream[start : start + 1]
        self._emit(control, seq=snd_nxt, payload=probe)
        self._arm_persist(control)

    # ------------------------------------------------------------------
    def _rtt_sample(self, control, sample: float) -> None:
        if control.srtt is None:
            control.srtt = sample
            control.rttvar = sample / 2
        else:
            control.rttvar = 0.75 * control.rttvar + 0.25 * abs(
                control.srtt - sample
            )
            control.srtt = 0.875 * control.srtt + 0.125 * sample
        control.rto = min(
            max(control.srtt + 4 * control.rttvar, self.config.rto_min),
            self.config.rto_max,
        )

    def pcb_snapshot(self, lport: int, rport: int) -> dict[str, Any]:
        control = self._pcbs[(lport, rport)]
        with self.access_log.paused():
            return control.snapshot()

    def __repr__(self) -> str:
        return f"MonolithicTcpHost({self.name!r}, {len(self._pcbs)} pcbs)"
