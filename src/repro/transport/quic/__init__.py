"""Mini-QUIC: the Section 5 sublayering — stream > connection > record > DM.

A compact QUIC-shaped transport demonstrating that the paper's
decomposition discipline extends beyond TCP: the security (record)
sublayer and the transport sublayers (connection, stream) are cleanly
separated, streams are head-of-line independent, and congestion
control plugs in through the same interface as the sublayered TCP's.
Simplifications vs RFC 9000 are documented in
:mod:`repro.transport.quic.frames` and :mod:`.record`.
"""

from .connection import ConnectionSublayer
from .frames import (
    AckFrame,
    CloseFrame,
    Frame,
    HandshakeFrame,
    StreamFrame,
    decode_frames,
    encode_frames,
)
from .host import QuicConnection, QuicHost
from .keys import derive_traffic_key
from .record import INITIAL_KEY, RecordSublayer
from .stream import StreamSublayer

__all__ = [
    "AckFrame",
    "CloseFrame",
    "ConnectionSublayer",
    "Frame",
    "HandshakeFrame",
    "INITIAL_KEY",
    "QuicConnection",
    "QuicHost",
    "RecordSublayer",
    "StreamFrame",
    "StreamSublayer",
    "decode_frames",
    "derive_traffic_key",
    "encode_frames",
]
