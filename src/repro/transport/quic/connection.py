"""The connection sublayer of mini-QUIC.

Per Section 5's suggested decomposition, the connection sublayer owns
everything that is per-connection and stream-agnostic:

* the handshake (CHLO/SHLO frames carrying key material) and the
  provisioning of the record sublayer's epoch-1 keys through its
  ``install_key`` service primitive;
* packet numbers, acknowledgements, loss detection (packet-threshold
  and timer based), and *frame* retransmission — QUIC retransmits
  data in new packets rather than re-sending old ones;
* congestion control, reusing the same pluggable
  :class:`~repro.transport.sublayered.congestion.CongestionControl`
  family as the sublayered TCP's OSR (another fungibility point).

What it explicitly does not know: stream identities, ordering, or
reassembly — frames from the stream sublayer are opaque cargo with a
size and an acked-callback.  That boundary is what makes the stream
sublayer's head-of-line-freedom possible (the E5 ablation benchmark).
"""

from __future__ import annotations

import random
import struct
from typing import Any

from ...core.clock import TimerHandle
from ...core.errors import ConnectionError_
from ...core.interface import Primitive, ServiceInterface
from ...core.sublayer import Sublayer
from ..sublayered.congestion import AimdCc, CongestionControl
from .frames import (
    AckFrame,
    CloseFrame,
    Frame,
    HandshakeFrame,
    HS_CHLO,
    HS_SHLO,
    StreamFrame,
    decode_frames,
    encode_frames,
)
from .keys import derive_traffic_key

ConnId = tuple[int, int]

PN_PREFIX = struct.Struct("!I")
PACKET_THRESHOLD = 3  # QUIC's reordering threshold for loss declaration


class ConnectionSublayer(Sublayer):
    """Handshake, packet numbers, acks, loss recovery, congestion."""

    SERVICE = ServiceInterface(
        "quic-connection-service",
        [
            Primitive("open", "actively open a connection (sends CHLO)"),
            Primitive("listen", "accept CHLOs on a local port"),
            Primitive("send_frames", "queue stream frames for packetization"),
            Primitive("close", "send CONNECTION_CLOSE"),
        ],
    )
    NOTIFICATIONS = ("established", "frame_acked", "peer_closed", "failed")

    def __init__(
        self,
        name: str = "connection",
        mtu: int = 1200,
        rto_initial: float = 0.3,
        rto_max: float = 8.0,
        max_handshake_retries: int = 8,
        cc_factory: Any | None = None,
        rng: random.Random | None = None,
    ):
        super().__init__(name)
        self.mtu = mtu
        self.rto_initial = rto_initial
        self.rto_max = rto_max
        self.max_handshake_retries = max_handshake_retries
        self.cc_factory = cc_factory or (lambda mtu_: AimdCc(mtu_))
        self.rng = rng or random.Random(0x9C1C)
        self._ccs: dict[ConnId, CongestionControl] = {}
        self._rto_timers: dict[ConnId, TimerHandle] = {}
        self._hs_timers: dict[ConnId, TimerHandle] = {}

    def clone_fresh(self) -> "ConnectionSublayer":
        return ConnectionSublayer(
            self.name, self.mtu, self.rto_initial, self.rto_max,
            self.max_handshake_retries, self.cc_factory, self.rng,
        )

    def on_attach(self) -> None:
        self.state.conns = {}
        self.state.listening = set()
        self.state.packets_sent = 0
        self.state.packets_received = 0
        self.state.frames_retransmitted = 0
        self.state.packets_declared_lost = 0

    # ------------------------------------------------------------------
    def _get(self, conn: ConnId) -> dict | None:
        return self.state.conns.get(conn)

    def _put(self, conn: ConnId, record: dict) -> None:
        conns = dict(self.state.conns)
        conns[conn] = record
        self.state.conns = conns

    def _new_record(self, role: str) -> dict:
        return {
            "role": role,
            "established": False,
            "local_random": bytes(self.rng.randrange(256) for _ in range(32)),
            "peer_random": None,
            "hs_retries": 0,
            "pn_next": 0,
            "sent": {},            # pn -> (frames tuple, size, send_time)
            "largest_acked": -1,
            "bytes_in_flight": 0,
            "queue": (),           # frames awaiting congestion window
            "srtt": None,
            "rttvar": 0.0,
            "rto": self.rto_initial,
            # receive side
            "received": set(),     # pns seen (pruned below the run)
            "rcv_floor": -1,       # every pn <= floor has been received
            "ack_owed": False,
            "peer_closed": False,
        }

    def cc_for(self, conn: ConnId) -> CongestionControl:
        if conn not in self._ccs:
            self._ccs[conn] = self.cc_factory(self.mtu)
        return self._ccs[conn]

    # ------------------------------------------------------------------
    # Service primitives (the stream sublayer calls these)
    # ------------------------------------------------------------------
    def srv_open(self, conn: ConnId) -> None:
        if self._get(conn) is not None:
            raise ConnectionError_(f"connection {conn} already exists")
        assert self.below is not None
        self.below.bind(conn)
        self._put(conn, self._new_record("client"))
        self._send_chlo(conn)

    def srv_listen(self, port: int) -> None:
        listening = set(self.state.listening)
        listening.add(port)
        self.state.listening = listening
        assert self.below is not None
        self.below.listen(port)

    def srv_send_frames(self, conn: ConnId, frames: list[StreamFrame]) -> None:
        record = self._get(conn)
        if record is None:
            raise ConnectionError_(f"no connection {conn}")
        record = dict(record)
        record["queue"] = record["queue"] + tuple(frames)
        self._put(conn, record)
        self._pump(conn)

    def srv_close(self, conn: ConnId, code: int = 0) -> None:
        record = self._get(conn)
        if record is None or not record["established"]:
            return
        self._emit_packet(conn, [CloseFrame(code=code)], tracked=False)

    # ------------------------------------------------------------------
    # Handshake
    # ------------------------------------------------------------------
    def _send_chlo(self, conn: ConnId) -> None:
        record = self._get(conn)
        if record is None or record["established"]:
            return
        if record["hs_retries"] > self.max_handshake_retries:
            self.notify("failed", conn, "handshake timed out")
            return
        frame = HandshakeFrame(hs_kind=HS_CHLO, random=record["local_random"])
        self._emit_packet(conn, [frame], epoch=0, tracked=False)
        record = dict(self._get(conn))
        record["hs_retries"] += 1
        self._put(conn, record)
        self._hs_timers[conn] = self.clock.call_later(
            self.rto_initial * (2 ** (record["hs_retries"] - 1)),
            lambda: self._send_chlo(conn),
        )

    def _establish(self, conn: ConnId, peer_random: bytes) -> None:
        record = dict(self._get(conn))
        if record["established"]:
            return
        record["peer_random"] = peer_random
        record["established"] = True
        self._put(conn, record)
        timer = self._hs_timers.pop(conn, None)
        if timer is not None:
            timer.cancel()
        if record["role"] == "client":
            key = derive_traffic_key(record["local_random"], peer_random, conn)
        else:
            key = derive_traffic_key(peer_random, record["local_random"], conn)
        assert self.below is not None
        self.below.install_key(conn, 1, key)
        self.notify("established", conn)
        self._pump(conn)

    def _on_handshake_frame(
        self, conn: ConnId, frame: HandshakeFrame
    ) -> None:
        record = self._get(conn)
        if frame.hs_kind == HS_CHLO:
            if record is None:
                if conn[0] not in self.state.listening:
                    return
                assert self.below is not None
                self.below.bind(conn)
                self._put(conn, self._new_record("server"))
                record = self._get(conn)
            # (re)answer with SHLO; duplicates get the same answer
            shlo = HandshakeFrame(
                hs_kind=HS_SHLO, random=record["local_random"]
            )
            self._emit_packet(conn, [shlo], epoch=0, tracked=False)
            if not record["established"]:
                self._establish(conn, frame.random)
        elif frame.hs_kind == HS_SHLO and record is not None:
            if record["role"] == "client":
                self._establish(conn, frame.random)

    # ------------------------------------------------------------------
    # Packetization and the congestion window
    # ------------------------------------------------------------------
    def _pump(self, conn: ConnId) -> None:
        record = self._get(conn)
        if record is None or not record["established"]:
            return
        cc = self.cc_for(conn)
        while True:
            record = self._get(conn)
            queue = record["queue"]
            if not queue:
                break
            budget = cc.window() - record["bytes_in_flight"]
            if budget < queue[0].wire_bytes:
                break
            batch: list[StreamFrame] = []
            size = 0
            remaining = list(queue)
            while remaining and size + remaining[0].wire_bytes <= min(
                self.mtu, budget
            ):
                frame = remaining.pop(0)
                batch.append(frame)
                size += frame.wire_bytes
            if not batch:
                break
            record = dict(record)
            record["queue"] = tuple(remaining)
            self._put(conn, record)
            self._emit_packet(conn, batch, tracked=True)
        self._maybe_send_ack(conn)

    def _emit_packet(
        self,
        conn: ConnId,
        frames: list[Frame],
        epoch: int = 1,
        tracked: bool = True,
    ) -> None:
        record = dict(self._get(conn))
        pn = record["pn_next"]
        record["pn_next"] = pn + 1
        # piggyback an ack on every 1-RTT packet
        if epoch == 1 and (record["rcv_floor"] >= 0 or record["received"]):
            frames = list(frames) + [self._ack_frame(record)]
            record["ack_owed"] = False
        payload = PN_PREFIX.pack(pn) + encode_frames(frames)
        size = len(payload)
        if tracked:
            stream_frames = tuple(
                f for f in frames if isinstance(f, StreamFrame)
            )
            sent = dict(record["sent"])
            sent[pn] = (stream_frames, size, self.clock.now())
            record["sent"] = sent
            record["bytes_in_flight"] = record["bytes_in_flight"] + size
        self._put(conn, record)
        self.state.packets_sent = self.state.packets_sent + 1
        self.send_down(payload, conn=conn, epoch=epoch)
        if tracked:
            self._arm_rto(conn)

    def _ack_frame(self, record: dict) -> AckFrame:
        floor = record["rcv_floor"]
        received = record["received"]
        largest = max(received) if received else floor
        # contiguous run ending at largest
        run = 0
        while largest - run - 1 in received or largest - run - 1 <= floor:
            if largest - run - 1 <= floor:
                run = largest - floor - 1
                break
            run += 1
        return AckFrame(largest=largest, first_range=max(run, 0))

    def _maybe_send_ack(self, conn: ConnId) -> None:
        record = self._get(conn)
        if record is None or not record["ack_owed"] or not record["established"]:
            return
        self._emit_packet(conn, [], tracked=False)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def from_below(
        self, plaintext: Any, conn: ConnId | None = None, epoch: int = 0,
        **meta: Any,
    ) -> None:
        if conn is None or not isinstance(plaintext, (bytes, bytearray)):
            return
        if len(plaintext) < PN_PREFIX.size:
            return
        (pn,) = PN_PREFIX.unpack_from(plaintext)
        try:
            frames = decode_frames(bytes(plaintext[PN_PREFIX.size :]))
        except Exception:
            return  # post-MAC parse failure: drop the packet
        self.state.packets_received = self.state.packets_received + 1

        # handshake frames may create the connection record
        for frame in frames:
            if isinstance(frame, HandshakeFrame):
                self._on_handshake_frame(conn, frame)

        record = self._get(conn)
        if record is None:
            return

        if epoch == 1:
            record = dict(record)
            received = set(record["received"])
            received.add(pn)
            floor = record["rcv_floor"]
            while floor + 1 in received:
                floor += 1
                received.discard(floor)
            record["rcv_floor"] = floor
            record["received"] = received
            if any(isinstance(f, StreamFrame) for f in frames):
                record["ack_owed"] = True
            self._put(conn, record)

        for frame in frames:
            if isinstance(frame, StreamFrame):
                self.deliver_up(frame, conn=conn)
            elif isinstance(frame, AckFrame):
                self._on_ack(conn, frame)
            elif isinstance(frame, CloseFrame):
                record = dict(self._get(conn))
                if not record["peer_closed"]:
                    record["peer_closed"] = True
                    self._put(conn, record)
                    self.notify("peer_closed", conn, frame.code)

        self._maybe_send_ack(conn)

    # ------------------------------------------------------------------
    # Ack processing and loss detection
    # ------------------------------------------------------------------
    def _on_ack(self, conn: ConnId, ack: AckFrame) -> None:
        record = self._get(conn)
        if record is None:
            return
        low = ack.largest - ack.first_range
        record = dict(record)
        sent = dict(record["sent"])
        cc = self.cc_for(conn)
        newly_acked: list[tuple[int, tuple, int, float]] = []
        for pn in sorted(sent):
            if low <= pn <= ack.largest:
                frames, size, when = sent.pop(pn)
                newly_acked.append((pn, frames, size, when))
        if not newly_acked:
            return
        record["sent"] = sent
        record["largest_acked"] = max(record["largest_acked"], ack.largest)
        for pn, frames, size, when in newly_acked:
            record["bytes_in_flight"] = max(
                0, record["bytes_in_flight"] - size
            )
            rtt = self.clock.now() - when
            self._rtt_sample(record, rtt)
            cc.on_ack(size, rtt)
        self._put(conn, record)
        for _pn, frames, _size, _when in newly_acked:
            for frame in frames:
                self.notify("frame_acked", conn, frame)
        self._detect_losses(conn)
        self._rearm_rto(conn)
        self._pump(conn)

    def _detect_losses(self, conn: ConnId) -> None:
        """Packet-threshold loss: unacked pns well below largest_acked."""
        record = self._get(conn)
        threshold = record["largest_acked"] - PACKET_THRESHOLD
        lost = [pn for pn in record["sent"] if pn <= threshold]
        if lost:
            self._declare_lost(conn, lost, "dupack")

    def _declare_lost(self, conn: ConnId, pns: list[int], kind: str) -> None:
        record = dict(self._get(conn))
        sent = dict(record["sent"])
        requeued: list[StreamFrame] = []
        for pn in pns:
            frames, size, _when = sent.pop(pn)
            record["bytes_in_flight"] = max(0, record["bytes_in_flight"] - size)
            requeued.extend(frames)
            self.state.packets_declared_lost = (
                self.state.packets_declared_lost + 1
            )
        self.state.frames_retransmitted = (
            self.state.frames_retransmitted + len(requeued)
        )
        # Frame retransmission: lost frames go to the FRONT of the queue.
        record["sent"] = sent
        record["queue"] = tuple(requeued) + record["queue"]
        self._put(conn, record)
        self.cc_for(conn).on_loss(kind)
        self._pump(conn)

    # ------------------------------------------------------------------
    # RTO
    # ------------------------------------------------------------------
    def _arm_rto(self, conn: ConnId) -> None:
        existing = self._rto_timers.get(conn)
        if existing is not None and not existing.cancelled:
            return
        record = self._get(conn)
        self._rto_timers[conn] = self.clock.call_later(
            record["rto"], lambda: self._on_rto(conn)
        )

    def _rearm_rto(self, conn: ConnId) -> None:
        timer = self._rto_timers.pop(conn, None)
        if timer is not None:
            timer.cancel()
        record = self._get(conn)
        if record is not None and record["sent"]:
            self._rto_timers[conn] = self.clock.call_later(
                record["rto"], lambda: self._on_rto(conn)
            )

    def _on_rto(self, conn: ConnId) -> None:
        self._rto_timers.pop(conn, None)
        record = self._get(conn)
        if record is None or not record["sent"]:
            return
        record = dict(record)
        record["rto"] = min(record["rto"] * 2, self.rto_max)
        self._put(conn, record)
        oldest = min(record["sent"])
        self._declare_lost(conn, [oldest], "timeout")
        self._arm_rto(conn)

    def _rtt_sample(self, record: dict, sample: float) -> None:
        if record["srtt"] is None:
            record["srtt"] = sample
            record["rttvar"] = sample / 2
        else:
            record["rttvar"] = 0.75 * record["rttvar"] + 0.25 * abs(
                record["srtt"] - sample
            )
            record["srtt"] = 0.875 * record["srtt"] + 0.125 * sample
        record["rto"] = min(
            max(record["srtt"] + 4 * record["rttvar"], self.rto_initial / 4),
            self.rto_max,
        )
