"""Mini-QUIC frames and their binary codec.

The paper's Section 5 points at QUIC as the next sublayering target:
"QUIC ... has a clean sub-layering between networking (the transport
layer) and security (the record layer).  The transport layer can
likely be further sublayered into a stream layer and a connection
layer."  The :mod:`repro.transport.quic` package builds exactly that
decomposition; this module is its frame vocabulary.

Frames are the connection sublayer's payload unit (several frames ride
in one packet) and the currency between the stream and connection
sublayers.  The binary codec matters because the record sublayer
encrypts *bytes*: everything above it must serialize.

Simplifications vs RFC 9000, documented here once: fixed-width fields
instead of varints, a single ACK range per ACK frame, and no flow
control or connection-ID rotation.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ...core.errors import HeaderError

FRAME_STREAM = 1
FRAME_ACK = 2
FRAME_HANDSHAKE = 3
FRAME_CLOSE = 4

HS_CHLO = 1  # client hello (carries client random)
HS_SHLO = 2  # server hello (carries server random)


@dataclass(frozen=True)
class StreamFrame:
    """Bytes of one stream at one offset (QUIC's STREAM frame)."""

    stream_id: int
    offset: int
    data: bytes
    fin: bool = False
    kind: int = FRAME_STREAM

    def encode(self) -> bytes:
        return struct.pack(
            "!BHIB H", FRAME_STREAM, self.stream_id, self.offset,
            int(self.fin), len(self.data),
        ) + self.data

    @property
    def wire_bytes(self) -> int:
        return 10 + len(self.data)


@dataclass(frozen=True)
class AckFrame:
    """Cumulative ack of packet numbers: [largest-first_range, largest]."""

    largest: int
    first_range: int = 0
    kind: int = FRAME_ACK

    def encode(self) -> bytes:
        return struct.pack("!BII", FRAME_ACK, self.largest, self.first_range)

    @property
    def wire_bytes(self) -> int:
        return 9


@dataclass(frozen=True)
class HandshakeFrame:
    """CHLO/SHLO carrying 32 bytes of key material (the TLS stand-in)."""

    hs_kind: int
    random: bytes
    kind: int = FRAME_HANDSHAKE

    def __post_init__(self) -> None:
        if len(self.random) != 32:
            raise HeaderError("handshake random must be 32 bytes")

    def encode(self) -> bytes:
        return struct.pack("!BB", FRAME_HANDSHAKE, self.hs_kind) + self.random

    @property
    def wire_bytes(self) -> int:
        return 34


@dataclass(frozen=True)
class CloseFrame:
    """Connection close with an error code."""

    code: int
    kind: int = FRAME_CLOSE

    def encode(self) -> bytes:
        return struct.pack("!BH", FRAME_CLOSE, self.code)

    @property
    def wire_bytes(self) -> int:
        return 3


Frame = StreamFrame | AckFrame | HandshakeFrame | CloseFrame


def encode_frames(frames: list[Frame]) -> bytes:
    return b"".join(f.encode() for f in frames)


def decode_frames(data: bytes) -> list[Frame]:
    """Parse a packet payload back into frames.

    Raises :class:`HeaderError` on any malformed input — the record
    sublayer's MAC should make that unreachable except for bugs, so
    the connection sublayer treats it as fatal for the packet.
    """
    frames: list[Frame] = []
    view = memoryview(data)
    pos = 0
    while pos < len(view):
        kind = view[pos]
        if kind == FRAME_STREAM:
            if pos + 10 > len(view):
                raise HeaderError("truncated STREAM frame header")
            _, stream_id, offset, fin, length = struct.unpack_from(
                "!BHIB H", view, pos
            )
            pos += 10
            if pos + length > len(view):
                raise HeaderError("truncated STREAM frame data")
            frames.append(StreamFrame(
                stream_id=stream_id, offset=offset,
                data=bytes(view[pos : pos + length]), fin=bool(fin),
            ))
            pos += length
        elif kind == FRAME_ACK:
            if pos + 9 > len(view):
                raise HeaderError("truncated ACK frame")
            _, largest, first_range = struct.unpack_from("!BII", view, pos)
            frames.append(AckFrame(largest=largest, first_range=first_range))
            pos += 9
        elif kind == FRAME_HANDSHAKE:
            if pos + 34 > len(view):
                raise HeaderError("truncated HANDSHAKE frame")
            hs_kind = view[pos + 1]
            frames.append(HandshakeFrame(
                hs_kind=hs_kind, random=bytes(view[pos + 2 : pos + 34])
            ))
            pos += 34
        elif kind == FRAME_CLOSE:
            if pos + 3 > len(view):
                raise HeaderError("truncated CLOSE frame")
            _, code = struct.unpack_from("!BH", view, pos)
            frames.append(CloseFrame(code=code))
            pos += 3
        else:
            raise HeaderError(f"unknown frame kind {kind}")
    return frames
