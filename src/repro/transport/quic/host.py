"""The mini-QUIC host: Section 5's decomposition as a running stack.

Stack, top to bottom: **stream** (per-stream ordering and segmenting)
> **connection** (handshake, packet numbers, acks, loss recovery,
congestion) > **record** (authenticated encryption) > **DM** (ports —
the same demultiplexing sublayer the sublayered TCP uses, because
"QUIC runs over UDP" and DM *is* our UDP).  The host exposes the same
``on_transmit``/``receive`` surface as the TCP hosts, so it attaches
to the same links, media, and routed networks.
"""

from __future__ import annotations

from typing import Any, Callable

from ...compose.builder import StackBuilder
from ...core.clock import Clock
from ...core.instrument import AccessLog, acting_as
from ...core.interface import InterfaceLog
from ...core.wiring import TIER_FULL
from .connection import ConnId
from .stream import QuicConnCallbacks, StreamSublayer


class QuicConnection:
    """The application's handle on one mini-QUIC connection."""

    def __init__(self, host: "QuicHost", conn: ConnId):
        self._host = host
        self.key = conn
        self.streams: dict[int, list[bytes]] = {}
        self.finished_streams: set[int] = set()
        self.on_connect: Callable[[], None] | None = None
        self.on_stream_data: Callable[[int, bytes], None] | None = None
        self.on_stream_fin: Callable[[int], None] | None = None
        self.on_peer_close: Callable[[int], None] | None = None
        self.on_error: Callable[[str], None] | None = None
        self._connected = False
        self._wire()

    def _wire(self) -> None:
        callbacks: QuicConnCallbacks = self._host._stream_call(
            "callbacks", self.key
        )

        def established() -> None:
            self._connected = True
            if self.on_connect is not None:
                self.on_connect()

        def stream_data(stream_id: int, data: bytes) -> None:
            self.streams.setdefault(stream_id, []).append(data)
            if self.on_stream_data is not None:
                self.on_stream_data(stream_id, data)

        def stream_fin(stream_id: int) -> None:
            self.finished_streams.add(stream_id)
            if self.on_stream_fin is not None:
                self.on_stream_fin(stream_id)

        def peer_closed(code: int) -> None:
            if self.on_peer_close is not None:
                self.on_peer_close(code)

        def failed(reason: str) -> None:
            self._connected = False
            if self.on_error is not None:
                self.on_error(reason)

        callbacks.on_established = established
        callbacks.on_stream_data = stream_data
        callbacks.on_stream_fin = stream_fin
        callbacks.on_peer_closed = peer_closed
        callbacks.on_failed = failed

    # ------------------------------------------------------------------
    @property
    def connected(self) -> bool:
        return self._connected

    def send(self, stream_id: int, data: bytes, fin: bool = False) -> None:
        self._host._stream_call("send_stream", self.key, stream_id, data, fin)

    def close(self, code: int = 0) -> None:
        self._host._stream_call("close", self.key, code)

    def stream_bytes(self, stream_id: int) -> bytes:
        return b"".join(self.streams.get(stream_id, []))

    def __repr__(self) -> str:
        return f"QuicConnection({self.key}, connected={self._connected})"


class QuicHost:
    """One endpoint running the mini-QUIC stack."""

    def __init__(
        self,
        name: str,
        clock: Clock,
        mtu: int = 1200,
        max_frame_data: int = 1000,
        cc_factory: Any | None = None,
        access_log: AccessLog | None = None,
        interface_log: InterfaceLog | None = None,
        metrics: Any | None = None,
        tier: str = TIER_FULL,
        replacements: dict[str, Any] | None = None,
        insertions: list[tuple[str, str, Any]] | None = None,
    ):
        self.name = name
        builder = StackBuilder(
            "quic",
            name=f"quic:{name}",
            clock=clock,
            access_log=access_log,
            interface_log=interface_log,
            metrics=metrics,
            tier=tier,
        )
        builder.with_params(
            mtu=mtu, max_frame_data=max_frame_data, cc_factory=cc_factory
        )
        for slot, replacement in (replacements or {}).items():
            builder.with_replacement(slot, replacement)
        for slot, where, extra in insertions or []:
            builder.with_insertion(slot, extra, where=where)
        self.stack = builder.build()
        self.stream: StreamSublayer = self.stack.sublayer("stream")  # type: ignore[assignment]
        self._connections: dict[ConnId, QuicConnection] = {}
        self.on_accept: Callable[[QuicConnection], None] | None = None
        self.stream.on_accept = self._accepted
        self.on_transmit: Callable[..., None] | None = None
        self.on_transmit_batch: Callable[..., None] | None = None
        self.stack.on_transmit = lambda unit, **meta: self._transmit(unit, **meta)
        self.stack.on_transmit_batch = lambda units, metas=None: self._transmit_batch(
            units, metas
        )
        self.stack.on_deliver = lambda data, **meta: None

    @property
    def access_log(self) -> AccessLog:
        return self.stack.access_log

    @property
    def interface_log(self) -> InterfaceLog:
        return self.stack.interface_log

    def _transmit(self, unit: Any, **meta: Any) -> None:
        if self.on_transmit is not None:
            self.on_transmit(unit, **meta)

    def _transmit_batch(self, units: Any, metas: Any = None) -> None:
        if self.on_transmit_batch is not None:
            self.on_transmit_batch(units, metas)
        elif self.on_transmit is not None:
            if metas is None:
                for unit in units:
                    self.on_transmit(unit)
            else:
                for unit, meta in zip(units, metas):
                    self.on_transmit(unit, **meta)

    def receive(self, unit: Any, **meta: Any) -> None:
        self.stack.receive(unit, **meta)

    def receive_batch(self, units: Any, metas: Any = None) -> None:
        """Inject a batch of wire units (one stack entry for the lot)."""
        self.stack.receive_batch(units, metas)

    def _stream_call(self, method: str, *args: Any) -> Any:
        with acting_as("stream"):
            return getattr(self.stream, method)(*args)

    # ------------------------------------------------------------------
    def listen(self, port: int) -> None:
        self._stream_call("listen", port)

    def connect(self, lport: int, rport: int) -> QuicConnection:
        conn: ConnId = (lport, rport)
        connection = QuicConnection(self, conn)
        self._connections[conn] = connection
        self._stream_call("open", conn)
        return connection

    def connection_for(self, lport: int, rport: int) -> QuicConnection | None:
        return self._connections.get((lport, rport))

    def _accepted(self, conn: ConnId) -> None:
        connection = QuicConnection(self, conn)
        connection._connected = True
        self._connections[conn] = connection
        if self.on_accept is not None:
            self.on_accept(connection)

    def __repr__(self) -> str:
        return f"QuicHost({self.name!r}, {len(self._connections)} connections)"
