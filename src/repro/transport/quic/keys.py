"""Key derivation for mini-QUIC — the TLS key-schedule stand-in.

Both sides derive the same epoch-1 traffic key from the two handshake
randoms and the connection identity; only holders of both randoms can
compute it.  (A real deployment would run a TLS handshake here; the
*architectural* point — the connection sublayer derives keys and
installs them into the record sublayer through a narrow service
primitive — is unchanged.  DESIGN.md §1.)
"""

from __future__ import annotations

import hashlib


def derive_traffic_key(
    client_random: bytes, server_random: bytes, conn: tuple[int, int]
) -> bytes:
    material = (
        b"repro-quic-1rtt"
        + client_random
        + server_random
        + str(sorted(conn)).encode()
    )
    return hashlib.sha256(material).digest()
