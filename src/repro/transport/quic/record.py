"""The record (security) sublayer of mini-QUIC.

"QUIC ... has a clean sub-layering between networking (the transport
layer) and security (the record layer)" — Section 5.  Everything the
connection sublayer emits is, to this sublayer, opaque plaintext
bytes; everything on the wire below is an authenticated ciphertext.
The interface upward is exactly two things: the data path, and the
``install_key`` service primitive through which the connection
sublayer's handshake provisions each epoch's key.  Neither sublayer
sees the other's mechanisms (T3): the connection sublayer never
touches nonces or MACs; the record sublayer never parses a frame.

Cryptography is simulated but structurally faithful (DESIGN.md §1:
no real crypto requirement in a protocol-architecture reproduction):
a SHA-256-keystream XOR cipher with a truncated SHA-256 MAC, a fixed
public key for epoch 0 (QUIC's "initial secrets"), and handshake-
derived keys for epoch 1.
"""

from __future__ import annotations

import hashlib
from typing import Any

from ...core.errors import ConnectionError_
from ...core.header import Field, HeaderFormat
from ...core.interface import Primitive, ServiceInterface
from ...core.pdu import unwrap
from ...core.sublayer import Sublayer
from .frames import Frame  # noqa: F401  (documentation cross-reference)

RECORD_HEADER = HeaderFormat(
    "record",
    [
        Field("epoch", 8),
        Field("nonce", 64),
    ],
    owner="record",
)

MAC_BYTES = 8

#: QUIC's initial secret analogue: public, version-fixed.
INITIAL_KEY = hashlib.sha256(b"repro-quic-initial").digest()


def _keystream(key: bytes, nonce: int, length: int) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < length:
        block = hashlib.sha256(
            key + nonce.to_bytes(8, "big") + counter.to_bytes(4, "big")
        ).digest()
        out.extend(block)
        counter += 1
    return bytes(out[:length])


def _mac(key: bytes, nonce: int, ciphertext: bytes) -> bytes:
    return hashlib.sha256(
        b"mac" + key + nonce.to_bytes(8, "big") + ciphertext
    ).digest()[:MAC_BYTES]


class RecordSublayer(Sublayer):
    """Authenticated encryption of everything above it."""

    HEADER = RECORD_HEADER
    SERVICE = ServiceInterface(
        "record-service",
        [
            Primitive("install_key", "provision one epoch's traffic key"),
            # Pass-through port management: T2 allows a sublayer to talk
            # only to its immediate neighbours, so the record sublayer
            # re-exposes (and forwards) DM's binding primitives to the
            # connection sublayer above.
            Primitive("bind", "forwarded to DM"),
            Primitive("listen", "forwarded to DM"),
        ],
    )

    def on_attach(self) -> None:
        self.state.keys = {}          # (conn, epoch) -> key bytes
        self.state.nonce_counter = 0
        self.state.sealed = 0
        self.state.opened = 0
        self.state.auth_failures = 0

    # ------------------------------------------------------------------
    def srv_install_key(self, conn: Any, epoch: int, key: bytes) -> None:
        keys = dict(self.state.keys)
        keys[(conn, epoch)] = key
        self.state.keys = keys

    def srv_bind(self, conn: Any) -> None:
        assert self.below is not None
        self.below.bind(conn)

    def srv_listen(self, port: int) -> None:
        assert self.below is not None
        self.below.listen(port)

    def _key_for(self, conn: Any, epoch: int) -> bytes | None:
        if epoch == 0:
            return INITIAL_KEY
        return self.state.keys.get((conn, epoch))

    # ------------------------------------------------------------------
    def from_above(
        self, plaintext: Any, conn: Any = None, epoch: int = 0, **meta: Any
    ) -> None:
        if not isinstance(plaintext, (bytes, bytearray)):
            raise ConnectionError_("record sublayer seals bytes")
        key = self._key_for(conn, epoch)
        if key is None:
            raise ConnectionError_(
                f"no key installed for {conn} epoch {epoch}"
            )
        nonce = self.state.nonce_counter
        self.state.nonce_counter = nonce + 1
        stream = _keystream(key, nonce, len(plaintext))
        ciphertext = bytes(a ^ b for a, b in zip(plaintext, stream))
        sealed = ciphertext + _mac(key, nonce, ciphertext)
        self.state.sealed = self.state.sealed + 1
        self.send_down(
            self.wrap({"epoch": epoch, "nonce": nonce}, sealed), conn=conn
        )

    def from_below(self, pdu: Any, conn: Any = None, **meta: Any) -> None:
        if not hasattr(pdu, "owner") or pdu.owner != self.name:
            return
        values, sealed = unwrap(pdu, self.name)
        epoch, nonce = values["epoch"], values["nonce"]
        key = self._key_for(conn, epoch)
        if key is None or not isinstance(sealed, (bytes, bytearray)) or (
            len(sealed) < MAC_BYTES
        ):
            self.state.auth_failures = self.state.auth_failures + 1
            return
        ciphertext, tag = sealed[:-MAC_BYTES], sealed[-MAC_BYTES:]
        if _mac(key, nonce, ciphertext) != tag:
            # Forged or corrupted: drop silently, as AEAD demands.
            self.state.auth_failures = self.state.auth_failures + 1
            return
        stream = _keystream(key, nonce, len(ciphertext))
        plaintext = bytes(a ^ b for a, b in zip(ciphertext, stream))
        self.state.opened = self.state.opened + 1
        self.deliver_up(plaintext, conn=conn, epoch=epoch)
