"""The stream sublayer of mini-QUIC — ordering without head-of-line.

Section 5 suggests the QUIC transport "can likely be further sublayered
into a stream layer and a connection layer"; this is the stream half.
It segments each stream's bytes into :class:`StreamFrame`s handed to
the connection sublayer, and reassembles arriving frames *per stream*:
a lost packet stalls only the streams whose frames it carried, while
other streams keep delivering — the head-of-line freedom that SST and
Minion sought and that the paper frames as a sublayering use case
("How do I sublayer TCP to avoid HOL blocking?").  The E5 ablation
benchmark measures exactly that against single-stream TCP.

The sublayer knows nothing about packet numbers, acks, loss, keys, or
congestion (all the connection and record sublayers' business); its
entire downward surface is ``send_frames`` plus lifecycle
notifications (T2/T3).
"""

from __future__ import annotations

from typing import Any, Callable

from ...core.errors import ConnectionError_
from ...core.sublayer import Sublayer
from .connection import ConnId
from .frames import StreamFrame


class QuicConnCallbacks:
    """Per-connection callbacks a host registers."""

    def __init__(self) -> None:
        self.on_established: Callable[[], None] | None = None
        self.on_stream_data: Callable[[int, bytes], None] | None = None
        self.on_stream_fin: Callable[[int], None] | None = None
        self.on_peer_closed: Callable[[int], None] | None = None
        self.on_failed: Callable[[str], None] | None = None


class StreamSublayer(Sublayer):
    """Per-stream segmentation and reassembly over the connection."""

    def __init__(self, name: str = "stream", max_frame_data: int = 1000):
        super().__init__(name)
        self.max_frame_data = max_frame_data
        self._callbacks: dict[ConnId, QuicConnCallbacks] = {}
        self.on_accept: Callable[[ConnId], None] | None = None

    def clone_fresh(self) -> "StreamSublayer":
        return StreamSublayer(self.name, self.max_frame_data)

    def on_attach(self) -> None:
        self.state.conns = {}
        self.state.frames_sent = 0
        self.state.bytes_delivered = 0
        self.state.duplicate_frames = 0

    # ------------------------------------------------------------------
    def _get(self, conn: ConnId) -> dict | None:
        return self.state.conns.get(conn)

    def _put(self, conn: ConnId, record: dict) -> None:
        conns = dict(self.state.conns)
        conns[conn] = record
        self.state.conns = conns

    def _new_record(self) -> dict:
        return {
            "established": False,
            "announced": False,
            "snd": {},      # stream_id -> {"next_offset", "fin_sent", "acked_bytes", "fin_acked"}
            "rcv": {},      # stream_id -> {"deliver_nxt", "buffer", "fin_offset", "finished"}
            "pending": (),  # (stream_id, data, fin) queued pre-handshake
        }

    def callbacks(self, conn: ConnId) -> QuicConnCallbacks:
        if conn not in self._callbacks:
            self._callbacks[conn] = QuicConnCallbacks()
        return self._callbacks[conn]

    # ------------------------------------------------------------------
    # Host-facing API
    # ------------------------------------------------------------------
    def open(self, conn: ConnId) -> None:
        if self._get(conn) is not None:
            raise ConnectionError_(f"connection {conn} already open")
        self._put(conn, self._new_record())
        assert self.below is not None
        self.below.open(conn)

    def listen(self, port: int) -> None:
        assert self.below is not None
        self.below.listen(port)

    def send_stream(
        self, conn: ConnId, stream_id: int, data: bytes, fin: bool = False
    ) -> None:
        record = self._get(conn)
        if record is None:
            raise ConnectionError_(f"no connection {conn}")
        if not record["established"]:
            record = dict(record)
            record["pending"] = record["pending"] + ((stream_id, bytes(data), fin),)
            self._put(conn, record)
            return
        self._segment_and_send(conn, stream_id, bytes(data), fin)

    def close(self, conn: ConnId, code: int = 0) -> None:
        assert self.below is not None
        self.below.close(conn, code)

    # ------------------------------------------------------------------
    def _snd_stream(self, record: dict, stream_id: int) -> dict:
        snd = dict(record["snd"])
        if stream_id not in snd:
            snd[stream_id] = {
                "next_offset": 0, "fin_sent": False,
                "acked_bytes": 0, "fin_acked": False,
            }
        record["snd"] = snd
        return snd[stream_id]

    def _segment_and_send(
        self, conn: ConnId, stream_id: int, data: bytes, fin: bool
    ) -> None:
        record = dict(self._get(conn))
        stream = dict(self._snd_stream(record, stream_id))
        if stream["fin_sent"]:
            raise ConnectionError_(f"stream {stream_id} already finished")
        frames: list[StreamFrame] = []
        position = 0
        while position < len(data) or (fin and not frames and position == 0):
            chunk = data[position : position + self.max_frame_data]
            is_last = position + len(chunk) >= len(data)
            frames.append(StreamFrame(
                stream_id=stream_id,
                offset=stream["next_offset"] + position,
                data=chunk,
                fin=fin and is_last,
            ))
            position += max(len(chunk), 1)
            if not chunk:
                break
        stream["next_offset"] += len(data)
        stream["fin_sent"] = stream["fin_sent"] or fin
        snd = dict(record["snd"])
        snd[stream_id] = stream
        record["snd"] = snd
        self._put(conn, record)
        self.state.frames_sent = self.state.frames_sent + len(frames)
        assert self.below is not None
        self.below.send_frames(conn, frames)

    # ------------------------------------------------------------------
    # Notifications from the connection sublayer
    # ------------------------------------------------------------------
    def nf_established(self, conn: ConnId) -> None:
        record = self._get(conn)
        passive = record is None
        if record is None:
            record = self._new_record()
        record = dict(record)
        record["established"] = True
        announced = record["announced"]
        record["announced"] = True
        pending = record["pending"]
        record["pending"] = ()
        self._put(conn, record)
        if passive and not announced and self.on_accept is not None:
            self.on_accept(conn)
        callbacks = self._callbacks.get(conn)
        if not announced and callbacks is not None and (
            callbacks.on_established is not None
        ):
            callbacks.on_established()
        for stream_id, data, fin in pending:
            self._segment_and_send(conn, stream_id, data, fin)

    def nf_frame_acked(self, conn: ConnId, frame: StreamFrame) -> None:
        record = self._get(conn)
        if record is None:
            return
        record = dict(record)
        stream = dict(self._snd_stream(record, frame.stream_id))
        stream["acked_bytes"] += len(frame.data)
        if frame.fin:
            stream["fin_acked"] = True
        snd = dict(record["snd"])
        snd[frame.stream_id] = stream
        record["snd"] = snd
        self._put(conn, record)

    def nf_peer_closed(self, conn: ConnId, code: int) -> None:
        callbacks = self._callbacks.get(conn)
        if callbacks is not None and callbacks.on_peer_closed is not None:
            callbacks.on_peer_closed(code)

    def nf_failed(self, conn: ConnId, reason: str) -> None:
        callbacks = self._callbacks.get(conn)
        if callbacks is not None and callbacks.on_failed is not None:
            callbacks.on_failed(reason)

    # ------------------------------------------------------------------
    # Receive path: per-stream reassembly
    # ------------------------------------------------------------------
    def from_below(
        self, frame: Any, conn: ConnId | None = None, **meta: Any
    ) -> None:
        if conn is None or not isinstance(frame, StreamFrame):
            return
        record = self._get(conn)
        if record is None:
            return
        record = dict(record)
        rcv = dict(record["rcv"])
        stream = dict(rcv.get(frame.stream_id) or {
            "deliver_nxt": 0, "buffer": {}, "fin_offset": None,
            "finished": False,
        })
        end = frame.offset + len(frame.data)
        if frame.fin:
            stream["fin_offset"] = end
        if end <= stream["deliver_nxt"] or frame.offset in stream["buffer"]:
            self.state.duplicate_frames = self.state.duplicate_frames + 1
        else:
            buffer = dict(stream["buffer"])
            buffer[frame.offset] = frame.data
            stream["buffer"] = buffer
        rcv[frame.stream_id] = stream
        record["rcv"] = rcv
        self._put(conn, record)
        self._drain_stream(conn, frame.stream_id)

    def _drain_stream(self, conn: ConnId, stream_id: int) -> None:
        callbacks = self._callbacks.get(conn)
        while True:
            record = dict(self._get(conn))
            rcv = dict(record["rcv"])
            stream = dict(rcv[stream_id])
            buffer = dict(stream["buffer"])
            offset = stream["deliver_nxt"]
            if offset not in buffer:
                break
            data = buffer.pop(offset)
            stream["deliver_nxt"] = offset + len(data)
            stream["buffer"] = buffer
            rcv[stream_id] = stream
            record["rcv"] = rcv
            self._put(conn, record)
            self.state.bytes_delivered = self.state.bytes_delivered + len(data)
            if data and callbacks is not None and (
                callbacks.on_stream_data is not None
            ):
                callbacks.on_stream_data(stream_id, data)
            self.deliver_up(data, conn=conn, stream_id=stream_id)
        # fin?
        record = dict(self._get(conn))
        stream = dict(record["rcv"][stream_id])
        if (
            stream["fin_offset"] is not None
            and stream["deliver_nxt"] >= stream["fin_offset"]
            and not stream["finished"]
        ):
            stream["finished"] = True
            rcv = dict(record["rcv"])
            rcv[stream_id] = stream
            record["rcv"] = rcv
            self._put(conn, record)
            if callbacks is not None and callbacks.on_stream_fin is not None:
                callbacks.on_stream_fin(stream_id)
