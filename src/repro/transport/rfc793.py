"""The standard TCP header (RFC 793) and wire segments.

This is the monolithic TCP's native wire format and the target of the
sublayered TCP's interoperability shim.  The header is declared with
the same :class:`~repro.core.header.HeaderFormat` machinery as the
Fig 6 sublayered header, which is what lets
:mod:`repro.analysis.headers` check field-level isomorphism between
the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.header import Field, HeaderFormat

TCP_HEADER = HeaderFormat(
    "tcp",
    [
        Field("sport", 16),
        Field("dport", 16),
        Field("seq", 32),
        Field("ack", 32),
        Field("data_offset", 4, default=5),
        Field("reserved", 4),
        Field("cwr", 1),
        Field("ece", 1),
        Field("urg", 1),
        Field("ack_flag", 1),
        Field("psh", 1),
        Field("rst", 1),
        Field("syn", 1),
        Field("fin", 1),
        Field("window", 16),
        Field("checksum", 16),
        Field("urgent", 16),
    ],
    owner="tcp",
)

assert TCP_HEADER.bit_width == 160  # the canonical 20-byte header


@dataclass
class TcpSegment:
    """One TCP segment on the (simulated) wire."""

    header: dict[str, int]
    payload: bytes = b""

    def __post_init__(self) -> None:
        full = {name: 0 for name in TCP_HEADER.field_names()}
        full["data_offset"] = 5
        full.update(self.header)
        self.header = full

    # Convenience accessors --------------------------------------------
    @property
    def sport(self) -> int:
        return self.header["sport"]

    @property
    def dport(self) -> int:
        return self.header["dport"]

    @property
    def seq(self) -> int:
        return self.header["seq"]

    @property
    def ack(self) -> int:
        return self.header["ack"]

    @property
    def syn(self) -> bool:
        return bool(self.header["syn"])

    @property
    def fin(self) -> bool:
        return bool(self.header["fin"])

    @property
    def rst(self) -> bool:
        return bool(self.header["rst"])

    @property
    def has_ack(self) -> bool:
        return bool(self.header["ack_flag"])

    @property
    def window(self) -> int:
        return self.header["window"]

    @property
    def wire_bytes(self) -> int:
        return TCP_HEADER.byte_width + len(self.payload)

    def seg_len(self) -> int:
        """Sequence space the segment occupies (SYN and FIN count one)."""
        return len(self.payload) + int(self.syn) + int(self.fin)

    def flag_names(self) -> str:
        names = [
            f.upper()
            for f in ("syn", "fin", "rst", "psh")
            if self.header[f]
        ]
        if self.has_ack:
            names.append("ACK")
        return "|".join(names) or "-"

    def to_bytes(self) -> bytes:
        return TCP_HEADER.pack_bytes(self.header) + self.payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "TcpSegment":
        values = TCP_HEADER.unpack_bytes(data)
        return cls(header=values, payload=data[TCP_HEADER.byte_width :])

    def __repr__(self) -> str:
        return (
            f"TcpSegment({self.sport}->{self.dport} {self.flag_names()} "
            f"seq={self.seq} ack={self.ack} win={self.window} "
            f"len={len(self.payload)})"
        )
