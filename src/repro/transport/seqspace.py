"""32-bit sequence-number arithmetic shared by both TCPs.

Internally both implementations track *unbounded* byte offsets (Python
ints anchored at the ISN), which makes window logic trivially correct;
sequence numbers are folded to 32 bits at the wire and unfolded
relative to a nearby reference on receive.  The unfold window is
+/- 2^31, the standard serial-number-arithmetic convention (RFC 1982).
"""

from __future__ import annotations

SEQ_MOD = 1 << 32
_HALF = 1 << 31


def fold(seq: int) -> int:
    """Unbounded sequence -> 32-bit wire value."""
    return seq % SEQ_MOD


def unfold(reference: int, wire_seq: int) -> int:
    """Wire value -> the unbounded sequence nearest ``reference``.

    The result is within 2^31 of the reference in either direction.
    """
    delta = (wire_seq - fold(reference)) % SEQ_MOD
    if delta >= _HALF:
        delta -= SEQ_MOD
    return reference + delta


def seq_between(low: int, value: int, high: int) -> bool:
    """low <= value < high on unbounded sequences."""
    return low <= value < high
