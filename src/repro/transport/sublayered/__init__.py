"""The sublayered TCP of Fig 5: OSR > RD > CM > DM (+ optional shim)."""

from .cm import CmSublayer
from .cm_timer import TimerCmSublayer
from .congestion import (
    AimdCc,
    CC_SCHEMES,
    CongestionControl,
    FixedWindowCc,
    RateBasedCc,
)
from .dm import ConnId, DmSublayer
from .headers import (
    CM_FIN,
    CM_FINACK,
    CM_HEADER,
    CM_HSACK,
    CM_NONE,
    CM_SYN,
    CM_SYNACK,
    DM_HEADER,
    NATIVE_HEADER_BITS,
    OSR_CTL_DATA,
    OSR_CTL_PROBE,
    OSR_CTL_UPDATE,
    OSR_HEADER,
    RD_HEADER,
)
from .host import SublayeredTcpHost, SubTcpSocket
from .osr import OsrSublayer
from .rd import RdSublayer, segment_length
from .shim import Rfc793Shim

__all__ = [
    "AimdCc",
    "CC_SCHEMES",
    "CM_FIN",
    "CM_FINACK",
    "CM_HEADER",
    "CM_HSACK",
    "CM_NONE",
    "CM_SYN",
    "CM_SYNACK",
    "CmSublayer",
    "CongestionControl",
    "ConnId",
    "DM_HEADER",
    "DmSublayer",
    "FixedWindowCc",
    "NATIVE_HEADER_BITS",
    "OSR_CTL_DATA",
    "OSR_CTL_PROBE",
    "OSR_CTL_UPDATE",
    "OSR_HEADER",
    "OsrSublayer",
    "RD_HEADER",
    "RateBasedCc",
    "RdSublayer",
    "Rfc793Shim",
    "SubTcpSocket",
    "SublayeredTcpHost",
    "TimerCmSublayer",
    "segment_length",
]
