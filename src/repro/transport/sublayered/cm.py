"""CM — the connection-management sublayer of Fig 5.

"The main service it provides is to establish a pair of Initial
Sequence Numbers ...  Intuitively, CM sets up RD by providing a range
of sequence numbers not present in the network so that segments and
acks can be trusted as not being delayed duplicates."

CM encapsulates the SYN/FIN machinery and the ISN-choosing mechanism
(pluggable: RFC 793 clock, RFC 1948 crypto, Watson timer — the C5
replace experiment swaps these).  Its reliability is the paper's
"bootstrap mechanism": retransmission and timeout of SYNs and FINs,
no windows.  Its narrow upward interface hands RD exactly one thing —
the ISN pair — plus lifecycle notifications; everything else about
sequence numbers is RD's business (T2/T3).

CM is also "initially active and then silent" (Section 7): after the
handshake it merely stamps its static subheader onto passing segments.
"""

from __future__ import annotations

from typing import Any

from ...core.clock import TimerHandle
from ...core.errors import ConfigurationError, ConnectionError_
from ...core.interface import Primitive, ServiceInterface
from ...core.pdu import unwrap
from ...core.sublayer import Sublayer
from ..isn import ClockIsn, IsnScheme
from .dm import ConnId
from .headers import (
    CM_FIN,
    CM_FINACK,
    CM_HEADER,
    CM_HSACK,
    CM_NONE,
    CM_SYN,
    CM_SYNACK,
)

# CM-internal connection phases.
P_SYN_SENT = "SYN_SENT"
P_SYN_RCVD = "SYN_RCVD"
P_ESTABLISHED = "ESTABLISHED"
P_FAILED = "FAILED"


class CmSublayer(Sublayer):
    """SYN/FIN handshakes and ISN establishment."""

    HEADER = CM_HEADER
    SERVICE = ServiceInterface(
        "cm-service",
        [
            Primitive("open", "actively open a connection"),
            Primitive("listen", "passively accept on a port"),
            Primitive("close", "send our FIN at a stream offset"),
            Primitive("get_isns", "the (local, remote) ISN pair"),
        ],
    )
    NOTIFICATIONS = ("established", "peer_closed", "closed", "failed")

    def __init__(
        self,
        name: str = "cm",
        isn_scheme: IsnScheme | None = None,
        handshake_timeout: float = 0.2,
        max_retries: int = 8,
    ):
        super().__init__(name)
        self.isn_scheme = isn_scheme if isn_scheme is not None else ClockIsn()
        self.handshake_timeout = handshake_timeout
        self.max_retries = max_retries
        self._timers: dict[tuple[ConnId, str], TimerHandle] = {}

    def clone_fresh(self) -> "CmSublayer":
        return CmSublayer(
            self.name, self.isn_scheme, self.handshake_timeout, self.max_retries
        )

    def on_attach(self) -> None:
        self.state.conns = {}        # ConnId -> record dict
        self.state.listening = set()
        self.state.syns_sent = 0
        self.state.fins_sent = 0
        # Measurement-side bookkeeping (not protocol state): when each
        # handshake started, for the handshake_latency histogram.
        self._hs_started: dict[ConnId, float] = {}

    # ------------------------------------------------------------------
    # Service primitives (RD calls these)
    # ------------------------------------------------------------------
    def srv_open(self, conn: ConnId) -> None:
        if conn in self.state.conns:
            raise ConnectionError_(f"connection {conn} already exists")
        if self.below is None:
            raise ConfigurationError(
                f"CM sublayer {self.name!r} has no port below "
                f"(not attached above a DM sublayer)"
            )
        self.below.bind(conn)
        isn = self.isn_scheme.choose(self.clock, (0, conn[0], 0, conn[1]))
        self._put(conn, {
            "phase": P_SYN_SENT,
            "isn": isn,
            "remote_isn": None,
            "retries": 0,
            "local_fin_offset": None,
            "local_fin_acked": False,
            "remote_fin_rcvd": False,
        })
        self._hs_started[conn] = self.clock.now()
        self._send_syn(conn)

    def srv_listen(self, port: int) -> None:
        listening = set(self.state.listening)
        listening.add(port)
        self.state.listening = listening
        if self.below is None:
            raise ConfigurationError(
                f"CM sublayer {self.name!r} has no port below "
                f"(not attached above a DM sublayer)"
            )
        self.below.listen(port)

    def srv_close(self, conn: ConnId, final_offset: int) -> None:
        record = self._get(conn)
        if record is None:
            return
        record = dict(record)
        record["local_fin_offset"] = final_offset
        self._put(conn, record)
        self._send_fin(conn)

    def srv_get_isns(self, conn: ConnId) -> tuple[int, int] | None:
        record = self._get(conn)
        if record is None or record["remote_isn"] is None:
            return None
        return record["isn"], record["remote_isn"]

    # ------------------------------------------------------------------
    def _get(self, conn: ConnId) -> dict | None:
        return self.state.conns.get(conn)

    def _put(self, conn: ConnId, record: dict) -> None:
        conns = dict(self.state.conns)
        conns[conn] = record
        self.state.conns = conns

    def _cm_packet(self, conn: ConnId, kind: int, offset: int = 0) -> dict[str, int]:
        record = self._get(conn)
        assert record is not None
        return {
            "kind": kind,
            "isn": record["isn"],
            "ack_isn": record["remote_isn"] or 0,
            "offset": offset,
        }

    # ------------------------------------------------------------------
    # Handshake sends with bootstrap retransmission
    # ------------------------------------------------------------------
    def _send_syn(self, conn: ConnId) -> None:
        record = self._get(conn)
        if record is None or record["phase"] not in (P_SYN_SENT, P_SYN_RCVD):
            return
        kind = CM_SYN if record["phase"] == P_SYN_SENT else CM_SYNACK
        self.count("syns_sent")
        self.send_down(self.wrap(self._cm_packet(conn, kind), None), conn=conn)
        self._arm(conn, "hs", self._on_hs_timeout)

    def _send_fin(self, conn: ConnId) -> None:
        record = self._get(conn)
        if record is None or record["local_fin_offset"] is None:
            return
        if record["local_fin_acked"]:
            return
        self.count("fins_sent")
        self.send_down(
            self.wrap(
                self._cm_packet(conn, CM_FIN, offset=record["local_fin_offset"]),
                None,
            ),
            conn=conn,
        )
        self._arm(conn, "fin", self._on_fin_timeout)

    def _arm(self, conn: ConnId, which: str, handler) -> None:
        key = (conn, which)
        existing = self._timers.get(key)
        if existing is not None:
            existing.cancel()
        self._timers[key] = self.clock.call_later(
            self.handshake_timeout, lambda: handler(conn)
        )

    def _cancel(self, conn: ConnId, which: str) -> None:
        timer = self._timers.pop((conn, which), None)
        if timer is not None:
            timer.cancel()

    def _note_established(self, conn: ConnId) -> None:
        """Record open/SYN -> ESTABLISHED latency (virtual time)."""
        started = self._hs_started.pop(conn, None)
        if started is not None:
            self.metrics.observe_hist(
                "handshake_latency", self.clock.now() - started
            )

    def _on_hs_timeout(self, conn: ConnId) -> None:
        record = self._get(conn)
        if record is None or record["phase"] == P_ESTABLISHED:
            return
        record = dict(record)
        record["retries"] += 1
        self._put(conn, record)
        if record["retries"] > self.max_retries:
            record["phase"] = P_FAILED
            self._put(conn, record)
            self.notify("failed", conn, "handshake timed out")
            return
        self._send_syn(conn)

    def _on_fin_timeout(self, conn: ConnId) -> None:
        record = self._get(conn)
        if record is None or record["local_fin_acked"]:
            return
        self._send_fin(conn)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def from_above(self, sdu: Any, conn: ConnId | None = None, **meta: Any) -> None:
        if conn is None:
            raise ConnectionError_("CM needs a conn tag")
        record = self._get(conn)
        if record is None or record["phase"] != P_ESTABLISHED:
            return  # RD should not send before `established`; drop
        self.send_down(self.wrap(self._cm_packet(conn, CM_NONE), sdu), conn=conn)

    def from_below(self, pdu: Any, conn: ConnId | None = None, **meta: Any) -> None:
        if conn is None or not hasattr(pdu, "owner") or pdu.owner != self.name:
            return
        values, inner = unwrap(pdu, self.name)
        kind = values["kind"]
        if kind == CM_NONE:
            self._on_data_segment(conn, values, inner)
        elif kind == CM_SYN:
            self._on_syn(conn, values)
        elif kind == CM_SYNACK:
            self._on_synack(conn, values)
        elif kind == CM_HSACK:
            self._on_hsack(conn, values)
        elif kind == CM_FIN:
            self._on_fin(conn, values)
        elif kind == CM_FINACK:
            self._on_finack(conn, values)

    # ------------------------------------------------------------------
    def _on_syn(self, conn: ConnId, values: dict) -> None:
        record = self._get(conn)
        if record is not None:
            # Duplicate SYN: re-answer if we are the passive side.
            if record["phase"] in (P_SYN_RCVD, P_ESTABLISHED) and (
                record["remote_isn"] == values["isn"]
            ):
                self.send_down(
                    self.wrap(self._cm_packet(conn, CM_SYNACK), None), conn=conn
                )
            return
        if conn[0] not in self.state.listening:
            return
        assert self.below is not None
        self.below.bind(conn)
        isn = self.isn_scheme.choose(self.clock, (0, conn[0], 0, conn[1]))
        self._put(conn, {
            "phase": P_SYN_RCVD,
            "isn": isn,
            "remote_isn": values["isn"],
            "retries": 0,
            "local_fin_offset": None,
            "local_fin_acked": False,
            "remote_fin_rcvd": False,
        })
        self._hs_started[conn] = self.clock.now()
        self._send_syn(conn)  # sends SYNACK in SYN_RCVD phase

    def _on_synack(self, conn: ConnId, values: dict) -> None:
        record = self._get(conn)
        if record is None or record["phase"] != P_SYN_SENT:
            if record is not None and record["phase"] == P_ESTABLISHED:
                # our HSACK was lost: repeat it
                self.send_down(
                    self.wrap(self._cm_packet(conn, CM_HSACK), None), conn=conn
                )
            return
        if values["ack_isn"] != record["isn"]:
            return  # not acking our SYN
        record = dict(record)
        record["remote_isn"] = values["isn"]
        record["phase"] = P_ESTABLISHED
        self._put(conn, record)
        self._cancel(conn, "hs")
        self._note_established(conn)
        self.send_down(self.wrap(self._cm_packet(conn, CM_HSACK), None), conn=conn)
        self.notify("established", conn)

    def _on_hsack(self, conn: ConnId, values: dict) -> None:
        record = self._get(conn)
        if record is None or record["phase"] != P_SYN_RCVD:
            return
        if values["ack_isn"] != record["isn"]:
            return
        record = dict(record)
        record["phase"] = P_ESTABLISHED
        self._put(conn, record)
        self._cancel(conn, "hs")
        self._note_established(conn)
        self.notify("established", conn)

    def _on_data_segment(self, conn: ConnId, values: dict, inner: Any) -> None:
        record = self._get(conn)
        if record is None:
            return
        if record["phase"] == P_SYN_RCVD and values["isn"] == record["remote_isn"]:
            # Data implies the peer got our SYNACK but our view of its
            # HSACK was lost: promote, as standard TCP does.
            record = dict(record)
            record["phase"] = P_ESTABLISHED
            self._put(conn, record)
            self._cancel(conn, "hs")
            self._note_established(conn)
            self.notify("established", conn)
        if self._get(conn)["phase"] != P_ESTABLISHED:
            return
        self.deliver_up(inner, conn=conn)

    def _on_fin(self, conn: ConnId, values: dict) -> None:
        record = self._get(conn)
        if record is None:
            return
        self.send_down(
            self.wrap(
                self._cm_packet(conn, CM_FINACK, offset=values["offset"]), None
            ),
            conn=conn,
        )
        if not record["remote_fin_rcvd"]:
            record = dict(record)
            record["remote_fin_rcvd"] = True
            self._put(conn, record)
            self.notify("peer_closed", conn, values["offset"])

    def _on_finack(self, conn: ConnId, values: dict) -> None:
        record = self._get(conn)
        if record is None or record["local_fin_offset"] is None:
            return
        if values["offset"] != record["local_fin_offset"]:
            return
        if not record["local_fin_acked"]:
            record = dict(record)
            record["local_fin_acked"] = True
            self._put(conn, record)
            self._cancel(conn, "fin")
            self.notify("closed", conn)
