"""A timer-based connection-management sublayer (Watson, ref [31]).

Section 3's fungibility claim names this exact swap: "one could in
principle seamlessly replace ... connection management (by a
timer-based scheme [31])".  Watson's delta-t protocol observes that if
sequence numbers are guaranteed unique over the maximum segment
lifetime by *time alone*, no SYN handshake is needed: a connection
exists implicitly whenever packets for it are in flight, and its state
simply expires after a quiet interval.

:class:`TimerCmSublayer` implements that discipline behind the exact
``cm-service`` interface of the handshaking CM:

* ``open`` is 0-RTT: the connection is established immediately with a
  timer-derived ISN (:class:`~repro.transport.isn.TimerIsn`); the
  first data segment carries the ISN in the static CM subheader, which
  is how the passive side learns it (implicit connection setup);
* the passive side creates and establishes state on the first data
  segment for a listening port — no SYN, no SYNACK, no HSACK packets
  ever appear on the wire;
* the active side learns the peer's ISN from the CM subheader of the
  first segment flowing back, and tells RD to rebase (RD has received
  nothing yet, so rebasing is sound);
* close keeps the explicit FIN/FINACK exchange (Watson would expire by
  timer; we keep the close signal so the socket API's callbacks are
  scheme-independent), but connection state also expires after a
  quiet interval, delta-t style.

Because the class honours the same service interface, notifications,
and header format, swapping it in is — as the C5 benchmark verifies —
a constructor argument, with every other sublayer untouched.
"""

from __future__ import annotations

from typing import Any

from ...core.errors import ConnectionError_
from ..isn import IsnScheme, TimerIsn
from .cm import CmSublayer, P_ESTABLISHED
from .dm import ConnId
from .headers import CM_NONE


class TimerCmSublayer(CmSublayer):
    """Implicit, 0-RTT connection management with timer-expiry state."""

    def __init__(
        self,
        name: str = "cm",
        isn_scheme: IsnScheme | None = None,
        handshake_timeout: float = 0.2,
        max_retries: int = 8,
        quiet_interval: float = 30.0,
    ):
        super().__init__(
            name,
            isn_scheme if isn_scheme is not None else TimerIsn(),
            handshake_timeout,
            max_retries,
        )
        self.quiet_interval = quiet_interval

    def clone_fresh(self) -> "TimerCmSublayer":
        return TimerCmSublayer(
            self.name, self.isn_scheme, self.handshake_timeout,
            self.max_retries, self.quiet_interval,
        )

    def on_attach(self) -> None:
        super().on_attach()
        self.state.implicit_opens = 0
        self.state.expired = 0

    # ------------------------------------------------------------------
    def _record(self, isn: int, remote_isn: int | None) -> dict:
        return {
            "phase": P_ESTABLISHED,   # timer CM is always established
            "isn": isn,
            "remote_isn": remote_isn,
            "retries": 0,
            "local_fin_offset": None,
            "local_fin_acked": False,
            "remote_fin_rcvd": False,
            "last_activity": self.clock.now(),
        }

    def srv_open(self, conn: ConnId) -> None:
        if conn in self.state.conns:
            raise ConnectionError_(f"connection {conn} already exists")
        assert self.below is not None
        self.below.bind(conn)
        isn = self.isn_scheme.choose(self.clock, (0, conn[0], 0, conn[1]))
        self._put(conn, self._record(isn, remote_isn=None))
        # 0-RTT: established right away; RD/OSR may start sending.
        self.notify("established", conn)
        self._schedule_expiry(conn)

    def srv_get_isns(self, conn: ConnId) -> tuple[int, int | None] | None:
        record = self._get(conn)
        if record is None:
            return None
        # Before the first return packet the peer's ISN is unknown;
        # RD tolerates None and rebases when the value is learned.
        return record["isn"], record["remote_isn"]

    # ------------------------------------------------------------------
    def from_above(self, sdu: Any, conn: ConnId | None = None, **meta: Any) -> None:
        if conn is None:
            raise ConnectionError_("CM needs a conn tag")
        record = self._get(conn)
        if record is None:
            return
        self._touch(conn)
        self.send_down(self.wrap(self._cm_packet(conn, CM_NONE), sdu), conn=conn)

    def _on_data_segment(self, conn: ConnId, values: dict, inner: Any) -> None:
        record = self._get(conn)
        if record is None:
            # Implicit passive open: the first segment for a listening
            # port creates and establishes the connection.
            if conn[0] not in self.state.listening:
                return
            assert self.below is not None
            self.below.bind(conn)
            isn = self.isn_scheme.choose(self.clock, (0, conn[0], 0, conn[1]))
            self._put(conn, self._record(isn, remote_isn=values["isn"]))
            self.state.implicit_opens = self.state.implicit_opens + 1
            self.notify("established", conn)
            self._schedule_expiry(conn)
        elif record["remote_isn"] is None:
            # Active side learning the peer's ISN from the first
            # returning segment: latch and have RD rebase.
            record = dict(record)
            record["remote_isn"] = values["isn"]
            self._put(conn, record)
            self.notify("established", conn)  # re-announce with real ISNs
        self._touch(conn)
        self.deliver_up(inner, conn=conn)

    # Handshake packets never occur; ignore them if a peer sends any.
    def _on_syn(self, conn: ConnId, values: dict) -> None:
        return

    def _on_synack(self, conn: ConnId, values: dict) -> None:
        return

    def _on_hsack(self, conn: ConnId, values: dict) -> None:
        return

    # ------------------------------------------------------------------
    # Delta-t state expiry
    # ------------------------------------------------------------------
    def _touch(self, conn: ConnId) -> None:
        record = self._get(conn)
        if record is not None:
            record = dict(record)
            record["last_activity"] = self.clock.now()
            self._put(conn, record)

    def _schedule_expiry(self, conn: ConnId) -> None:
        self.clock.call_later(self.quiet_interval, lambda: self._maybe_expire(conn))

    def _maybe_expire(self, conn: ConnId) -> None:
        record = self._get(conn)
        if record is None:
            return
        idle = self.clock.now() - record["last_activity"]
        if idle + 1e-9 >= self.quiet_interval:
            conns = dict(self.state.conns)
            conns.pop(conn, None)
            self.state.conns = conns
            self.state.expired = self.state.expired + 1
            assert self.below is not None
            self.below.unbind(conn)
            return
        self.clock.call_later(
            self.quiet_interval - idle, lambda: self._maybe_expire(conn)
        )
