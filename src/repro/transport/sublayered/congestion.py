"""Pluggable congestion control for OSR.

Section 3: "rate control is hidden within OSR" and "if each sublayer
adheres to its API, one could in principle seamlessly replace
congestion control (by say a rate-based protocol)".  The C5 benchmark
does exactly that swap; these classes are the choices.

A controller sees only what the paper says OSR sees: ack summaries and
loss summaries from RD (via OSR), and answers one question — how many
bytes may be in flight.
"""

from __future__ import annotations

from ...core.errors import ConfigurationError


class CongestionControl:
    """Interface: a bytes-in-flight budget driven by ack/loss events."""

    name = "abstract"

    def __init__(self, mss: int):
        self.mss = mss

    def window(self) -> int:
        """Current allowance, in bytes."""
        raise NotImplementedError

    def on_ack(self, acked_bytes: int, rtt: float | None = None) -> None:
        """Data left the network successfully."""

    def on_loss(self, kind: str) -> None:
        """RD's loss summary: ``"dupack"`` or ``"timeout"``."""


class AimdCc(CongestionControl):
    """Reno-style slow start / congestion avoidance / halving.

    Mirrors the monolithic TCP's congestion behaviour so the C3
    performance comparison isolates the architecture, not the
    algorithm.
    """

    name = "aimd"

    def __init__(self, mss: int, initial_segments: int = 2):
        super().__init__(mss)
        self.cwnd = initial_segments * mss
        self.ssthresh = 64 * 1024

    def window(self) -> int:
        return self.cwnd

    def on_ack(self, acked_bytes: int, rtt: float | None = None) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += min(acked_bytes, self.mss)          # slow start
        else:
            self.cwnd += max(1, self.mss * self.mss // self.cwnd)  # CA

    def on_loss(self, kind: str) -> None:
        self.ssthresh = max(self.cwnd // 2, 2 * self.mss)
        self.cwnd = self.ssthresh if kind == "dupack" else self.mss


class RateBasedCc(CongestionControl):
    """A rate-based controller: flight budget = rate x smoothed RTT.

    Additive rate increase on acks, multiplicative decrease on loss —
    the "rate-based protocol" replacement the paper floats.
    """

    name = "rate"

    def __init__(self, mss: int, initial_rate: float | None = None):
        super().__init__(mss)
        self.rate = initial_rate if initial_rate is not None else 20.0 * mss
        self.srtt = 0.2

    def window(self) -> int:
        return max(self.mss, int(self.rate * self.srtt))

    def on_ack(self, acked_bytes: int, rtt: float | None = None) -> None:
        if rtt is not None and rtt > 0:
            self.srtt = 0.875 * self.srtt + 0.125 * rtt
        # += one mss per smoothed RTT, apportioned per acked byte
        window = max(self.mss, self.rate * self.srtt)
        self.rate += self.mss * acked_bytes / window / self.srtt

    def on_loss(self, kind: str) -> None:
        factor = 0.7 if kind == "dupack" else 0.5
        self.rate = max(self.mss / 1.0, self.rate * factor)


class FixedWindowCc(CongestionControl):
    """A constant window — the ablation baseline (no congestion control)."""

    name = "fixed"

    def __init__(self, mss: int, segments: int = 8):
        super().__init__(mss)
        if segments < 1:
            raise ConfigurationError("fixed window needs at least one segment")
        self._window = segments * mss

    def window(self) -> int:
        return self._window


#: Registry for the C5 replace benchmark.
CC_SCHEMES: dict[str, type[CongestionControl]] = {
    cls.name: cls for cls in (AimdCc, RateBasedCc, FixedWindowCc)
}
