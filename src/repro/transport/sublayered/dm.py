"""DM — the demultiplexing sublayer at the bottom of Fig 5.

"The lowest demultiplexing (DM) sublayer is essentially UDP; it allows
demultiplexing via standard destination and source port numbers.  No
sublayer can do its work without DM; so we place DM at the bottom.
DM encapsulates details of binding IP addresses to ports and reusing
ports.  To pass test T3, DM only uses the destination and source port
numbers."

Its service interface to CM is exactly port management: bind a
connection's port pair, register a listening port, release a binding.
On the data path it wraps/strips the two-port DM header and drops
anything addressed to an unbound, non-listening port.
"""

from __future__ import annotations

from typing import Any

from ...core.errors import ConnectionError_
from ...core.interface import Primitive, ServiceInterface
from ...core.pdu import unwrap
from ...core.sublayer import Sublayer
from .headers import DM_HEADER

ConnId = tuple[int, int]  # (local_port, remote_port)


class DmSublayer(Sublayer):
    """Port binding and per-connection demultiplexing."""

    HEADER = DM_HEADER
    SERVICE = ServiceInterface(
        "dm-service",
        [
            Primitive("bind", "register a (local, remote) port pair"),
            Primitive("listen", "accept new peers on a local port"),
            Primitive("unbind", "release a port pair"),
        ],
    )

    def on_attach(self) -> None:
        self.state.bound = set()       # of ConnId
        self.state.listening = set()   # of local port
        self.state.demuxed = 0
        self.state.dropped_unbound = 0

    # ------------------------------------------------------------------
    # Service primitives (called by CM through its port)
    # ------------------------------------------------------------------
    def srv_bind(self, conn: ConnId) -> None:
        bound = set(self.state.bound)
        if conn in bound:
            raise ConnectionError_(f"port pair {conn} already bound")
        bound.add(conn)
        self.state.bound = bound

    def srv_listen(self, port: int) -> None:
        listening = set(self.state.listening)
        listening.add(port)
        self.state.listening = listening

    def srv_unbind(self, conn: ConnId) -> None:
        bound = set(self.state.bound)
        bound.discard(conn)
        self.state.bound = bound

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def from_above(self, sdu: Any, conn: ConnId | None = None, **meta: Any) -> None:
        if conn is None:
            raise ConnectionError_("DM needs a conn=(lport, rport) tag")
        lport, rport = conn
        self.send_down(self.wrap({"sport": lport, "dport": rport}, sdu))

    def from_below(self, pdu: Any, **meta: Any) -> None:
        if not hasattr(pdu, "owner") or pdu.owner != self.name:
            return  # not a native sublayered unit: drop
        values, inner = unwrap(pdu, self.name)
        conn: ConnId = (values["dport"], values["sport"])  # local view
        if conn in self.state.bound or conn[0] in self.state.listening:
            self.state.demuxed = self.state.demuxed + 1
            self.deliver_up(inner, conn=conn)
        else:
            self.state.dropped_unbound = self.state.dropped_unbound + 1
