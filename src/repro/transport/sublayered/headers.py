"""The Fig 6 sublayered TCP header: one subheader per sublayer.

"The header as shown bears no resemblance to the standard TCP header
in order to clearly separate sublayers" — each sublayer owns its own
fields (T3), and the full native header is the concatenation
DM | CM | RD | OSR.  The isomorphism with RFC 793 that Section 3.1
argues for is implemented by the shim
(:mod:`repro.transport.sublayered.shim`) and checked field-by-field by
:mod:`repro.analysis.headers`.

Deviations from the figure, both documented in DESIGN.md:

* pure RD acknowledgements carry no OSR subheader (flow-control
  signals ride only on OSR-originated segments), so "the ISN header is
  redundant [but] static" applies to CM's subheader only;
* the CM subheader carries an explicit ``offset`` used by FIN/FINACK —
  standard TCP's FIN consumes a sequence number, and the shim needs
  the FIN's stream position to translate losslessly.
"""

from __future__ import annotations

from ...core.header import Field, HeaderFormat

# ----------------------------------------------------------------------
# DM — demultiplexing ("essentially UDP"): ports only.
# ----------------------------------------------------------------------
DM_HEADER = HeaderFormat(
    "dm",
    [Field("sport", 16), Field("dport", 16)],
    owner="dm",
)

# ----------------------------------------------------------------------
# CM — connection management: handshake kind, the ISNs, FIN position.
# ----------------------------------------------------------------------
CM_NONE = 0      # a data-path segment; CM fields are static ISN echo
CM_SYN = 1
CM_SYNACK = 2
CM_HSACK = 3     # final handshake ack
CM_FIN = 4
CM_FINACK = 5

CM_KIND_NAMES = {
    CM_NONE: "none", CM_SYN: "syn", CM_SYNACK: "synack",
    CM_HSACK: "hsack", CM_FIN: "fin", CM_FINACK: "finack",
}

CM_HEADER = HeaderFormat(
    "cm",
    [
        Field("kind", 3),
        Field("pad", 5),
        Field("isn", 32),       # sender's ISN (static after handshake)
        Field("ack_isn", 32),   # peer's ISN as understood by the sender
        Field("offset", 32),    # FIN/FINACK: byte-stream position of the FIN
    ],
    owner="cm",
)

# ----------------------------------------------------------------------
# RD — reliable delivery: sequence numbers, cumulative ack, one SACK
# range.  seq/ack are absolute (ISN-anchored) like TCP's.
# ----------------------------------------------------------------------
RD_HEADER = HeaderFormat(
    "rd",
    [
        Field("seq", 32),
        Field("ack", 32),
        Field("has_data", 1),
        Field("is_ack", 1),
        Field("pad", 6),
        Field("sack_left", 32),   # 0/0 = no SACK range
        Field("sack_right", 32),
    ],
    owner="rd",
)

# ----------------------------------------------------------------------
# OSR — ordering/segmenting/rate control: the congestion and flow
# control signals the paper places in the OSR subheader.
# ----------------------------------------------------------------------
OSR_CTL_DATA = 0
OSR_CTL_UPDATE = 1   # window update (answer to nothing; informational)
OSR_CTL_PROBE = 2    # zero-window probe (peer answers with an update)

OSR_HEADER = HeaderFormat(
    "osr",
    [
        Field("wnd", 16),   # receiver window (flow control)
        Field("ecn", 2),    # explicit congestion bits (carried, unused by sim)
        Field("ctl", 2),    # data / window-update / zero-window-probe
        Field("pad", 4),
    ],
    owner="osr",
)

#: Total native header when all four subheaders are present.
NATIVE_HEADER_BITS = (
    DM_HEADER.bit_width
    + CM_HEADER.bit_width
    + RD_HEADER.bit_width
    + OSR_HEADER.bit_width
)
