"""The sublayered TCP host: Fig 5's stack plus a socket API.

Assembles OSR > RD > CM > DM into a :class:`~repro.core.stack.Stack`
(optionally with the RFC 793 shim at the bottom for interop) and
exposes the same application surface as
:class:`~repro.transport.monolithic.MonolithicTcpHost` — ``listen``,
``connect``, sockets with data/close callbacks — so links, benchmarks,
and examples can treat either TCP uniformly.
"""

from __future__ import annotations

from typing import Any, Callable

from ...compose.builder import StackBuilder
from ...core.clock import Clock
from ...core.instrument import AccessLog, acting_as
from ...core.interface import InterfaceLog
from ...core.wiring import TIER_FULL
from ..config import TcpConfig
from .cm import CmSublayer
from .congestion import CongestionControl
from .dm import ConnId
from .osr import OsrSublayer
from .rd import RdSublayer


class SubTcpSocket:
    """The application's handle on one sublayered TCP connection."""

    def __init__(self, host: "SublayeredTcpHost", conn: ConnId):
        self._host = host
        self.key = conn
        self.received: list[bytes] = []
        self.on_data: Callable[[bytes], None] | None = None
        self.on_connect: Callable[[], None] | None = None
        self.on_close: Callable[[], None] | None = None      # our FIN acked
        self.on_peer_close: Callable[[], None] | None = None
        self.on_error: Callable[[str], None] | None = None
        self._connected = False
        self._wire()

    def _wire(self) -> None:
        callbacks = self._host._osr_call("callbacks", self.key)

        def established() -> None:
            self._connected = True
            if self.on_connect is not None:
                self.on_connect()

        def data(chunk: bytes) -> None:
            self.received.append(chunk)
            if self.on_data is not None:
                self.on_data(chunk)

        def closed() -> None:
            if self.on_close is not None:
                self.on_close()

        def peer_closed() -> None:
            if self.on_peer_close is not None:
                self.on_peer_close()

        def failed(reason: str) -> None:
            self._connected = False
            if self.on_error is not None:
                self.on_error(reason)

        callbacks.on_established = established
        callbacks.on_data = data
        callbacks.on_closed = closed
        callbacks.on_peer_closed = peer_closed
        callbacks.on_failed = failed

    # ------------------------------------------------------------------
    @property
    def connected(self) -> bool:
        return self._connected

    def send(self, data: bytes) -> None:
        self._host._osr_call("send", self.key, data)

    def close(self) -> None:
        self._host._osr_call("close", self.key)

    def pause_reading(self) -> None:
        self._host._osr_call("pause_reading", self.key)

    def resume_reading(self) -> None:
        self._host._osr_call("resume_reading", self.key)

    def bytes_received(self) -> bytes:
        return b"".join(self.received)

    def __repr__(self) -> str:
        return f"SubTcpSocket({self.key}, connected={self._connected})"


class SublayeredTcpHost:
    """One endpoint running the Fig 5 sublayered TCP."""

    def __init__(
        self,
        name: str,
        clock: Clock,
        config: TcpConfig | None = None,
        cc_factory: Callable[[int], CongestionControl] | None = None,
        shim: Any | None = None,
        access_log: AccessLog | None = None,
        interface_log: InterfaceLog | None = None,
        metrics: Any | None = None,
        osr_factory: Callable[[TcpConfig], OsrSublayer] | None = None,
        rd_factory: Callable[[TcpConfig], RdSublayer] | None = None,
        cm_factory: Callable[[TcpConfig], CmSublayer] | None = None,
        tier: str = TIER_FULL,
        replacements: dict[str, Any] | None = None,
        insertions: list[tuple[str, str, Any]] | None = None,
    ):
        self.name = name
        self.config = config or TcpConfig()
        builder = StackBuilder(
            "tcp",
            name=f"tcp:{name}",
            clock=clock,
            access_log=access_log,
            interface_log=interface_log,
            metrics=metrics,
            tier=tier,
        )
        builder.with_params(config=self.config, cc_factory=cc_factory, shim=shim)
        # Factory hooks exist for the F5 bug-injection experiment and
        # for user-supplied sublayer variants; they (and the generic
        # ``replacements`` mapping) become slot replacements on the
        # "tcp" profile.
        if osr_factory is not None:
            builder.with_replacement("osr", lambda p: osr_factory(self.config))
        if rd_factory is not None:
            builder.with_replacement("rd", lambda p: rd_factory(self.config))
        if cm_factory is not None:
            builder.with_replacement("cm", lambda p: cm_factory(self.config))
        for slot, replacement in (replacements or {}).items():
            builder.with_replacement(slot, replacement)
        for slot, where, extra in insertions or []:
            builder.with_insertion(slot, extra, where=where)
        self.stack = builder.build()
        self.osr: OsrSublayer = self.stack.sublayer("osr")  # type: ignore[assignment]
        self._sockets: dict[ConnId, SubTcpSocket] = {}
        self.on_accept: Callable[[SubTcpSocket], None] | None = None
        self.osr.on_accept = self._accepted
        self.on_transmit: Callable[..., None] | None = None
        self.on_transmit_batch: Callable[..., None] | None = None
        self.stack.on_transmit = lambda unit, **meta: self._transmit(unit, **meta)
        self.stack.on_transmit_batch = lambda units, metas=None: self._transmit_batch(
            units, metas
        )
        self.stack.on_deliver = lambda data, **meta: None  # sockets get the data

    # ------------------------------------------------------------------
    @property
    def access_log(self) -> AccessLog:
        return self.stack.access_log

    @property
    def interface_log(self) -> InterfaceLog:
        return self.stack.interface_log

    def _transmit(self, unit: Any, **meta: Any) -> None:
        if self.on_transmit is not None:
            self.on_transmit(unit, **meta)

    def _transmit_batch(self, units: Any, metas: Any = None) -> None:
        if self.on_transmit_batch is not None:
            self.on_transmit_batch(units, metas)
        elif self.on_transmit is not None:
            if metas is None:
                for unit in units:
                    self.on_transmit(unit)
            else:
                for unit, meta in zip(units, metas):
                    self.on_transmit(unit, **meta)

    def receive(self, unit: Any, **meta: Any) -> None:
        self.stack.receive(unit, **meta)

    def receive_batch(self, units: Any, metas: Any = None) -> None:
        """Inject a batch of wire units (one stack entry for the lot)."""
        self.stack.receive_batch(units, metas)

    def _osr_call(self, method: str, *args: Any) -> Any:
        with acting_as("osr"):
            return getattr(self.osr, method)(*args)

    # ------------------------------------------------------------------
    # Application interface (mirrors MonolithicTcpHost)
    # ------------------------------------------------------------------
    def listen(self, port: int) -> None:
        self._osr_call("listen", port)

    def connect(self, lport: int, rport: int) -> SubTcpSocket:
        conn: ConnId = (lport, rport)
        socket = SubTcpSocket(self, conn)
        self._sockets[conn] = socket
        self._osr_call("open", conn)
        return socket

    def socket_for(self, lport: int, rport: int) -> SubTcpSocket | None:
        return self._sockets.get((lport, rport))

    def _accepted(self, conn: ConnId) -> None:
        socket = SubTcpSocket(self, conn)
        socket._connected = True
        self._sockets[conn] = socket
        if self.on_accept is not None:
            self.on_accept(socket)

    def __repr__(self) -> str:
        return f"SublayeredTcpHost({self.name!r}, {len(self._sockets)} sockets)"
