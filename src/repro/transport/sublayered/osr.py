"""OSR — Ordering, Segmenting, and Rate control (the top of Fig 5).

"OSR takes the byte stream and breaks it up into segments based on
parameters like maximum segment size.  At the receive end, segments
may be delivered out of order by the RD sublayer.  OSR must paste
segments back in order ...  OSR guarantees the main property of TCP —
that the byte stream received is the same as the sent byte stream —
using the properties that RD provides.  Finally, rate control is
hidden within OSR which interfaces with the RD sublayer below by
deciding when a segment is 'ready' to be transmitted."

Concretely:

* **Segmenting** — the application byte stream is cut into MSS-sized
  segments identified by byte offset;
* **Rate control** — a pluggable :class:`CongestionControl` plus the
  peer's advertised window bound the bytes in flight; a segment is
  released to RD only when it fits (the narrow OSR->RD interface);
* **Ordering** — out-of-order segments from RD are buffered and pasted
  back in order before reaching the application;
* **Flow control** — the receive window rides in the OSR subheader;
  window updates and zero-window probes are zero-length OSR segments
  (which RD carries unreliably: they hold no stream bytes).
"""

from __future__ import annotations

from typing import Any, Callable

from ...core.clock import TimerHandle
from ...core.errors import ConnectionError_
from ...core.pdu import unwrap
from ...core.sublayer import Sublayer
from .congestion import AimdCc, CongestionControl
from .dm import ConnId
from .headers import OSR_CTL_DATA, OSR_CTL_PROBE, OSR_CTL_UPDATE, OSR_HEADER

CcFactory = Callable[[int], CongestionControl]


class ConnCallbacks:
    """The callbacks a socket registers for one connection."""

    def __init__(self) -> None:
        self.on_established: Callable[[], None] | None = None
        self.on_data: Callable[[bytes], None] | None = None
        self.on_peer_closed: Callable[[], None] | None = None
        self.on_closed: Callable[[], None] | None = None
        self.on_failed: Callable[[str], None] | None = None


class OsrSublayer(Sublayer):
    """Byte streams over RD's exactly-once segment service."""

    HEADER = OSR_HEADER
    NOTIFICATIONS = ()

    def __init__(
        self,
        name: str = "osr",
        mss: int = 1000,
        recv_buffer: int = 65535,
        cc_factory: CcFactory | None = None,
        probe_interval: float = 0.3,
    ):
        super().__init__(name)
        self.mss = mss
        self.recv_buffer = min(recv_buffer, 0xFFFF)
        self.cc_factory: CcFactory = cc_factory or (lambda m: AimdCc(m))
        self.probe_interval = probe_interval
        self._callbacks: dict[ConnId, ConnCallbacks] = {}
        self._ccs: dict[ConnId, CongestionControl] = {}
        self._probe_timers: dict[ConnId, TimerHandle] = {}
        # Host hook: a passive connection reached ESTABLISHED.
        self.on_accept: Callable[[ConnId], None] | None = None

    def clone_fresh(self) -> "OsrSublayer":
        return OsrSublayer(
            self.name, self.mss, self.recv_buffer, self.cc_factory,
            self.probe_interval,
        )

    def on_attach(self) -> None:
        self.state.conns = {}
        # Measurement-side bookkeeping (not protocol state): per-conn
        # FIFO of (stream end offset, arrival time) for each send()
        # chunk, consumed as _pump releases segments past it — the
        # queue_residency histogram is how long app bytes wait in OSR
        # before RD gets them (virtual time).
        self._arrivals: dict[ConnId, list[tuple[int, float]]] = {}
        self.state.segments_released = 0
        self.state.bytes_delivered = 0
        self.state.reordered = 0
        self.state.window_updates = 0
        self.state.ecn_echoed = 0
        self.state.ecn_cuts = 0

    # ------------------------------------------------------------------
    def _get(self, conn: ConnId) -> dict | None:
        return self.state.conns.get(conn)

    def _put(self, conn: ConnId, record: dict) -> None:
        conns = dict(self.state.conns)
        conns[conn] = record
        self.state.conns = conns

    def _new_record(self) -> dict:
        return {
            "established": False,
            # sender
            "stream": b"",
            "next_offset": 0,       # next byte to hand to RD
            "inflight": 0,
            "peer_rwnd": self.mss,  # conservative until first advert
            "closing": False,
            "close_sent": False,
            # receiver
            "deliver_nxt": 0,
            "ooo": {},              # offset -> bytes
            "app_buffered": 0,
            "paused": False,
            "last_advertised": self.recv_buffer,
            "peer_fin_offset": None,
            "peer_close_seen": False,
            # ECN: echo owed to the peer / spacing of our own rate cuts
            "ecn_echo_owed": False,
            "last_ecn_cut": -1.0e9,
            "srtt_hint": 0.2,
        }

    def callbacks(self, conn: ConnId) -> ConnCallbacks:
        if conn not in self._callbacks:
            self._callbacks[conn] = ConnCallbacks()
        return self._callbacks[conn]

    def cc_for(self, conn: ConnId) -> CongestionControl:
        if conn not in self._ccs:
            self._ccs[conn] = self.cc_factory(self.mss)
        return self._ccs[conn]

    # ------------------------------------------------------------------
    # Application-facing operations (the host/socket layer calls these)
    # ------------------------------------------------------------------
    def open(self, conn: ConnId) -> None:
        if self._get(conn) is not None:
            raise ConnectionError_(f"connection {conn} already open")
        self._put(conn, self._new_record())
        assert self.below is not None
        self.below.open(conn)

    def listen(self, port: int) -> None:
        assert self.below is not None
        self.below.listen(port)

    def send(self, conn: ConnId, data: bytes) -> None:
        record = self._get(conn)
        if record is None:
            raise ConnectionError_(f"no connection {conn}")
        if record["closing"]:
            raise ConnectionError_("cannot send after close()")
        record = dict(record)
        record["stream"] = record["stream"] + bytes(data)
        self._put(conn, record)
        if data:
            self._arrivals.setdefault(conn, []).append(
                (len(record["stream"]), self.clock.now())
            )
        self._pump(conn)

    def close(self, conn: ConnId) -> None:
        record = self._get(conn)
        if record is None:
            return
        record = dict(record)
        record["closing"] = True
        self._put(conn, record)
        self._pump(conn)
        self._maybe_send_close(conn)

    def pause_reading(self, conn: ConnId) -> None:
        record = self._get(conn)
        if record is not None:
            record = dict(record)
            record["paused"] = True
            self._put(conn, record)

    def resume_reading(self, conn: ConnId) -> None:
        record = self._get(conn)
        if record is None:
            return
        record = dict(record)
        record["paused"] = False
        record["app_buffered"] = 0
        self._put(conn, record)
        self._send_window_update(conn)

    # ------------------------------------------------------------------
    # Rate control: release segments while the budget allows (T2: this
    # loop is the entire OSR->RD data interface).
    # ------------------------------------------------------------------
    def _pump(self, conn: ConnId) -> None:
        record = self._get(conn)
        if record is None or not record["established"]:
            return
        cc = self.cc_for(conn)
        while True:
            record = self._get(conn)
            remaining = len(record["stream"]) - record["next_offset"]
            if remaining <= 0:
                break
            budget = min(cc.window(), record["peer_rwnd"]) - record["inflight"]
            if budget < min(self.mss, remaining):
                break
            length = min(self.mss, remaining)
            offset = record["next_offset"]
            payload = record["stream"][offset : offset + length]
            record = dict(record)
            record["next_offset"] = offset + length
            record["inflight"] = record["inflight"] + length
            self._put(conn, record)
            self.count("segments_released")
            self.metrics.gauge("cwnd", cc.window())
            released_through = offset + length
            arrivals = self._arrivals.get(conn)
            while arrivals and arrivals[0][0] <= released_through:
                _, arrived = arrivals.pop(0)
                self.metrics.observe_hist(
                    "queue_residency", self.clock.now() - arrived
                )
            assert self.below is not None
            self.below.send(conn, offset, self._segment(conn, payload))
        self._maybe_arm_probe(conn)

    def _segment(self, conn: ConnId, payload: bytes, ctl: int = OSR_CTL_DATA):
        record = self._get(conn)
        ecn = 0
        if record is not None and record.get("ecn_echo_owed"):
            # Echo congestion-experienced back to the sender (ECE), in
            # our own OSR subheader — the signal never leaves the OSR
            # sublayer pair (T3).
            ecn = 2
            record = dict(record)
            record["ecn_echo_owed"] = False
            self._put(conn, record)
            self.state.ecn_echoed = self.state.ecn_echoed + 1
        header = {"wnd": self._advertised_window(conn), "ecn": ecn, "ctl": ctl}
        return self.wrap(header, payload)

    def _advertised_window(self, conn: ConnId) -> int:
        record = self._get(conn)
        assert record is not None
        ooo_bytes = sum(len(b) for b in record["ooo"].values())
        return max(0, self.recv_buffer - record["app_buffered"] - ooo_bytes)

    def _maybe_arm_probe(self, conn: ConnId) -> None:
        """Zero-window probing: if data waits but the peer window is
        closed and nothing is in flight, poke the peer periodically."""
        record = self._get(conn)
        if record is None:
            return
        blocked = (
            len(record["stream"]) > record["next_offset"]
            and record["peer_rwnd"] < min(
                self.mss, len(record["stream"]) - record["next_offset"]
            )
            and record["inflight"] == 0
        )
        existing = self._probe_timers.get(conn)
        if not blocked:
            if existing is not None:
                existing.cancel()
                self._probe_timers.pop(conn, None)
            return
        if existing is not None and not existing.cancelled:
            return
        self._probe_timers[conn] = self.clock.call_later(
            self.probe_interval, lambda: self._probe(conn)
        )

    def _probe(self, conn: ConnId) -> None:
        self._probe_timers.pop(conn, None)
        record = self._get(conn)
        if record is None:
            return
        self._send_control_segment(conn, OSR_CTL_PROBE)
        self._maybe_arm_probe(conn)

    def _send_window_update(self, conn: ConnId) -> None:
        record = self._get(conn)
        if record is not None:
            record = dict(record)
            record["last_advertised"] = self._advertised_window(conn)
            self._put(conn, record)
        self.state.window_updates = self.state.window_updates + 1
        self._send_control_segment(conn, OSR_CTL_UPDATE)

    def _maybe_advertise(self, conn: ConnId) -> None:
        """Event-driven flow control: RD's pure acks carry no window
        (separated signals), so OSR itself announces material window
        changes — emptying toward zero as a paused reader's buffer
        fills, reopening on resume."""
        record = self._get(conn)
        if record is None or not record["established"]:
            return
        advert = self._advertised_window(conn)
        last = record["last_advertised"]
        if (advert == 0) != (last == 0) or abs(advert - last) >= self.mss:
            self._send_window_update(conn)

    def _send_control_segment(self, conn: ConnId, ctl: int) -> None:
        """A zero-length OSR segment: carries only the OSR subheader."""
        record = self._get(conn)
        if record is None or not record["established"]:
            return
        assert self.below is not None
        self.below.send(conn, record["next_offset"], self._segment(conn, b"", ctl))

    def _process_ecn(self, conn: ConnId, ecn: int) -> None:
        """The congestion-signal half of the paper's OSR subheader:
        CE (bit 0) from the network is echoed back; an echo (bit 1)
        from the peer cuts our rate like a loss, at most once per
        round trip."""
        if not ecn:
            return
        record = dict(self._get(conn))
        if ecn & 1:
            record["ecn_echo_owed"] = True
            self._put(conn, record)
            self._send_window_update(conn)  # carry the echo promptly
            record = dict(self._get(conn))
        if ecn & 2:
            spacing = max(record["srtt_hint"], 0.01)
            if self.clock.now() - record["last_ecn_cut"] >= spacing:
                record["last_ecn_cut"] = self.clock.now()
                self._put(conn, record)
                self.state.ecn_cuts = self.state.ecn_cuts + 1
                self.cc_for(conn).on_loss("dupack")  # multiplicative cut
                return
        self._put(conn, record)

    def _maybe_send_close(self, conn: ConnId) -> None:
        record = self._get(conn)
        if record is None or not record["established"]:
            return
        if not record["closing"] or record["close_sent"]:
            return
        if record["next_offset"] < len(record["stream"]):
            return  # still segments to release
        record = dict(record)
        record["close_sent"] = True
        self._put(conn, record)
        assert self.below is not None
        self.below.close(conn, len(record["stream"]))

    # ------------------------------------------------------------------
    # RD notifications
    # ------------------------------------------------------------------
    def nf_established(self, conn: ConnId) -> None:
        record = self._get(conn)
        passive = record is None
        if record is None:
            record = self._new_record()  # passive open
        record = dict(record)
        record["established"] = True
        announced = record.get("announced", False)
        record["announced"] = True
        self._put(conn, record)
        if not announced and passive and self.on_accept is not None:
            self.on_accept(conn)
        callbacks = self._callbacks.get(conn)
        if (
            not announced
            and callbacks is not None
            and callbacks.on_established is not None
        ):
            callbacks.on_established()
        self._send_window_update(conn)  # announce our buffer
        self._pump(conn)
        self._maybe_send_close(conn)

    def nf_acked(
        self,
        conn: ConnId,
        offset: int,
        length: int,
        rtt: float | None = None,
        sacked: bool = False,
    ) -> None:
        record = self._get(conn)
        if record is None or length == 0:
            return
        record = dict(record)
        record["inflight"] = max(0, record["inflight"] - length)
        if rtt is not None and rtt > 0:
            record["srtt_hint"] = 0.875 * record["srtt_hint"] + 0.125 * rtt
        self._put(conn, record)
        self.cc_for(conn).on_ack(length, rtt)
        self._pump(conn)
        self._maybe_send_close(conn)

    def nf_loss(self, conn: ConnId, kind: str) -> None:
        self.cc_for(conn).on_loss(kind)

    def nf_peer_closed(self, conn: ConnId, fin_offset: int) -> None:
        record = self._get(conn)
        if record is None:
            return
        record = dict(record)
        record["peer_fin_offset"] = fin_offset
        self._put(conn, record)
        self._maybe_notify_peer_closed(conn)

    def nf_closed(self, conn: ConnId) -> None:
        callbacks = self._callbacks.get(conn)
        if callbacks is not None and callbacks.on_closed is not None:
            callbacks.on_closed()

    def nf_failed(self, conn: ConnId, reason: str) -> None:
        callbacks = self._callbacks.get(conn)
        if callbacks is not None and callbacks.on_failed is not None:
            callbacks.on_failed(reason)

    # ------------------------------------------------------------------
    # Receive path: ordering
    # ------------------------------------------------------------------
    def from_below(
        self, pdu: Any, conn: ConnId | None = None, offset: int | None = None,
        **meta: Any,
    ) -> None:
        if conn is None or not hasattr(pdu, "owner") or pdu.owner != self.name:
            return
        record = self._get(conn)
        if record is None:
            return
        values, payload = unwrap(pdu, self.name)
        # Flow control: every peer OSR subheader refreshes its window.
        record = dict(record)
        record["peer_rwnd"] = values["wnd"]
        self._put(conn, record)
        self._process_ecn(conn, values["ecn"])
        if not isinstance(payload, (bytes, bytearray)) or len(payload) == 0:
            if values["ctl"] == OSR_CTL_PROBE:
                self._send_window_update(conn)  # answer the probe
            self._pump(conn)
            return
        assert offset is not None
        self._reassemble(conn, offset, bytes(payload))
        self._pump(conn)

    def _reassemble(self, conn: ConnId, offset: int, data: bytes) -> None:
        record = dict(self._get(conn))
        if offset == record["deliver_nxt"]:
            self._put(conn, record)
            self._deliver(conn, data)
            record = dict(self._get(conn))
            ooo = dict(record["ooo"])
            while record["deliver_nxt"] in ooo:
                self.state.reordered = self.state.reordered + 1
                chunk = ooo.pop(record["deliver_nxt"])
                record["ooo"] = ooo
                self._put(conn, record)
                self._deliver(conn, chunk)
                record = dict(self._get(conn))
                ooo = dict(record["ooo"])
            record["ooo"] = ooo
            self._put(conn, record)
        elif offset > record["deliver_nxt"]:
            ooo = dict(record["ooo"])
            ooo[offset] = data
            record["ooo"] = ooo
            self._put(conn, record)
        # offset < deliver_nxt cannot happen: RD delivers exactly once
        self._maybe_advertise(conn)
        self._maybe_notify_peer_closed(conn)

    def _deliver(self, conn: ConnId, data: bytes) -> None:
        record = dict(self._get(conn))
        record["deliver_nxt"] = record["deliver_nxt"] + len(data)
        if record["paused"]:
            record["app_buffered"] = record["app_buffered"] + len(data)
        self._put(conn, record)
        self.state.bytes_delivered = self.state.bytes_delivered + len(data)
        callbacks = self._callbacks.get(conn)
        if callbacks is not None and callbacks.on_data is not None:
            callbacks.on_data(data)
        self.deliver_up(data, conn=conn)

    def _maybe_notify_peer_closed(self, conn: ConnId) -> None:
        record = self._get(conn)
        if record is None or record["peer_close_seen"]:
            return
        fin_offset = record["peer_fin_offset"]
        if fin_offset is None or record["deliver_nxt"] < fin_offset:
            return
        record = dict(record)
        record["peer_close_seen"] = True
        self._put(conn, record)
        callbacks = self._callbacks.get(conn)
        if callbacks is not None and callbacks.on_peer_closed is not None:
            callbacks.on_peer_closed()
