"""RD — the reliable-delivery sublayer of Fig 5.

"RD uses the ISNs supplied by the lower connection management layer to
reliably (i.e., exactly once) deliver segments given by the upper
layer (OSR).  OSR gives RD a segment identified by its byte offset,
and RD translates this to segment sequence numbers (by adding the
ISN).  RD uses retransmissions to ensure the segment will eventually
reach the receiver.  All details of retransmission, including keeping
track of a window of outstanding packets are encapsulated in RD; if
Selective Acknowledgement is used, the SACK options are also processed
by this sublayer."

Concretely: exactly-once, *unordered* delivery of byte-offset-
identified segments, with cumulative acks plus one SACK range,
RTT-adaptive timeouts (Karn's rule), duplicate-ack fast retransmit,
and upward loss summaries — "other congestion signals such as timeouts
and loss information should be summarized and passed by RD to OSR".

Sequence numbers are ``isn + 1 + offset``, exactly TCP's data
numbering, which is what makes the interop shim's translation exact.
"""

from __future__ import annotations

from typing import Any

from ...core.clock import TimerHandle
from ...core.errors import ConnectionError_
from ...core.interface import Primitive, ServiceInterface
from ...core.pdu import Pdu, unwrap
from ...core.sublayer import Sublayer
from ..seqspace import fold, unfold
from .dm import ConnId
from .headers import RD_HEADER


def segment_length(inner: Any) -> int:
    """Payload bytes of a segment's inner unit (wire-visible length)."""
    if isinstance(inner, Pdu):
        payload = inner.payload()
        return len(payload) if isinstance(payload, (bytes, bytearray)) else 0
    if isinstance(inner, (bytes, bytearray)):
        return len(inner)
    return 0


class RdSublayer(Sublayer):
    """Exactly-once segment delivery over CM's ISN service."""

    HEADER = RD_HEADER
    SERVICE = ServiceInterface(
        "rd-service",
        [
            Primitive("open", "open a connection (forwarded to CM)"),
            Primitive("listen", "listen on a port (forwarded to CM)"),
            Primitive("send", "transmit one byte-offset-identified segment"),
            Primitive("close", "close once the stream is fully acked"),
        ],
    )
    NOTIFICATIONS = (
        "established",
        "acked",
        "loss",
        "peer_closed",
        "closed",
        "failed",
    )

    def __init__(
        self,
        name: str = "rd",
        rto_initial: float = 0.2,
        rto_min: float = 0.05,
        rto_max: float = 10.0,
        dupack_threshold: int = 3,
        sack_enabled: bool = True,
    ):
        super().__init__(name)
        self.rto_initial = rto_initial
        self.rto_min = rto_min
        self.rto_max = rto_max
        self.dupack_threshold = dupack_threshold
        #: The paper: "if Selective Acknowledgement is used, the SACK
        #: options are also processed by this sublayer" — a mechanism
        #: choice entirely internal to RD.  The X2 ablation benchmark
        #: measures what it buys.
        self.sack_enabled = sack_enabled
        self._timers: dict[ConnId, TimerHandle] = {}

    def clone_fresh(self) -> "RdSublayer":
        return RdSublayer(
            self.name, self.rto_initial, self.rto_min, self.rto_max,
            self.dupack_threshold, self.sack_enabled,
        )

    def on_attach(self) -> None:
        self.state.conns = {}
        self.state.segments_sent = 0
        self.state.retransmitted = 0
        self.state.acks_sent = 0
        self.state.duplicates_dropped = 0

    # ------------------------------------------------------------------
    def _get(self, conn: ConnId) -> dict | None:
        return self.state.conns.get(conn)

    def _put(self, conn: ConnId, record: dict) -> None:
        conns = dict(self.state.conns)
        conns[conn] = record
        self.state.conns = conns

    def _new_record(self, isn: int, remote_isn: int | None) -> dict:
        """``remote_isn`` may be None under 0-RTT connection management
        (TimerCmSublayer): the peer's ISN is unknown until the first
        returning segment, at which point CM re-announces and
        :meth:`nf_established` rebases."""
        return {
            "isn": isn,
            "remote_isn": remote_isn,
            # sender side
            "outstanding": {},     # offset -> (inner pdu, length)
            "sacked": set(),
            "acked_through": 0,    # bytes cumulatively acked
            "dupacks": 0,
            "srtt": None,
            "rttvar": 0.0,
            "rto": self.rto_initial,
            "rtt_offset": None,
            "rtt_start": 0.0,
            "pending_close": None,  # final_offset awaiting full ack
            "recovery_until": 0,   # NewReno recover point (loss episode)
            # receiver side
            "rcv_nxt": 0,          # bytes cumulatively received
            "rcv_ooo": {},         # offset -> length (already delivered up)
            "peer_fin_offset": None,
            "peer_close_notified": False,
        }

    # ------------------------------------------------------------------
    # Service primitives (OSR calls these)
    # ------------------------------------------------------------------
    def srv_open(self, conn: ConnId) -> None:
        assert self.below is not None
        self.below.open(conn)

    def srv_listen(self, port: int) -> None:
        assert self.below is not None
        self.below.listen(port)

    def srv_send(self, conn: ConnId, offset: int, segment: Any) -> None:
        record = self._get(conn)
        if record is None:
            raise ConnectionError_(f"RD has no established connection {conn}")
        length = segment_length(segment)
        if length == 0:
            # Zero-length segments carry no stream bytes: they are OSR
            # control traffic (window updates, probes) and ride RD
            # unreliably — no tracking, no retransmission, no ack.
            self._transmit(conn, offset, segment)
            return
        record = dict(record)
        outstanding = dict(record["outstanding"])
        outstanding[offset] = (segment, length)
        record["outstanding"] = outstanding
        self._put(conn, record)
        self.count("segments_sent")
        self._transmit(conn, offset, segment)
        self._arm(conn)
        if record["rtt_offset"] is None:
            record = dict(self._get(conn))
            record["rtt_offset"] = offset
            record["rtt_start"] = self.clock.now()
            self._put(conn, record)

    def srv_close(self, conn: ConnId, final_offset: int) -> None:
        record = self._get(conn)
        if record is None:
            return
        record = dict(record)
        record["pending_close"] = final_offset
        self._put(conn, record)
        self._maybe_complete_close(conn)

    # ------------------------------------------------------------------
    # Notifications from CM, re-raised upward
    # ------------------------------------------------------------------
    def nf_established(self, conn: ConnId) -> None:
        assert self.below is not None
        isns = self.below.get_isns(conn)
        if isns is None:
            return
        local_isn, remote_isn = isns
        record = self._get(conn)
        if record is None:
            self._put(conn, self._new_record(local_isn, remote_isn))
        elif record["remote_isn"] is None and remote_isn is not None:
            # 0-RTT rebase: CM just learned the peer's ISN.  Sound only
            # while the receive side is untouched, which CM guarantees
            # by re-announcing before delivering the first segment.
            if record["rcv_nxt"] == 0 and not record["rcv_ooo"]:
                record = dict(record)
                record["remote_isn"] = remote_isn
                self._put(conn, record)
        self.notify("established", conn)

    def nf_peer_closed(self, conn: ConnId, fin_offset: int) -> None:
        record = self._get(conn)
        if record is None:
            return
        record = dict(record)
        record["peer_fin_offset"] = fin_offset
        self._put(conn, record)
        self._maybe_notify_peer_closed(conn)

    def nf_closed(self, conn: ConnId) -> None:
        self.notify("closed", conn)

    def nf_failed(self, conn: ConnId, reason: str) -> None:
        self.notify("failed", conn, reason)

    # ------------------------------------------------------------------
    # Wire encoding
    # ------------------------------------------------------------------
    def _transmit(self, conn: ConnId, offset: int, segment: Any) -> None:
        record = self._get(conn)
        assert record is not None
        remote_known = record["remote_isn"] is not None
        header = {
            "seq": fold(record["isn"] + 1 + offset),
            "ack": (
                fold(record["remote_isn"] + 1 + record["rcv_nxt"])
                if remote_known else 0
            ),
            "has_data": 1,
            # Until the peer's ISN is known (0-RTT opens) our ack field
            # is meaningless; flag it invalid so the peer ignores it.
            "is_ack": int(remote_known),
        }
        header.update(self._sack_fields(record))
        self.send_down(self.wrap(header, segment), conn=conn)

    def _send_pure_ack(self, conn: ConnId) -> None:
        record = self._get(conn)
        assert record is not None
        header = {
            "seq": fold(record["isn"] + 1 + self._send_offset(record)),
            "ack": fold(record["remote_isn"] + 1 + record["rcv_nxt"]),
            "has_data": 0,
            "is_ack": 1,
        }
        header.update(self._sack_fields(record))
        self.count("acks_sent")
        self.send_down(self.wrap(header, None), conn=conn)

    def _send_offset(self, record: dict) -> int:
        """Our current send position (for the seq of pure acks)."""
        outstanding = record["outstanding"]
        if outstanding:
            top = max(outstanding)
            return top + outstanding[top][1]
        return record["acked_through"]

    def _sack_fields(self, record: dict) -> dict[str, int]:
        """The first out-of-order run, as absolute sequence numbers."""
        ooo = record["rcv_ooo"]
        if not ooo or record["remote_isn"] is None or not self.sack_enabled:
            return {"sack_left": 0, "sack_right": 0}
        start = min(ooo)
        end = start
        while end in ooo:
            end += ooo[end]
        base = record["remote_isn"] + 1
        return {"sack_left": fold(base + start), "sack_right": fold(base + end)}

    # ------------------------------------------------------------------
    # Data path up
    # ------------------------------------------------------------------
    def from_below(self, pdu: Any, conn: ConnId | None = None, **meta: Any) -> None:
        if conn is None or not hasattr(pdu, "owner") or pdu.owner != self.name:
            return
        record = self._get(conn)
        if record is None:
            return
        values, inner = unwrap(pdu, self.name)
        if values["is_ack"]:
            self._process_ack(conn, values)
        if values["has_data"]:
            self._process_segment(conn, values, inner)

    @staticmethod
    def _slice_unit(inner: Any, start: int, end: int) -> Any:
        """A copy of a segment unit covering only bytes [start, end).

        Byte ranges are RD's own vocabulary (its sequence numbers
        count bytes, exactly like TCP's), so trimming a segment to the
        yet-unreceived range is an RD mechanism — needed when a peer
        re-segments on retransmission, as standard TCPs do.  The inner
        structure (an OSR pdu or raw bytes) is treated as an opaque
        byte carrier: headers are copied untouched.
        """
        if isinstance(inner, Pdu):
            payload = inner.payload()
            return Pdu(
                inner.owner, inner.format, dict(inner.header),
                bytes(payload[start:end]),
            )
        return bytes(inner[start:end])

    def _process_segment(self, conn: ConnId, values: dict, inner: Any) -> None:
        record = self._get(conn)
        assert record is not None
        if record["remote_isn"] is None:
            return  # cannot anchor sequence numbers yet; peer resends
        base = record["remote_isn"] + 1
        offset = unfold(base + record["rcv_nxt"], values["seq"]) - base
        length = segment_length(inner)
        if length == 0:
            # OSR control traffic: pass through, no dedup, no ack.
            self.deliver_up(inner, conn=conn, offset=offset)
            return

        # Coverage bookkeeping: deliver exactly the byte ranges of this
        # segment not already received, trimming as needed (peers that
        # re-segment on retransmission produce partial overlaps).
        covered: list[tuple[int, int]] = [(0, record["rcv_nxt"])]
        covered += [(o, o + n) for o, n in record["rcv_ooo"].items()]
        covered.sort()
        fresh: list[tuple[int, int]] = []
        cursor = offset
        end = offset + length
        for c_start, c_end in covered:
            if c_end <= cursor:
                continue
            if c_start >= end:
                break
            if c_start > cursor:
                fresh.append((cursor, min(c_start, end)))
            cursor = max(cursor, c_end)
            if cursor >= end:
                break
        if cursor < end:
            fresh.append((cursor, end))

        if not fresh:
            self.count("duplicates_dropped")
            self._send_pure_ack(conn)
            return

        record = dict(record)
        ooo = dict(record["rcv_ooo"])
        for f_start, f_end in fresh:
            ooo[f_start] = f_end - f_start
        # merge adjacent ooo ranges and advance rcv_nxt
        merged: dict[int, int] = {}
        rcv_nxt = record["rcv_nxt"]
        for o in sorted(ooo):
            n = ooo[o]
            if o <= rcv_nxt:
                rcv_nxt = max(rcv_nxt, o + n)
                continue
            last = max(merged) if merged else None
            if last is not None and last + merged[last] >= o:
                merged[last] = max(merged[last], o + n - last)
            else:
                merged[o] = n
        # ranges swallowed by the new rcv_nxt
        merged = {
            o: n for o, n in merged.items() if o + n > rcv_nxt
        }
        record["rcv_nxt"] = rcv_nxt
        record["rcv_ooo"] = merged
        self._put(conn, record)

        # Exactly-once, possibly out-of-order delivery of the fresh
        # byte ranges to OSR.
        for f_start, f_end in fresh:
            unit = (
                inner
                if (f_start, f_end) == (offset, end)
                else self._slice_unit(inner, f_start - offset, f_end - offset)
            )
            self.deliver_up(unit, conn=conn, offset=f_start)
        self._send_pure_ack(conn)
        self._maybe_notify_peer_closed(conn)

    def _maybe_notify_peer_closed(self, conn: ConnId) -> None:
        record = self._get(conn)
        if record is None or record["peer_close_notified"]:
            return
        fin_offset = record["peer_fin_offset"]
        if fin_offset is None:
            return
        if record["rcv_nxt"] >= fin_offset and not record["rcv_ooo"]:
            record = dict(record)
            record["peer_close_notified"] = True
            self._put(conn, record)
            self.notify("peer_closed", conn, fin_offset)

    # ------------------------------------------------------------------
    # Ack processing
    # ------------------------------------------------------------------
    def _process_ack(self, conn: ConnId, values: dict) -> None:
        record = self._get(conn)
        assert record is not None
        base = record["isn"] + 1
        acked_through = unfold(base + record["acked_through"], values["ack"]) - base
        record = dict(record)
        advanced = acked_through > record["acked_through"]
        newly_acked: list[tuple[int, int, bool]] = []  # (offset, len, sacked)

        if advanced:
            outstanding = dict(record["outstanding"])
            sacked = set(record["sacked"])
            for offset in sorted(outstanding):
                seg, length = outstanding[offset]
                if offset + length <= acked_through:
                    del outstanding[offset]
                    was_sacked = offset in sacked
                    sacked.discard(offset)
                    if not was_sacked:
                        # already notified when it was SACKed; a second
                        # notification would make OSR's flight
                        # accounting underflow
                        newly_acked.append((offset, length, False))
            record["outstanding"] = outstanding
            record["sacked"] = sacked
            record["acked_through"] = acked_through
            record["dupacks"] = 0
            if record["rtt_offset"] is not None and (
                record["rtt_offset"] < acked_through
            ):
                self._rtt_sample(record, self.clock.now() - record["rtt_start"])
                record["rtt_offset"] = None
            elif record["srtt"] is not None:
                # Forward progress collapses any exponential backoff
                # back to the estimate (as real TCPs do) — otherwise a
                # long SACK-repaired recovery leaves the timer inflated.
                record["rto"] = min(
                    max(
                        record["srtt"] + 4 * record["rttvar"], self.rto_min
                    ),
                    self.rto_max,
                )
        elif acked_through == record["acked_through"] and record["outstanding"]:
            record["dupacks"] += 1

        # SACK: segments inside the advertised range leave the flight.
        sack_left, sack_right = values["sack_left"], values["sack_right"]
        if self.sack_enabled and sack_right != sack_left:
            left = unfold(base + record["acked_through"], sack_left) - base
            right = unfold(base + record["acked_through"], sack_right) - base
            outstanding = dict(record["outstanding"])
            sacked = set(record["sacked"])
            for offset in sorted(outstanding):
                seg, length = outstanding[offset]
                if left <= offset and offset + length <= right and (
                    offset not in sacked
                ):
                    sacked.add(offset)
                    newly_acked.append((offset, length, True))
            record["sacked"] = sacked

        dupacks = record["dupacks"]
        self._put(conn, record)

        for offset, length, sacked_flag in newly_acked:
            self.notify(
                "acked", conn, offset, length,
                rtt=record["srtt"], sacked=sacked_flag,
            )

        if dupacks == self.dupack_threshold:
            self._enter_recovery(conn)
            self._retransmit_earliest(conn)
            self.notify("loss", conn, "dupack")

        if advanced:
            # NewReno-style partial-ack recovery: while inside a loss
            # episode (acked_through has not yet passed the recover
            # point set when the loss was detected), a cumulative
            # advance that leaves SACKed data above an un-acked hole
            # exposes the next loss — retransmit it immediately rather
            # than waiting out a full RTO.  One hole per RTT.  Outside
            # an episode (e.g. transient reordering), do nothing.
            record = self._get(conn)
            in_recovery = record["acked_through"] < record["recovery_until"]
            if in_recovery and record["sacked"]:
                highest_sacked = max(record["sacked"])
                holes = [
                    o for o in record["outstanding"]
                    if o not in record["sacked"] and o < highest_sacked
                ]
                if holes:
                    self._retransmit_earliest(conn)
            self._rearm_or_cancel(conn)
            self._maybe_complete_close(conn)

    def _maybe_complete_close(self, conn: ConnId) -> None:
        record = self._get(conn)
        if record is None or record["pending_close"] is None:
            return
        if not record["outstanding"]:
            # Everything cumulatively acked: hand the FIN to CM.
            assert self.below is not None
            final_offset = record["pending_close"]
            record = dict(record)
            record["pending_close"] = None
            self._put(conn, record)
            self.below.close(conn, final_offset)

    # ------------------------------------------------------------------
    # Retransmission
    # ------------------------------------------------------------------
    def _arm(self, conn: ConnId) -> None:
        record = self._get(conn)
        if record is None:
            return
        existing = self._timers.get(conn)
        if existing is not None and not existing.cancelled:
            return
        self._timers[conn] = self.clock.call_later(
            record["rto"], lambda: self._on_timeout(conn)
        )

    def _rearm_or_cancel(self, conn: ConnId) -> None:
        timer = self._timers.pop(conn, None)
        if timer is not None:
            timer.cancel()
        record = self._get(conn)
        if record is not None and record["outstanding"]:
            self._timers[conn] = self.clock.call_later(
                record["rto"], lambda: self._on_timeout(conn)
            )

    def _on_timeout(self, conn: ConnId) -> None:
        self._timers.pop(conn, None)
        record = self._get(conn)
        if record is None or not record["outstanding"]:
            return
        record = dict(record)
        record["rto"] = min(record["rto"] * 2, self.rto_max)
        record["rtt_offset"] = None  # Karn
        self._put(conn, record)
        self._enter_recovery(conn)
        self._retransmit_earliest(conn)
        self.notify("loss", conn, "timeout")
        self._arm(conn)

    def _enter_recovery(self, conn: ConnId) -> None:
        """Mark the current highest outstanding byte as the recover
        point: partial-ack retransmissions run until the cumulative ack
        passes it (RFC 6582's structure)."""
        record = self._get(conn)
        if record is None or not record["outstanding"]:
            return
        top = max(record["outstanding"])
        end = top + record["outstanding"][top][1]
        if end > record["recovery_until"]:
            record = dict(record)
            record["recovery_until"] = end
            self._put(conn, record)

    def _retransmit_earliest(self, conn: ConnId) -> None:
        record = self._get(conn)
        if record is None:
            return
        candidates = [
            o for o in record["outstanding"] if o not in record["sacked"]
        ]
        if not candidates:
            return
        offset = min(candidates)
        segment, _length = record["outstanding"][offset]
        if record["rtt_offset"] == offset:
            # Karn's rule applies to fast/partial-ack retransmissions
            # too: a sample spanning a retransmission is meaningless.
            record = dict(record)
            record["rtt_offset"] = None
            self._put(conn, record)
        self.count("retransmitted")
        self._transmit(conn, offset, segment)

    def _rtt_sample(self, record: dict, sample: float) -> None:
        if record["srtt"] is None:
            record["srtt"] = sample
            record["rttvar"] = sample / 2
        else:
            record["rttvar"] = 0.75 * record["rttvar"] + 0.25 * abs(
                record["srtt"] - sample
            )
            record["srtt"] = 0.875 * record["srtt"] + 0.125 * sample
        record["rto"] = min(
            max(record["srtt"] + 4 * record["rttvar"], self.rto_min),
            self.rto_max,
        )

    # ------------------------------------------------------------------
    def flight_bytes(self, conn: ConnId) -> int:
        """Unacked, un-SACKed bytes in the network (OSR reads this via
        the acked notifications; exposed for tests and analysis)."""
        record = self._get(conn)
        if record is None:
            return 0
        return sum(
            length
            for offset, (_seg, length) in record["outstanding"].items()
            if offset not in record["sacked"]
        )
