"""The RFC 793 interoperability shim (Section 3.1, challenge 2).

"Adding a shim sublayer that converts the sublayered header in Figure
6 to a standard TCP header, together with replicating all existing TCP
functionality in some sublayer, should allow interoperability."

:class:`Rfc793Shim` sits below DM.  Outbound, it flattens the nested
native header (DM | CM | RD | OSR) into one standard
:class:`~repro.transport.rfc793.TcpSegment`; inbound, it expands a
standard segment into the native unit(s).  The mapping is the
isomorphism Section 3.1 claims:

====================  =========================================
native field           RFC 793 field
====================  =========================================
dm.sport / dm.dport    sport / dport
cm.kind = SYN          SYN flag, seq = cm.isn
cm.kind = SYNACK       SYN|ACK, seq = cm.isn, ack = cm.ack_isn+1
cm.kind = HSACK        pure ACK, seq = isn+1, ack = ack_isn+1
cm.kind = FIN          FIN|ACK, seq = isn+1+offset
cm.kind = FINACK       pure ACK, ack = ack_isn+1+offset+1
rd.seq / rd.ack        seq / ack (identical numbering: isn+1+offset)
osr.wnd                window
osr.ecn                ECE/CWR bits
====================  =========================================

Because a standard segment bundles what the native format splits into
separate packets, one inbound segment can expand to *several* native
units (a pure ACK is simultaneously a possible handshake ACK, an RD
cumulative ack, an OSR window update, and a possible FIN ack); each
native sublayer simply ignores the interpretations that don't apply —
the "replicating functionality" cost the paper anticipates.

The shim keeps per-connection translation state (the ISNs, the FIN
positions, the last advertised window): small, local, and invisible to
every other sublayer, so interop is a one-sublayer change (T3).
"""

from __future__ import annotations

from typing import Any

from ...core.pdu import Pdu, unwrap
from ...core.shim import ShimSublayer
from ..rfc793 import TcpSegment
from ..seqspace import fold
from .dm import ConnId
from .headers import (
    CM_FIN,
    CM_FINACK,
    CM_HEADER,
    CM_HSACK,
    CM_NONE,
    CM_SYN,
    CM_SYNACK,
    DM_HEADER,
    OSR_CTL_UPDATE,
    OSR_HEADER,
    RD_HEADER,
)

DEFAULT_WINDOW = 0xFFFF


class Rfc793Shim(ShimSublayer):
    """Bidirectional native <-> RFC 793 translation."""

    def __init__(self, name: str = "shim"):
        super().__init__(name)

    def on_attach(self) -> None:
        self.state.conns = {}      # ConnId (local view) -> translation state
        self.state.encoded = 0
        self.state.decoded = 0

    def _rec(self, conn: ConnId) -> dict:
        conns = dict(self.state.conns)
        if conn not in conns:
            conns[conn] = {
                "local_isn": None,
                "remote_isn": None,
                "last_wnd_out": DEFAULT_WINDOW,
                "last_ack_out": 0,        # last rd.ack we sent (wire value)
                "last_seq_out": 0,        # our next wire seq (for pure acks)
                "local_fin_offset": None,
                "remote_fin_offset": None,
            }
            self.state.conns = conns
        return conns[conn]

    def seed_connection(
        self, conn: ConnId, local_isn: int, remote_isn: int
    ) -> None:
        """Install translation state for an already-established
        connection (used by analyses that exercise the shim outside a
        full handshake)."""
        self._rec(conn)
        self._update(conn, local_isn=local_isn, remote_isn=remote_isn)

    def _update(self, conn: ConnId, **changes: Any) -> None:
        conns = dict(self.state.conns)
        record = dict(conns[conn])
        record.update(changes)
        conns[conn] = record
        self.state.conns = conns

    # ==================================================================
    # Outbound: native nested Pdu -> one standard segment
    # ==================================================================
    def encode(self, pdu: Any) -> Any:
        if not isinstance(pdu, Pdu) or pdu.owner != "dm":
            return pdu  # already foreign (shouldn't happen)
        dm, inner = unwrap(pdu, "dm")
        conn: ConnId = (dm["sport"], dm["dport"])  # local view
        record = self._rec(conn)
        cm, inner2 = unwrap(inner, "cm")
        kind = cm["kind"]
        self.state.encoded = self.state.encoded + 1

        header: dict[str, int] = {"sport": dm["sport"], "dport": dm["dport"]}
        payload = b""

        if kind == CM_SYN:
            self._update(conn, local_isn=cm["isn"])
            header.update(seq=cm["isn"], window=DEFAULT_WINDOW, syn=1)
        elif kind == CM_SYNACK:
            header.update(
                seq=cm["isn"],
                ack=fold(cm["ack_isn"] + 1),
                ack_flag=1,
                syn=1,
                window=record["last_wnd_out"],
            )
            self._update(
                conn,
                local_isn=cm["isn"],
                remote_isn=cm["ack_isn"],
                last_ack_out=header["ack"],
                last_seq_out=fold(cm["isn"] + 1),
            )
        elif kind == CM_HSACK:
            header.update(
                seq=fold(cm["isn"] + 1),
                ack=fold(cm["ack_isn"] + 1),
                ack_flag=1,
                window=record["last_wnd_out"],
            )
            self._update(
                conn,
                local_isn=cm["isn"],
                remote_isn=cm["ack_isn"],
                last_ack_out=header["ack"],
                last_seq_out=header["seq"],
            )
        elif kind == CM_FIN:
            self._update(conn, local_fin_offset=cm["offset"])
            header.update(
                seq=fold(cm["isn"] + 1 + cm["offset"]),
                ack=record["last_ack_out"],
                ack_flag=1,
                fin=1,
                window=record["last_wnd_out"],
            )
        elif kind == CM_FINACK:
            # Standard TCP acks are cumulative: acking the peer's FIN
            # (fin_seq + 1) implicitly acks every data byte before it.
            # Native CM acknowledges the FIN as soon as it sees it —
            # data completeness is RD's business — so the shim may only
            # emit the full FIN ack once the RD-level cumulative ack
            # has reached the FIN offset; until then it degrades to a
            # duplicate ack, and the peer's FIN retransmission will
            # re-trigger CM's FINACK later.
            fin_seq = fold(cm["ack_isn"] + 1 + cm["offset"])
            data_covered = record["last_ack_out"] == fin_seq
            ack_value = fold(fin_seq + 1) if data_covered else record["last_ack_out"]
            header.update(
                seq=record["last_seq_out"],
                ack=ack_value,
                ack_flag=1,
                window=record["last_wnd_out"],
            )
            self._update(conn, last_ack_out=header["ack"])
        elif kind == CM_NONE:
            rd, inner3 = unwrap(inner2, "rd")
            header.update(seq=rd["seq"], ack=rd["ack"], ack_flag=rd["is_ack"])
            self._update(
                conn,
                last_ack_out=rd["ack"],
                last_seq_out=rd["seq"],
            )
            if rd["has_data"] and inner3 is not None:
                osr, data = unwrap(inner3, "osr")
                header.update(
                    window=osr["wnd"],
                    ece=osr["ecn"] & 1,
                    cwr=(osr["ecn"] >> 1) & 1,
                )
                self._update(conn, last_wnd_out=osr["wnd"])
                payload = bytes(data) if data else b""
                header["psh"] = int(bool(payload))
            else:
                header["window"] = self._rec(conn)["last_wnd_out"]
        else:
            return None
        return TcpSegment(header=header, payload=payload)

    # ==================================================================
    # Inbound: one standard segment -> native unit(s)
    # ==================================================================
    def from_below(self, wire: Any, **meta: Any) -> None:
        for unit in self.decode_all(wire):
            self.deliver_up(unit, **meta)

    def decode(self, wire: Any) -> Any:
        units = self.decode_all(wire)
        return units[0] if units else None

    def decode_all(self, wire: Any) -> list[Pdu]:
        if isinstance(wire, Pdu):
            return [wire]  # already native (peer is sublayered too)
        if not isinstance(wire, TcpSegment):
            return []
        self.state.decoded = self.state.decoded + 1
        seg = wire
        conn: ConnId = (seg.dport, seg.sport)  # local view
        record = self._rec(conn)

        def dm_wrap(inner: Pdu) -> Pdu:
            # Peer's perspective: source is the remote port.
            return Pdu(
                "dm", DM_HEADER, {"sport": seg.sport, "dport": seg.dport}, inner
            )

        def cm_pdu(kind: int, inner: Any = None, offset: int = 0) -> Pdu:
            return Pdu("cm", CM_HEADER, {
                "kind": kind,
                "isn": record["remote_isn"] or 0,
                "ack_isn": record["local_isn"] or 0,
                "offset": offset,
            }, inner)

        units: list[Pdu] = []

        if seg.syn and not seg.has_ack:
            self._update(conn, remote_isn=seg.seq)
            record = self._rec(conn)
            units.append(dm_wrap(Pdu("cm", CM_HEADER, {
                "kind": CM_SYN, "isn": seg.seq, "ack_isn": 0, "offset": 0,
            }, None)))
            return units

        if seg.syn and seg.has_ack:
            self._update(
                conn, remote_isn=seg.seq, local_isn=fold(seg.ack - 1)
            )
            record = self._rec(conn)
            units.append(dm_wrap(Pdu("cm", CM_HEADER, {
                "kind": CM_SYNACK,
                "isn": seg.seq,
                "ack_isn": fold(seg.ack - 1),
                "offset": 0,
            }, None)))
            return units

        if record["remote_isn"] is None and record["local_isn"] is None:
            return []  # mid-stream segment for an unknown connection

        # A plain segment is several native packets at once.

        # 1. The handshake ACK interpretation (harmless if established).
        if seg.has_ack and not seg.payload:
            units.append(dm_wrap(cm_pdu(CM_HSACK)))

        # 2. The FIN interpretation.
        if seg.fin:
            remote_base = (record["remote_isn"] or 0) + 1
            fin_offset = (seg.seq + len(seg.payload) - remote_base) % (1 << 32)
            self._update(conn, remote_fin_offset=fin_offset)
            units.append(dm_wrap(cm_pdu(CM_FIN, offset=fin_offset)))

        # 3. The FIN-ack interpretation: the peer acked our FIN.
        if (
            seg.has_ack
            and record["local_fin_offset"] is not None
            and record["local_isn"] is not None
            and seg.ack == fold(
                record["local_isn"] + 1 + record["local_fin_offset"] + 1
            )
        ):
            units.append(
                dm_wrap(cm_pdu(CM_FINACK, offset=record["local_fin_offset"]))
            )

        # 4. The RD interpretation: data and/or cumulative ack, wrapped
        #    in a static CM data header.
        osr_header = {
            "wnd": seg.window,
            "ecn": seg.header["ece"] | (seg.header["cwr"] << 1),
            "ctl": OSR_CTL_UPDATE if not seg.payload else 0,
        }
        rd_values = {
            "seq": seg.seq,
            "ack": seg.ack,
            "has_data": int(bool(seg.payload)),
            "is_ack": int(seg.has_ack),
            "sack_left": 0,
            "sack_right": 0,
        }
        if seg.payload:
            inner: Any = Pdu("osr", OSR_HEADER, osr_header, bytes(seg.payload))
        else:
            # Pure ack: also deliver the window update to OSR as a
            # zero-length control segment.
            inner = Pdu("osr", OSR_HEADER, osr_header, b"")
            rd_values["has_data"] = 1  # zero-length: RD passes it through
        units.append(dm_wrap(cm_pdu(CM_NONE, Pdu("rd", RD_HEADER, rd_values, inner))))
        return units
