"""Verification substrate: lemmas, model checking, ownership analysis.

The Coq/Dafny substitute of DESIGN.md §1: :mod:`repro.verify.lemma`
provides machine-checked lemma libraries (bounded-exhaustive and
sampled tactics); :mod:`repro.verify.modelcheck` an explicit-state
model checker for protocol safety properties;
:mod:`repro.verify.ownership` the Dafny-ownership-substitute
interference analysis; :mod:`repro.verify.effort` the proof-effort
comparison metrics of experiment E3; :mod:`repro.verify.runner` the
parallel/cached batch proof runner (``python -m repro.verify`` is its
CLI).
"""

from . import lemma
from .effort import EffortComparison, Obligation
from .lemma import (
    CaseSource,
    Lemma,
    LemmaLibrary,
    LibraryReport,
    ProofResult,
    exhaustive,
    sampled,
)
from .modelcheck import (
    CheckResult,
    Invariant,
    Model,
    channel_add,
    channel_remove,
    channel_variants,
    check,
)
from .ownership import OwnershipReport, analyze_ownership, compare_ownership
from .runner import prove_libraries
from .tcpmodels import CmModel, MonolithicModel, OsrModel, RdModel

# Dependency inversion: the runner imports repro.verify.lemma, so the
# lemma module reaches it back through this injected hook (a direct
# import would be a cycle; the static checker rejects those).
lemma._prove_batch = prove_libraries

__all__ = [
    "CheckResult",
    "CmModel",
    "EffortComparison",
    "Invariant",
    "Model",
    "MonolithicModel",
    "Obligation",
    "OsrModel",
    "OwnershipReport",
    "RdModel",
    "analyze_ownership",
    "channel_add",
    "channel_remove",
    "channel_variants",
    "check",
    "compare_ownership",
    "CaseSource",
    "Lemma",
    "LemmaLibrary",
    "LibraryReport",
    "ProofResult",
    "exhaustive",
    "prove_libraries",
    "sampled",
]
