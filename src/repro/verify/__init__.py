"""Verification substrate: lemmas, model checking, ownership analysis.

The Coq/Dafny substitute of DESIGN.md §1: :mod:`repro.verify.lemma`
provides machine-checked lemma libraries (bounded-exhaustive and
sampled tactics); :mod:`repro.verify.modelcheck` an explicit-state
model checker for protocol safety properties;
:mod:`repro.verify.ownership` the Dafny-ownership-substitute
interference analysis; :mod:`repro.verify.effort` the proof-effort
comparison metrics of experiment E3.
"""

from .effort import EffortComparison, Obligation
from .lemma import (
    CaseSource,
    Lemma,
    LemmaLibrary,
    LibraryReport,
    ProofResult,
    exhaustive,
    sampled,
)
from .modelcheck import (
    CheckResult,
    Invariant,
    Model,
    channel_add,
    channel_remove,
    channel_variants,
    check,
)
from .ownership import OwnershipReport, analyze_ownership, compare_ownership
from .tcpmodels import CmModel, MonolithicModel, OsrModel, RdModel

__all__ = [
    "CheckResult",
    "CmModel",
    "EffortComparison",
    "Invariant",
    "Model",
    "MonolithicModel",
    "Obligation",
    "OsrModel",
    "OwnershipReport",
    "RdModel",
    "analyze_ownership",
    "channel_add",
    "channel_remove",
    "channel_variants",
    "check",
    "compare_ownership",
    "CaseSource",
    "Lemma",
    "LemmaLibrary",
    "LibraryReport",
    "ProofResult",
    "exhaustive",
    "sampled",
]
