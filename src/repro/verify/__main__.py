"""``python -m repro.verify`` — prove framing lemma libraries from the shell.

Builds the Section-4.1 lemma library for each requested stuffing rule
and proves them all through :func:`repro.verify.runner.prove_libraries`,
optionally in parallel (``--jobs``) and against the content-hash proof
cache (``--cache``).  The report JSON is canonical — no wall-clock
fields, results sorted by lemma name — so ``--jobs 4`` output is
byte-identical to ``--jobs 1`` output (CI compares them with ``cmp``).

Examples::

    python -m repro.verify                         # HDLC + low-overhead
    python -m repro.verify --rule hdlc --max-len 10
    python -m repro.verify --rule 00000010:0000001:1
    python -m repro.verify --jobs 4 --cache        # parallel, warm cache

Exit status is 0 iff every lemma of every library proved.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from ..core.bits import Bits
from ..datalink.framing.lemmas import build_framing_library
from ..datalink.framing.rules import HDLC_RULE, LOW_OVERHEAD_RULE, StuffingRule
from ..par import DEFAULT_CACHE_DIR, ProofCache
from .runner import prove_libraries

#: Named rules accepted by ``--rule``.
NAMED_RULES: dict[str, StuffingRule] = {
    "hdlc": HDLC_RULE,
    "low-overhead": LOW_OVERHEAD_RULE,
}


def parse_rule(spec: str) -> StuffingRule:
    """Parse a ``--rule`` value: a name or a ``flag:trigger:stuff`` triple."""
    if spec in NAMED_RULES:
        return NAMED_RULES[spec]
    parts = spec.split(":")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"rule must be one of {sorted(NAMED_RULES)} or "
            f"'flag:trigger:stuff_bit' (e.g. 01111110:11111:0), got {spec!r}"
        )
    flag, trigger, stuff = parts
    try:
        return StuffingRule(
            flag=Bits.from_string(flag),
            trigger=Bits.from_string(trigger),
            stuff_bit=int(stuff),
        )
    except Exception as exc:
        raise argparse.ArgumentTypeError(f"bad rule {spec!r}: {exc}") from exc


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.verify`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description=(
            "Prove the Section-4.1 framing lemma libraries, optionally in "
            "parallel and against the content-hash proof cache."
        ),
    )
    parser.add_argument(
        "--rule",
        action="append",
        type=parse_rule,
        metavar="RULE",
        help=(
            "stuffing rule to verify: a name (hdlc, low-overhead) or a "
            "flag:trigger:stuff_bit triple; repeatable "
            "(default: hdlc and low-overhead)"
        ),
    )
    parser.add_argument(
        "--max-len",
        type=int,
        default=9,
        help="bound for the exhaustive bit-string domains (default: 9)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; 0 = all CPUs (default: 1, serial)",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="memoise proved lemmas in the content-hash proof cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"proof cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--out",
        type=argparse.FileType("w"),
        default=sys.stdout,
        help="write the JSON report here (default: stdout)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    rules = args.rule or [HDLC_RULE, LOW_OVERHEAD_RULE]

    libraries = [
        build_framing_library(rule, max_len=args.max_len) for rule in rules
    ]
    cache = ProofCache(root=args.cache_dir) if args.cache else None
    reports = prove_libraries(libraries, jobs=args.jobs, cache=cache)

    payload = {
        "max_len": args.max_len,
        "proved": all(report.proved for report in reports.values()),
        "libraries": {name: report.as_dict() for name, report in reports.items()},
    }
    if cache is not None:
        payload["cache"] = cache.stats()

    json.dump(payload, args.out, indent=1, sort_keys=True)
    args.out.write("\n")
    return 0 if payload["proved"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
