"""Verification-effort comparison — experiment E3's report generator.

The paper reports its effort in Coq/Dafny units (57 lemmas / 1800 LoC;
30 lemmas / ~3500 LoC).  Our substitute measures the analogous
quantities of this repository's artifacts:

* **state-space size** per model-checking obligation — the model
  checker's version of "Dafny times out for large functions";
* **compositionality** — one obligation per sublayer vs one for the
  whole machine;
* **interference** — the ownership metrics that proxy Dafny's
  annotation burden;
* **lemma counts** from the bit-stuffing library.

Everything lands in an :class:`EffortComparison` the E3 benchmark
prints next to the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .modelcheck import CheckResult
from .ownership import OwnershipReport


@dataclass
class Obligation:
    """One verification obligation and what discharging it cost."""

    name: str
    component: str        # "cm", "rd", "osr", or "whole-system"
    result: CheckResult

    @property
    def states(self) -> int:
        return self.result.states_explored

    @property
    def discharged(self) -> bool:
        return bool(self.result)


@dataclass
class EffortComparison:
    """Monolithic vs compositional verification of the same property."""

    compositional: list[Obligation] = field(default_factory=list)
    monolithic: list[Obligation] = field(default_factory=list)
    monolithic_ownership: OwnershipReport | None = None
    sublayered_ownership: OwnershipReport | None = None

    # ------------------------------------------------------------------
    @property
    def compositional_states(self) -> int:
        return sum(o.states for o in self.compositional)

    @property
    def monolithic_states(self) -> int:
        return sum(o.states for o in self.monolithic)

    @property
    def state_ratio(self) -> float:
        """How many times larger the monolithic obligation is."""
        if self.compositional_states == 0:
            return float("inf")
        return self.monolithic_states / self.compositional_states

    @property
    def largest_single_obligation(self) -> dict[str, int]:
        """The 'Dafny times out on big functions' proxy: the biggest
        single thing either approach must swallow at once."""
        return {
            "compositional": max((o.states for o in self.compositional), default=0),
            "monolithic": max((o.states for o in self.monolithic), default=0),
        }

    @property
    def all_discharged(self) -> bool:
        return all(o.discharged for o in self.compositional + self.monolithic)

    # ------------------------------------------------------------------
    def rows(self) -> list[dict[str, object]]:
        """Tabular form for the benchmark output."""
        out: list[dict[str, object]] = []
        for kind, obligations in (
            ("compositional", self.compositional),
            ("monolithic", self.monolithic),
        ):
            for o in obligations:
                out.append({
                    "approach": kind,
                    "obligation": o.name,
                    "component": o.component,
                    "states": o.states,
                    "transitions": o.result.transitions,
                    "discharged": o.discharged,
                })
        return out

    def summary(self) -> str:
        lines = ["verification-effort comparison (E3)"]
        for row in self.rows():
            lines.append(
                f"  [{row['approach']:>13}] {row['obligation']:<28} "
                f"states={row['states']:>7}  "
                f"{'ok' if row['discharged'] else 'FAILED'}"
            )
        lines.append(
            f"  total states: compositional={self.compositional_states} "
            f"monolithic={self.monolithic_states} "
            f"(ratio {self.state_ratio:.1f}x)"
        )
        biggest = self.largest_single_obligation
        lines.append(
            f"  largest single obligation: "
            f"compositional={biggest['compositional']} "
            f"monolithic={biggest['monolithic']}"
        )
        if self.monolithic_ownership and self.sublayered_ownership:
            lines.append(
                f"  interference: monolithic "
                f"{self.monolithic_ownership.shared_field_count} shared fields / "
                f"{self.monolithic_ownership.interaction_count} coupled pairs; "
                f"sublayered "
                f"{self.sublayered_ownership.shared_field_count} / "
                f"{self.sublayered_ownership.interaction_count}"
            )
        return "\n".join(lines)
