"""Lemmas and machine-checked proofs — the Coq-substitute (DESIGN.md §1).

The paper's Coq artifact proves ``Unstuff(RemoveFlags(AddFlags(
Stuff(D)))) = D`` with "57 lemmas and 1800 lines", organized so that
"the proof uses separate independent correctness lemmas for each
sublayer".  We reproduce the *structure* of that artifact in Python:

* a :class:`Lemma` is a named, universally-quantified property,
  attributed to one sublayer (or to an interface between two), with
  explicit dependencies on other lemmas;
* a proof *tactic* decides it: :func:`exhaustive` enumerates a bounded
  domain completely (a sound decision procedure for the finite-state
  transductions involved — see :mod:`repro.datalink.framing.decide`
  for the exact automaton-product alternative), and
  :func:`sampled` draws seeded random cases for domains too big to
  enumerate;
* a :class:`LemmaLibrary` proves lemmas in dependency order and
  reports the *modularity metrics* the paper's lesson 1 is about:
  how many lemmas belong to each sublayer, and how many cross
  sublayer boundaries.

A lemma failing produces the counterexample, which is how the E2
search exhibits the paper's "subtle" invalid stuffing rules.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from ..core.errors import VerificationError


@dataclass
class ProofResult:
    """Outcome of checking one lemma."""

    lemma: str
    proved: bool
    cases_checked: int
    counterexample: tuple | None = None
    detail: str = ""
    elapsed: float = 0.0

    def __bool__(self) -> bool:
        return self.proved


CaseSource = Callable[[], Iterable[tuple]]
Property = Callable[..., bool]


class Lemma:
    """A universally-quantified property with provenance and dependencies.

    Parameters
    ----------
    name:
        Unique lemma name, e.g. ``"stuff_roundtrip"``.
    statement:
        Human-readable statement (what would be the Coq ``Theorem``).
    prop:
        Predicate over one case tuple's elements; must return True for
        every case the source yields.
    cases:
        Zero-argument callable yielding case tuples (the quantified
        domain, already bounded).
    sublayer:
        The component this lemma reasons about — ``"stuffing"``,
        ``"flags"`` — or an interface like ``"stuffing/flags"`` when it
        necessarily spans two (the modularity metric counts these).
    depends_on:
        Names of lemmas this proof uses.  The library checks the
        graph is acyclic and proves dependencies first.
    """

    def __init__(
        self,
        name: str,
        statement: str,
        prop: Property,
        cases: CaseSource,
        sublayer: str,
        depends_on: Iterable[str] = (),
    ):
        self.name = name
        self.statement = statement
        self.prop = prop
        self.cases = cases
        self.sublayer = sublayer
        self.depends_on = tuple(depends_on)

    @property
    def crosses_sublayers(self) -> bool:
        return "/" in self.sublayer

    def prove(self) -> ProofResult:
        """Check the property over every case; stop at the first failure."""
        start = time.perf_counter()
        count = 0
        for case in self.cases():
            count += 1
            try:
                ok = self.prop(*case)
            except Exception as exc:  # a crash is a failure with detail
                return ProofResult(
                    self.name, False, count, case,
                    detail=f"raised {type(exc).__name__}: {exc}",
                    elapsed=time.perf_counter() - start,
                )
            if not ok:
                return ProofResult(
                    self.name, False, count, case,
                    elapsed=time.perf_counter() - start,
                )
        return ProofResult(
            self.name, True, count, elapsed=time.perf_counter() - start
        )

    def __repr__(self) -> str:
        return f"Lemma({self.name!r}, sublayer={self.sublayer!r})"


# ----------------------------------------------------------------------
# Case-source combinators (proof tactics)
# ----------------------------------------------------------------------
def exhaustive(*domains: Callable[[], Iterable[Any]]) -> CaseSource:
    """Cartesian product of fully-enumerated domains."""

    def source() -> Iterator[tuple]:
        def recurse(prefix: tuple, remaining: tuple) -> Iterator[tuple]:
            if not remaining:
                yield prefix
                return
            head, *tail = remaining
            for value in head():
                yield from recurse(prefix + (value,), tuple(tail))

        yield from recurse((), domains)

    return source


def sampled(
    generator: Callable[[random.Random], tuple],
    samples: int = 500,
    seed: int = 0,
) -> CaseSource:
    """Seeded random cases for domains too large to enumerate."""

    def source() -> Iterator[tuple]:
        rng = random.Random(seed)
        for _ in range(samples):
            yield generator(rng)

    return source


# ----------------------------------------------------------------------
@dataclass
class LibraryReport:
    """Aggregate result of proving a lemma library."""

    results: list[ProofResult] = field(default_factory=list)
    order: list[str] = field(default_factory=list)

    @property
    def proved(self) -> bool:
        return all(r.proved for r in self.results)

    @property
    def total_cases(self) -> int:
        return sum(r.cases_checked for r in self.results)

    def failures(self) -> list[ProofResult]:
        return [r for r in self.results if not r.proved]

    def result(self, name: str) -> ProofResult:
        for r in self.results:
            if r.lemma == name:
                return r
        raise KeyError(name)

    def summary(self) -> str:
        lines = [
            f"{len(self.results)} lemmas, {self.total_cases} cases, "
            f"{'ALL PROVED' if self.proved else 'FAILURES PRESENT'}"
        ]
        for r in self.results:
            status = "proved" if r.proved else f"FAILED at {r.counterexample!r}"
            lines.append(f"  {r.lemma}: {status} ({r.cases_checked} cases)")
        return "\n".join(lines)


class LemmaLibrary:
    """An ordered collection of lemmas with dependency tracking."""

    def __init__(self, name: str):
        self.name = name
        self._lemmas: dict[str, Lemma] = {}

    def add(self, lemma: Lemma) -> Lemma:
        if lemma.name in self._lemmas:
            raise VerificationError(f"duplicate lemma {lemma.name!r}")
        for dep in lemma.depends_on:
            if dep not in self._lemmas:
                raise VerificationError(
                    f"lemma {lemma.name!r} depends on unknown {dep!r} "
                    f"(add dependencies first)"
                )
        self._lemmas[lemma.name] = lemma
        return lemma

    def __len__(self) -> int:
        return len(self._lemmas)

    def __contains__(self, name: str) -> bool:
        return name in self._lemmas

    def lemma(self, name: str) -> Lemma:
        return self._lemmas[name]

    def lemmas(self) -> list[Lemma]:
        return list(self._lemmas.values())

    # ------------------------------------------------------------------
    def topological_order(self) -> list[str]:
        """Dependency-respecting proof order (insertion order is already
        topological because ``add`` requires dependencies to exist)."""
        return list(self._lemmas)

    def prove_all(self, stop_on_failure: bool = False) -> LibraryReport:
        report = LibraryReport(order=self.topological_order())
        for name in report.order:
            result = self._lemmas[name].prove()
            report.results.append(result)
            if stop_on_failure and not result.proved:
                break
        return report

    # ------------------------------------------------------------------
    # Modularity metrics (the paper's lesson 1)
    # ------------------------------------------------------------------
    def lemmas_per_sublayer(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for lemma in self._lemmas.values():
            counts[lemma.sublayer] = counts.get(lemma.sublayer, 0) + 1
        return counts

    def cross_sublayer_lemmas(self) -> list[str]:
        """Lemmas whose statement spans more than one sublayer."""
        return [
            lemma.name for lemma in self._lemmas.values() if lemma.crosses_sublayers
        ]

    def cross_sublayer_dependencies(self) -> int:
        """Dependency edges joining lemmas of *different* sublayers."""
        count = 0
        for lemma in self._lemmas.values():
            for dep in lemma.depends_on:
                if self._lemmas[dep].sublayer != lemma.sublayer:
                    count += 1
        return count

    def modularity_report(self) -> dict[str, Any]:
        per = self.lemmas_per_sublayer()
        cross = self.cross_sublayer_lemmas()
        return {
            "lemmas": len(self._lemmas),
            "per_sublayer": per,
            "cross_sublayer_lemmas": len(cross),
            "cross_sublayer_dependencies": self.cross_sublayer_dependencies(),
            "modular_fraction": (
                (len(self._lemmas) - len(cross)) / len(self._lemmas)
                if self._lemmas
                else 1.0
            ),
        }
