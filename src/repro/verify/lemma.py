"""Lemmas and machine-checked proofs — the Coq-substitute (DESIGN.md §1).

The paper's Coq artifact proves ``Unstuff(RemoveFlags(AddFlags(
Stuff(D)))) = D`` with "57 lemmas and 1800 lines", organized so that
"the proof uses separate independent correctness lemmas for each
sublayer".  We reproduce the *structure* of that artifact in Python:

* a :class:`Lemma` is a named, universally-quantified property,
  attributed to one sublayer (or to an interface between two), with
  explicit dependencies on other lemmas;
* a proof *tactic* decides it: :func:`exhaustive` enumerates a bounded
  domain completely (a sound decision procedure for the finite-state
  transductions involved — see :mod:`repro.datalink.framing.decide`
  for the exact automaton-product alternative), and
  :func:`sampled` draws seeded random cases for domains too big to
  enumerate;
* a :class:`LemmaLibrary` proves lemmas in dependency order and
  reports the *modularity metrics* the paper's lesson 1 is about:
  how many lemmas belong to each sublayer, and how many cross
  sublayer boundaries.

A lemma failing produces the counterexample, which is how the E2
search exhibits the paper's "subtle" invalid stuffing rules.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from ..core.errors import VerificationError
from ..par import ProofCache, callable_fingerprint

#: The batch proof runner, injected by :mod:`repro.verify` at import
#: time (dependency inversion: :mod:`repro.verify.runner` imports this
#: module, so this module must not import it back — the static
#: import-cycle check enforces that).  ``prove_all(parallel=/cache=)``
#: delegates through this hook.
_prove_batch: Callable[..., dict[str, "LibraryReport"]] | None = None


@dataclass
class ProofResult:
    """Outcome of checking one lemma."""

    lemma: str
    proved: bool
    cases_checked: int
    counterexample: tuple | None = None
    detail: str = ""
    elapsed: float = 0.0

    def __bool__(self) -> bool:
        """Truthiness is the verdict: ``bool(result)`` is ``proved``."""
        return self.proved

    def as_dict(self) -> dict[str, Any]:
        """Canonical JSON-able form — everything except wall time.

        Wall time is the one field that differs between two runs of the
        same proof, so leaving it out makes reports byte-comparable
        across serial, parallel, and cached runs.  Counterexample
        elements are rendered with ``repr`` (case tuples may hold
        non-JSON types like :class:`~repro.core.bits.Bits`).
        """
        return {
            "lemma": self.lemma,
            "proved": self.proved,
            "cases_checked": self.cases_checked,
            "counterexample": (
                None
                if self.counterexample is None
                else [repr(item) for item in self.counterexample]
            ),
            "detail": self.detail,
        }


CaseSource = Callable[[], Iterable[tuple]]
Property = Callable[..., bool]


class Lemma:
    """A universally-quantified property with provenance and dependencies.

    Parameters
    ----------
    name:
        Unique lemma name, e.g. ``"stuff_roundtrip"``.
    statement:
        Human-readable statement (what would be the Coq ``Theorem``).
    prop:
        Predicate over one case tuple's elements; must return True for
        every case the source yields.
    cases:
        Zero-argument callable yielding case tuples (the quantified
        domain, already bounded).
    sublayer:
        The component this lemma reasons about — ``"stuffing"``,
        ``"flags"`` — or an interface like ``"stuffing/flags"`` when it
        necessarily spans two (the modularity metric counts these).
    depends_on:
        Names of lemmas this proof uses.  The library checks the
        graph is acyclic and proves dependencies first.
    """

    def __init__(
        self,
        name: str,
        statement: str,
        prop: Property,
        cases: CaseSource,
        sublayer: str,
        depends_on: Iterable[str] = (),
    ):
        """See the class docstring for the parameter meanings."""
        self.name = name
        self.statement = statement
        self.prop = prop
        self.cases = cases
        self.sublayer = sublayer
        self.depends_on = tuple(depends_on)

    @property
    def crosses_sublayers(self) -> bool:
        """True when the lemma spans an interface (``"stuffing/flags"``)."""
        return "/" in self.sublayer

    def fingerprint(self) -> str:
        """Content hash of everything this proof's outcome depends on.

        Covers the property and case source transitively — their source
        text, closed-over values (rules, automata), defaults (sample
        counts, seeds), and any ``repro``-package code they call through
        module globals.  Two lemmas with the same fingerprint would
        produce the same :class:`ProofResult`, which is what lets
        :class:`~repro.par.ProofCache` skip re-proving unchanged lemmas.
        """
        return callable_fingerprint(self.prop, self.cases)

    def prove(self) -> ProofResult:
        """Check the property over every case; stop at the first failure."""
        start = time.perf_counter()
        count = 0
        for case in self.cases():
            count += 1
            try:
                ok = self.prop(*case)
            except Exception as exc:  # a crash is a failure with detail
                return ProofResult(
                    self.name, False, count, case,
                    detail=f"raised {type(exc).__name__}: {exc}",
                    elapsed=time.perf_counter() - start,
                )
            if not ok:
                return ProofResult(
                    self.name, False, count, case,
                    elapsed=time.perf_counter() - start,
                )
        return ProofResult(
            self.name, True, count, elapsed=time.perf_counter() - start
        )

    def __repr__(self) -> str:
        return f"Lemma({self.name!r}, sublayer={self.sublayer!r})"


# ----------------------------------------------------------------------
# Case-source combinators (proof tactics)
# ----------------------------------------------------------------------
def exhaustive(*domains: Callable[[], Iterable[Any]]) -> CaseSource:
    """Cartesian product of fully-enumerated domains."""

    def source() -> Iterator[tuple]:
        """Enumerate the full cartesian product, leftmost domain slowest."""

        def recurse(prefix: tuple, remaining: tuple) -> Iterator[tuple]:
            """Extend ``prefix`` with every value of each remaining domain."""
            if not remaining:
                yield prefix
                return
            head, *tail = remaining
            for value in head():
                yield from recurse(prefix + (value,), tuple(tail))

        yield from recurse((), domains)

    return source


def sampled(
    generator: Callable[[random.Random], tuple],
    samples: int = 500,
    seed: int = 0,
) -> CaseSource:
    """Seeded random cases for domains too large to enumerate."""

    def source() -> Iterator[tuple]:
        """Yield ``samples`` cases from a freshly-seeded generator."""
        rng = random.Random(seed)
        for _ in range(samples):
            yield generator(rng)

    return source


# ----------------------------------------------------------------------
@dataclass
class LibraryReport:
    """Aggregate result of proving a lemma library.

    ``results`` are kept sorted by lemma name (see :meth:`sort`) so a
    report renders identically no matter what order the proofs finished
    in — serial, parallel, or partially cached.  ``order`` preserves
    the dependency-respecting order the proofs were *scheduled* in.
    """

    results: list[ProofResult] = field(default_factory=list)
    order: list[str] = field(default_factory=list)

    @property
    def proved(self) -> bool:
        """True when every checked lemma held."""
        return all(r.proved for r in self.results)

    @property
    def total_cases(self) -> int:
        """Total cases checked across all lemmas."""
        return sum(r.cases_checked for r in self.results)

    def failures(self) -> list[ProofResult]:
        """The results that did not hold, sorted by lemma name."""
        return [r for r in self.results if not r.proved]

    def result(self, name: str) -> ProofResult:
        """The result for lemma ``name`` (raises ``KeyError`` if absent)."""
        for r in self.results:
            if r.lemma == name:
                return r
        raise KeyError(name)

    def sort(self) -> "LibraryReport":
        """Sort ``results`` by lemma name, in place; returns self."""
        self.results.sort(key=lambda r: r.lemma)
        return self

    def as_dict(self) -> dict[str, Any]:
        """Canonical JSON-able form (no wall time; see ProofResult.as_dict)."""
        return {
            "proved": self.proved,
            "total_cases": self.total_cases,
            "order": list(self.order),
            "results": [r.as_dict() for r in self.results],
        }

    def summary(self) -> str:
        """Human-readable one-line-per-lemma report."""
        lines = [
            f"{len(self.results)} lemmas, {self.total_cases} cases, "
            f"{'ALL PROVED' if self.proved else 'FAILURES PRESENT'}"
        ]
        for r in self.results:
            status = "proved" if r.proved else f"FAILED at {r.counterexample!r}"
            lines.append(f"  {r.lemma}: {status} ({r.cases_checked} cases)")
        return "\n".join(lines)


class LemmaLibrary:
    """An ordered collection of lemmas with dependency tracking.

    Mirrors the paper's Coq artifact organisation: lemmas are added in
    dependency order (``add`` rejects unknown dependencies, so insertion
    order is always topological), proved via :meth:`prove_all` — serially,
    in parallel waves, or against a :class:`~repro.par.ProofCache` —
    and summarised by the modularity metrics of the paper's lesson 1
    (:meth:`modularity_report`).
    """

    def __init__(self, name: str):
        """An empty library named ``name``."""
        self.name = name
        self._lemmas: dict[str, Lemma] = {}

    def add(self, lemma: Lemma) -> Lemma:
        """Register ``lemma``; its dependencies must already be present."""
        if lemma.name in self._lemmas:
            raise VerificationError(f"duplicate lemma {lemma.name!r}")
        for dep in lemma.depends_on:
            if dep not in self._lemmas:
                raise VerificationError(
                    f"lemma {lemma.name!r} depends on unknown {dep!r} "
                    f"(add dependencies first)"
                )
        self._lemmas[lemma.name] = lemma
        return lemma

    def __len__(self) -> int:
        """Number of lemmas in the library."""
        return len(self._lemmas)

    def __contains__(self, name: str) -> bool:
        """True when a lemma named ``name`` is registered."""
        return name in self._lemmas

    def lemma(self, name: str) -> Lemma:
        """The lemma named ``name`` (raises ``KeyError`` if absent)."""
        return self._lemmas[name]

    def lemmas(self) -> list[Lemma]:
        """All lemmas, in insertion (= topological) order."""
        return list(self._lemmas.values())

    # ------------------------------------------------------------------
    def topological_order(self) -> list[str]:
        """Dependency-respecting proof order (insertion order is already
        topological because ``add`` requires dependencies to exist)."""
        return list(self._lemmas)

    def proof_waves(self) -> list[list[str]]:
        """Partition lemmas into dependency waves for parallel proving.

        A lemma's *level* is 1 + the maximum level of its dependencies
        (0 for lemmas with none).  All lemmas in one wave are mutually
        independent, so a pool may prove a whole wave concurrently;
        within a wave, insertion order is preserved.
        """
        levels: dict[str, int] = {}
        for name, lemma in self._lemmas.items():
            levels[name] = 1 + max(
                (levels[dep] for dep in lemma.depends_on), default=-1
            )
        waves: list[list[str]] = [[] for _ in range(max(levels.values(), default=-1) + 1)]
        for name in self._lemmas:
            waves[levels[name]].append(name)
        return waves

    def prove_all(
        self,
        stop_on_failure: bool = False,
        parallel: int | None = None,
        cache: "ProofCache | None" = None,
    ) -> LibraryReport:
        """Prove every lemma in dependency order.

        Parameters
        ----------
        stop_on_failure:
            Stop scheduling further proofs once a lemma fails (with
            ``parallel``, the already-running wave still completes).
        parallel:
            Number of worker processes (``None``/1 serial, 0 = all
            CPUs); waves of independent lemmas are proved concurrently
            through :class:`~repro.par.ForkPool`.
        cache:
            A :class:`~repro.par.ProofCache`; lemmas whose fingerprint
            matches a cached *proved* result are skipped, failures are
            always re-proved.

        Results in the returned report are sorted by lemma name, so the
        report is identical whichever execution strategy ran it.
        """
        if parallel is not None or cache is not None:
            if _prove_batch is None:
                raise VerificationError(
                    "no batch runner installed; import repro.verify first"
                )
            return _prove_batch(
                [self],
                jobs=parallel,
                cache=cache,
                stop_on_failure=stop_on_failure,
            )[self.name]
        report = LibraryReport(order=self.topological_order())
        for name in report.order:
            result = self._lemmas[name].prove()
            report.results.append(result)
            if stop_on_failure and not result.proved:
                break
        return report.sort()

    # ------------------------------------------------------------------
    # Modularity metrics (the paper's lesson 1)
    # ------------------------------------------------------------------
    def lemmas_per_sublayer(self) -> dict[str, int]:
        """Lemma counts keyed by the sublayer (or interface) they reason about."""
        counts: dict[str, int] = {}
        for lemma in self._lemmas.values():
            counts[lemma.sublayer] = counts.get(lemma.sublayer, 0) + 1
        return counts

    def cross_sublayer_lemmas(self) -> list[str]:
        """Lemmas whose statement spans more than one sublayer."""
        return [
            lemma.name for lemma in self._lemmas.values() if lemma.crosses_sublayers
        ]

    def cross_sublayer_dependencies(self) -> int:
        """Dependency edges joining lemmas of *different* sublayers."""
        count = 0
        for lemma in self._lemmas.values():
            for dep in lemma.depends_on:
                if self._lemmas[dep].sublayer != lemma.sublayer:
                    count += 1
        return count

    def modularity_report(self) -> dict[str, Any]:
        """The paper's lesson-1 metrics: how modular is this proof library?"""
        per = self.lemmas_per_sublayer()
        cross = self.cross_sublayer_lemmas()
        return {
            "lemmas": len(self._lemmas),
            "per_sublayer": per,
            "cross_sublayer_lemmas": len(cross),
            "cross_sublayer_dependencies": self.cross_sublayer_dependencies(),
            "modular_fraction": (
                (len(self._lemmas) - len(cross)) / len(self._lemmas)
                if self._lemmas
                else 1.0
            ),
        }
