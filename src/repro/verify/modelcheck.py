"""An explicit-state model checker for protocol safety properties.

This is the Dafny substitute of DESIGN.md §1: where the paper proved
(with great effort) an in-order delivery property of a monolithic TCP,
we *check* such properties exhaustively over small protocol models —
breadth-first search over every reachable (endpoints x channel) state,
with invariants evaluated at each state.

The point of experiment E3 is comparative: verifying the monolithic
model means exploring the product of all its entangled state, while
the sublayered models of :mod:`repro.verify.tcpmodels` are checked
*compositionally* — each sublayer against the abstraction of the
service below it — and the summed state counts are dramatically
smaller.  "Once a sublayer is proved, we can forget the details of a
sublayer, relying thereafter only on the postconditions of the lower
layer" (Section 4.2).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable

from ..core.errors import VerificationError

State = Hashable
Action = tuple[str, State]


class Model:
    """A transition system: initial states plus a successor relation."""

    name = "abstract"

    def initial_states(self) -> Iterable[State]:
        raise NotImplementedError

    def actions(self, state: State) -> Iterable[Action]:
        """(label, successor) pairs; nondeterminism is the adversary."""
        raise NotImplementedError


@dataclass(frozen=True)
class Invariant:
    """A safety property evaluated at every reachable state."""

    name: str
    check: Callable[[State], bool]


@dataclass
class CheckResult:
    """Outcome of exhaustively exploring a model."""

    model: str
    states_explored: int
    transitions: int
    depth: int
    holds: bool
    violated: str | None = None
    counterexample: list[str] = field(default_factory=list)
    hit_state_limit: bool = False

    def __bool__(self) -> bool:
        return self.holds and not self.hit_state_limit


def check(
    model: Model,
    invariants: list[Invariant],
    max_states: int = 2_000_000,
) -> CheckResult:
    """BFS over the reachable states, checking every invariant.

    On violation, returns the action-label trace from an initial state
    (the counterexample the paper's debugging story needs).  Raises
    nothing for a violation — the result object reports it — but a
    model that exceeds ``max_states`` is flagged as unexhausted.
    """
    seen: dict[State, tuple[State | None, str | None]] = {}
    queue: deque[tuple[State, int]] = deque()
    transitions = 0
    depth = 0

    def trace_to(state: State) -> list[str]:
        labels: list[str] = []
        cursor: State | None = state
        while cursor is not None:
            parent, label = seen[cursor]
            if label is not None:
                labels.append(label)
            cursor = parent
        return list(reversed(labels))

    for initial in model.initial_states():
        if initial not in seen:
            seen[initial] = (None, None)
            queue.append((initial, 0))

    while queue:
        state, level = queue.popleft()
        depth = max(depth, level)
        for invariant in invariants:
            if not invariant.check(state):
                return CheckResult(
                    model=model.name,
                    states_explored=len(seen),
                    transitions=transitions,
                    depth=depth,
                    holds=False,
                    violated=invariant.name,
                    counterexample=trace_to(state),
                )
        for label, successor in model.actions(state):
            transitions += 1
            if successor not in seen:
                if len(seen) >= max_states:
                    return CheckResult(
                        model=model.name,
                        states_explored=len(seen),
                        transitions=transitions,
                        depth=depth,
                        holds=True,
                        hit_state_limit=True,
                    )
                seen[successor] = (state, label)
                queue.append((successor, level + 1))

    return CheckResult(
        model=model.name,
        states_explored=len(seen),
        transitions=transitions,
        depth=depth,
        holds=True,
    )


# ----------------------------------------------------------------------
# Channel abstraction shared by the protocol models
# ----------------------------------------------------------------------
def channel_add(channel: tuple, message: Hashable, capacity: int) -> tuple | None:
    """A new channel tuple with ``message`` added, or None if full.

    Channels are sorted tuples (multisets): unordered by construction,
    which bakes arbitrary reordering into the state space.
    """
    if len(channel) >= capacity:
        return None
    return tuple(sorted(channel + (message,), key=repr))


def channel_remove(channel: tuple, message: Hashable) -> tuple:
    out = list(channel)
    out.remove(message)
    return tuple(out)


def channel_variants(
    channel: tuple,
    message: Hashable,
    capacity: int,
    lossy: bool = True,
    duplicating: bool = False,
) -> list[tuple[str, tuple]]:
    """The adversary's choices when a message is transmitted."""
    variants: list[tuple[str, tuple]] = []
    added = channel_add(channel, message, capacity)
    if added is not None:
        variants.append(("sent", added))
    if lossy:
        variants.append(("lost", channel))
    if duplicating and added is not None:
        doubled = channel_add(added, message, capacity)
        if doubled is not None:
            variants.append(("duplicated", doubled))
    if not variants:
        raise VerificationError("channel full and loss disabled: deadlocked model")
    return variants
