"""Ownership and interference analysis — the Dafny-ownership substitute.

Section 4.2, lesson 2: "Verification of monolithic stacks with
unrestricted shared state (e.g., the PCB) is challenging because Dafny
does not have an in-built notion of ownership.  Modifying the heap
requires a plethora of annotations to manually specify the precise
portions of the heap that an individual function accesses, to prove
that functions do not interfere with one another via side effects in
shared state."

Given an :class:`~repro.core.instrument.AccessLog` from an executed
implementation (the monolithic TCP's subfunction-tagged PCB accesses,
or the sublayered TCP's per-sublayer state), this module computes:

* the **interference matrix** — which actors touch which fields;
* the **frame-annotation estimate** — how many Dafny-style
  ``reads``/``modifies`` clauses the access pattern implies (one per
  distinct (actor, field, kind) triple): the paper's "plethora of
  annotations", counted;
* the **interaction graph** — actor pairs coupled through shared
  fields, whose growth is the O(N^2) the paper warns about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from ..core.instrument import AccessLog


@dataclass
class OwnershipReport:
    """Interference metrics for one access log."""

    actors: list[str]
    fields_total: int
    shared_fields: dict[tuple[str, str], list[str]]
    frame_annotations: int
    write_write_conflicts: int
    interaction_pairs: list[tuple[str, str]]

    @property
    def shared_field_count(self) -> int:
        return len(self.shared_fields)

    @property
    def interaction_count(self) -> int:
        """Coupled actor pairs — the O(N^2) growth metric."""
        return len(self.interaction_pairs)

    @property
    def exclusively_owned_fraction(self) -> float:
        """Fraction of fields touched by exactly one actor — 1.0 means
        full ownership discipline (the sublayered ideal)."""
        if self.fields_total == 0:
            return 1.0
        return 1.0 - self.shared_field_count / self.fields_total

    def summary(self) -> str:
        lines = [
            f"{len(self.actors)} actors, {self.fields_total} fields, "
            f"{self.shared_field_count} shared "
            f"({self.exclusively_owned_fraction:.0%} exclusively owned)",
            f"frame annotations needed: {self.frame_annotations}",
            f"write-write conflicts: {self.write_write_conflicts}",
            f"coupled actor pairs: {self.interaction_count}",
        ]
        for (target, name), actors in sorted(self.shared_fields.items()):
            lines.append(f"  {target}.{name}: {', '.join(sorted(actors))}")
        return "\n".join(lines)


def analyze_ownership(
    log: AccessLog, targets: set[str] | None = None
) -> OwnershipReport:
    """Interference analysis over (optionally filtered) state targets."""
    records = [
        r
        for r in log.records
        if r.actor is not None and (targets is None or r.target in targets)
    ]
    touched: dict[tuple[str, str], set[str]] = {}
    annotations: set[tuple[str, str, str, str]] = set()
    writers: dict[tuple[str, str], set[str]] = {}
    for r in records:
        key = (r.target, r.field)
        touched.setdefault(key, set()).add(r.actor)
        annotations.add((r.actor, r.target, r.field, r.kind))
        if r.kind == "write":
            writers.setdefault(key, set()).add(r.actor)

    shared = {
        key: sorted(actors) for key, actors in touched.items() if len(actors) > 1
    }
    write_write = sum(1 for actors in writers.values() if len(actors) > 1)

    coupled: set[tuple[str, str]] = set()
    for actors in touched.values():
        for a, b in combinations(sorted(actors), 2):
            coupled.add((a, b))

    return OwnershipReport(
        actors=sorted({r.actor for r in records}),
        fields_total=len(touched),
        shared_fields=shared,
        frame_annotations=len(annotations),
        write_write_conflicts=write_write,
        interaction_pairs=sorted(coupled),
    )


def compare_ownership(
    monolithic: OwnershipReport, sublayered: OwnershipReport
) -> dict[str, float | int]:
    """The E3/A1 headline numbers: monolithic vs sublayered discipline."""
    return {
        "monolithic_shared_fields": monolithic.shared_field_count,
        "sublayered_shared_fields": sublayered.shared_field_count,
        "monolithic_interactions": monolithic.interaction_count,
        "sublayered_interactions": sublayered.interaction_count,
        "monolithic_annotations": monolithic.frame_annotations,
        "sublayered_annotations": sublayered.frame_annotations,
        "monolithic_owned_fraction": monolithic.exclusively_owned_fraction,
        "sublayered_owned_fraction": sublayered.exclusively_owned_fraction,
    }
