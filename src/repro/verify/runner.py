"""Batch proof runner: many libraries, one worker pool, one cache.

A single library's speedup is capped by its dependency critical path —
the E2 framing library spends most of its wall time in one long
``stream_back_to_back`` chain.  Proving *several* rule libraries at
once (the C9 benchmark proves four) keeps every worker busy because
independent libraries' waves interleave freely: the global wave *k*
holds every library's level-*k* lemmas, and all of those are mutually
independent by construction.

Workers are forked once, before the first wave, and inherit all the
libraries by address-space inheritance (lemma closures are not
picklable); only ``(library, lemma)`` name pairs and
:class:`~repro.verify.lemma.ProofResult` values cross the pipe.

The cache (when given) is consulted before scheduling: a lemma whose
fingerprint matches a cached *proved* entry is reconstructed without
running.  Failures are never cached — a failing lemma is always
re-proved so its counterexample reflects the current code.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.errors import VerificationError
from ..par import ForkPool, ProofCache
from .lemma import LemmaLibrary, LibraryReport, ProofResult

#: Libraries inherited by forked workers for the current run.
_LIBRARIES: dict[str, LemmaLibrary] = {}


def _prove_one(item: tuple[str, str]) -> ProofResult:
    """Worker-side: prove lemma ``item = (library_name, lemma_name)``."""
    library_name, lemma_name = item
    return _LIBRARIES[library_name].lemma(lemma_name).prove()


def _cache_key(library: LemmaLibrary, lemma_name: str) -> str:
    return f"lemma:{library.name}:{lemma_name}"


def prove_libraries(
    libraries: Iterable[LemmaLibrary],
    jobs: int | None = None,
    cache: ProofCache | None = None,
    stop_on_failure: bool = False,
) -> dict[str, LibraryReport]:
    """Prove every lemma of every library; returns reports keyed by name.

    Lemmas are scheduled in global dependency waves — wave *k* pools the
    level-*k* lemmas of **all** libraries — through one
    :class:`~repro.par.ForkPool`, so independent libraries' proofs
    interleave and the speedup is not capped by any single library's
    critical path.

    Parameters
    ----------
    libraries:
        The lemma libraries to prove; names must be unique.
    jobs:
        Worker processes (``None``/1 serial, 0 = all CPUs).
    cache:
        Optional :class:`~repro.par.ProofCache`.  Only *proved* results
        are stored; a fingerprint mismatch (edited lemma) is a miss.
    stop_on_failure:
        Stop scheduling new waves after a wave containing a failure;
        serially (``jobs <= 1``) the stop is immediate, mid-wave,
        matching ``LemmaLibrary.prove_all(stop_on_failure=True)``.

    Reports' ``results`` are sorted by lemma name, so the output is
    byte-identical across serial, parallel, and cached runs.
    """
    batch: list[LemmaLibrary] = list(libraries)
    by_name: dict[str, LemmaLibrary] = {}
    for library in batch:
        if library.name in by_name:
            raise VerificationError(
                f"duplicate library name {library.name!r} in batch"
            )
        by_name[library.name] = library

    reports = {
        library.name: LibraryReport(order=library.topological_order())
        for library in batch
    }

    # Global waves: wave k = concatenation of every library's wave k.
    per_library_waves = {name: lib.proof_waves() for name, lib in by_name.items()}
    depth = max((len(w) for w in per_library_waves.values()), default=0)
    waves: list[list[tuple[str, str]]] = []
    for level in range(depth):
        wave = [
            (name, lemma_name)
            for name, lib_waves in per_library_waves.items()
            if level < len(lib_waves)
            for lemma_name in lib_waves[level]
        ]
        waves.append(wave)

    _LIBRARIES.clear()
    _LIBRARIES.update(by_name)
    failed = False
    try:
        with ForkPool(_prove_one, jobs=jobs) as pool:
            for wave in waves:
                if failed and stop_on_failure:
                    break
                pending: list[tuple[str, str]] = []
                for library_name, lemma_name in wave:
                    library = by_name[library_name]
                    hit = None
                    if cache is not None:
                        hit = cache.get(
                            _cache_key(library, lemma_name),
                            library.lemma(lemma_name).fingerprint(),
                        )
                    if hit is not None:
                        reports[library_name].results.append(
                            ProofResult(
                                lemma=lemma_name,
                                proved=True,
                                cases_checked=hit["cases_checked"],
                            )
                        )
                    else:
                        pending.append((library_name, lemma_name))

                if pool.jobs <= 1 and stop_on_failure:
                    # Serial stop semantics: halt mid-wave at the first
                    # failure, exactly like the plain prove_all loop.
                    for item in pending:
                        result = _prove_one(item)
                        _record(reports, cache, by_name, item, result)
                        if not result.proved:
                            failed = True
                            break
                else:
                    for item, result in zip(pending, pool.map(pending)):
                        _record(reports, cache, by_name, item, result)
                        if not result.proved:
                            failed = True
    finally:
        _LIBRARIES.clear()

    for report in reports.values():
        report.sort()
    return reports


def _record(
    reports: dict[str, LibraryReport],
    cache: ProofCache | None,
    by_name: dict[str, LemmaLibrary],
    item: tuple[str, str],
    result: ProofResult,
) -> None:
    """Append ``result`` to its report and memoise it if it proved."""
    library_name, lemma_name = item
    reports[library_name].results.append(result)
    if cache is not None and result.proved:
        cache.put(
            _cache_key(by_name[library_name], lemma_name),
            by_name[library_name].lemma(lemma_name).fingerprint(),
            {"proved": True, "cases_checked": result.cases_checked},
        )
