"""Small-state TCP models for the E3 verification-effort experiment.

The paper verified "a simple in-order, reliable delivery property
assuming the network is initially empty" of a monolithic TCP, and
conjectured sublayering would make such verification easier because
"once a sublayer is proved, we can forget the details of a sublayer,
relying thereafter only on the postconditions of the lower layer".

These models make that comparison concrete and measurable:

* :class:`CmModel` — the handshake alone: two endpoints establish an
  ISN pair over a lossy, duplicating channel.  Its postcondition:
  *the ISNs agree and are fresh*.
* :class:`RdModel` — reliable delivery alone, *assuming* CM's
  postcondition (fresh sequence space, empty network): a sliding
  window with wrap-around sequence numbers over a lossy/duplicating/
  reordering channel.  Its postcondition: *exactly-once delivery of
  every offset with the right content*.
* :class:`OsrModel` — ordering alone, assuming RD's postcondition
  (exactly-once, arbitrary order): a reassembly buffer.  Its
  postcondition: *the application sees the stream in order*.
* :class:`MonolithicModel` — the paper's situation: handshake and
  windowed transfer glued together over one channel, verified as one
  machine.

The E3 benchmark checks all four and compares state counts: the sum of
the three sublayer checks against the monolithic product.  The models
also expose the classic pitfalls as *parameter choices that fail*:
``RdModel(window > seq_mod // 2)`` violates exactly-once (the
sequence-space wrap bug), and ``CmModel(stale_syns=True)`` violates
ISN agreement (the delayed-duplicate problem RFC 793's clock exists to
prevent) — each with a machine-found counterexample trace.
"""

from __future__ import annotations

from .modelcheck import Invariant, Model, channel_remove, channel_variants


# ======================================================================
# CM: handshake establishing an ISN pair
# ======================================================================
class CmModel(Model):
    """SYN / SYNACK / HSACK over a lossy, duplicating channel.

    State: (client_phase, client_isn, client_remote,
            server_phase, server_isn, server_remote,
            to_server, to_client)

    ISNs range over {0, 1}: two incarnations.  With ``stale_syns`` the
    adversary may inject a SYN from the *other* incarnation (a delayed
    duplicate from an old connection) — exactly the hazard the paper's
    CM discussion cites; ISN agreement then fails.
    """

    name = "cm-handshake"

    CLOSED, SYN_SENT, SYN_RCVD, ESTABLISHED = range(4)

    def __init__(self, capacity: int = 2, stale_syns: bool = False):
        self.capacity = capacity
        self.stale_syns = stale_syns

    def initial_states(self):
        yield (self.CLOSED, 0, None, self.CLOSED, 1, None, (), ())

    def actions(self, state):
        (cp, cisn, crem, sp, sisn, srem, to_s, to_c) = state
        out = []

        def pack(cp=cp, cisn=cisn, crem=crem, sp=sp, sisn=sisn, srem=srem,
                 to_s=to_s, to_c=to_c):
            return (cp, cisn, crem, sp, sisn, srem, to_s, to_c)

        # client sends / retransmits SYN
        if cp in (self.CLOSED, self.SYN_SENT):
            for label, ch in channel_variants(
                to_s, ("syn", cisn), self.capacity, duplicating=True
            ):
                out.append((f"c-syn-{label}", pack(cp=self.SYN_SENT, to_s=ch)))

        # adversary: a delayed SYN from the previous incarnation
        if self.stale_syns:
            stale_isn = 1 - cisn
            for label, ch in channel_variants(
                to_s, ("syn", stale_isn), self.capacity
            ):
                if label == "sent":
                    out.append(("stale-syn", pack(to_s=ch)))

        # server consumes messages
        for msg in set(to_s):
            rest = channel_remove(to_s, msg)
            kind = msg[0]
            if kind == "syn":
                # (re)answer; latch the first SYN's isn
                new_srem = srem if srem is not None else msg[1]
                if sp in (self.CLOSED, self.SYN_RCVD):
                    for label, ch in channel_variants(
                        to_c, ("synack", sisn, new_srem), self.capacity,
                        duplicating=True,
                    ):
                        out.append((
                            f"s-synack-{label}",
                            pack(sp=self.SYN_RCVD, srem=new_srem,
                                 to_s=rest, to_c=ch),
                        ))
                else:
                    out.append(("s-drop-syn", pack(to_s=rest)))
            elif kind == "hsack":
                if sp == self.SYN_RCVD and msg[1] == sisn:
                    out.append(("s-established", pack(sp=self.ESTABLISHED, to_s=rest)))
                else:
                    out.append(("s-drop-hsack", pack(to_s=rest)))

        # server retransmits SYNACK
        if sp == self.SYN_RCVD:
            for label, ch in channel_variants(
                to_c, ("synack", sisn, srem), self.capacity
            ):
                if label == "sent":
                    out.append(("s-resynack", pack(to_c=ch)))

        # client consumes messages
        for msg in set(to_c):
            rest = channel_remove(to_c, msg)
            if msg[0] == "synack":
                if cp == self.SYN_SENT and msg[2] == cisn:
                    for label, ch in channel_variants(
                        to_s, ("hsack", msg[1]), self.capacity, duplicating=True
                    ):
                        out.append((
                            f"c-established-{label}",
                            pack(cp=self.ESTABLISHED, crem=msg[1],
                                 to_c=rest, to_s=ch),
                        ))
                else:
                    out.append(("c-drop-synack", pack(to_c=rest)))
        return out

    @staticmethod
    def invariants() -> list[Invariant]:
        def isns_agree(state) -> bool:
            (cp, cisn, crem, sp, sisn, srem, _ts, _tc) = state
            if cp == CmModel.ESTABLISHED and sp == CmModel.ESTABLISHED:
                return crem == sisn and srem == cisn
            return True

        return [Invariant("established-isns-agree", isns_agree)]

    @staticmethod
    def freshness_invariants() -> list[Invariant]:
        """The stronger property ISN uniqueness exists to provide: the
        server only ever latches the *live* client's ISN.  With
        ``stale_syns=True`` (delayed duplicates from an earlier
        incarnation) this fails — the hazard RFC 793's clock-driven
        ISNs and RFC 1948's hashes are designed against."""

        def server_remote_isn_fresh(state) -> bool:
            (cp, cisn, _crem, sp, _sisn, srem, _ts, _tc) = state
            if sp != CmModel.CLOSED and srem is not None:
                return srem == cisn
            return True

        return CmModel.invariants() + [
            Invariant("server-remote-isn-fresh", server_remote_isn_fresh)
        ]


# ======================================================================
# RD: windowed exactly-once delivery with wrap-around sequence numbers
# ======================================================================
class RdModel(Model):
    """Sliding-window transfer of ``segments`` items, sequence numbers
    mod ``seq_mod``, assuming CM's postcondition (empty initial network,
    fresh sequence space).

    Messages carry (seq mod M, true_id).  The receiver reconstructs the
    offset from the wire seq by window reasoning; accepting a message
    whose true id differs from the reconstructed offset means stale
    data was delivered as fresh — the ``corrupted`` flag, our
    exactly-once/right-content violation.  The classic theorem shows
    up as a parameter boundary: the invariant holds iff
    ``window <= seq_mod - window`` (for cumulative acks, W <= M-1;
    for this selective receiver, W <= M/2).
    """

    name = "rd-transfer"

    def __init__(
        self,
        segments: int = 3,
        window: int = 1,
        seq_mod: int = 2,
        capacity: int = 2,
        duplicating: bool = True,
        stale_traffic: bool = False,
        fifo: bool = True,
    ):
        self.segments = segments
        self.window = window
        self.seq_mod = seq_mod
        self.capacity = capacity
        self.duplicating = duplicating
        #: FIFO channels bound reordering, the assumption under which
        #: the classic finite-sequence-space results hold (W <= M/2 for
        #: a selective receiver).  With ``fifo=False`` the channel is a
        #: multiset — unbounded reordering and duplicate lifetime — and
        #: *no* finite seq space is safe once the stream is long
        #: enough: the formal counterpart of why TCP needs a maximum
        #: segment lifetime plus CM's fresh-ISN guarantee.
        self.fifo = fifo
        #: Model the *absence* of CM's guarantee: the network may hold
        #: segments from an earlier connection incarnation.  RD alone
        #: cannot tell them from fresh data — "CM sets up RD by
        #: providing a range of sequence numbers not present in the
        #: network so that segments and acks can be trusted as not
        #: being delayed duplicates" (Section 3).  With this on, the
        #: exactly-once invariant has a machine-found counterexample.
        self.stale_traffic = stale_traffic

    STALE = -1  # true_id marker for old-incarnation segments

    def _push(self, channel: tuple, message) -> list[tuple[str, tuple]]:
        """Transmission outcomes on this model's channel discipline."""
        if self.fifo:
            variants = []
            if len(channel) < self.capacity:
                variants.append(("sent", channel + (message,)))
                if self.duplicating and len(channel) + 2 <= self.capacity:
                    variants.append(("duplicated", channel + (message, message)))
            variants.append(("lost", channel))
            return variants
        return channel_variants(
            channel, message, self.capacity, duplicating=self.duplicating
        )

    def _pops(self, channel: tuple) -> list[tuple[object, tuple]]:
        """(message, remaining-channel) receive choices."""
        if self.fifo:
            if not channel:
                return []
            return [(channel[0], channel[1:])]
        return [(m, channel_remove(channel, m)) for m in set(channel)]

    def initial_states(self):
        # (snd_base, rcv_nxt, rcv_ooo, corrupted, data_ch, ack_ch)
        yield (0, 0, (), False, (), ())

    def actions(self, state):
        base, rcv_nxt, ooo, corrupted, data_ch, ack_ch = state
        out = []

        def pack(base=base, rcv_nxt=rcv_nxt, ooo=ooo, corrupted=corrupted,
                 data_ch=data_ch, ack_ch=ack_ch):
            return (base, rcv_nxt, tuple(sorted(ooo)), corrupted, data_ch, ack_ch)

        # sender (re)transmits any unacked in-window offset
        for offset in range(base, min(base + self.window, self.segments)):
            message = ("d", offset % self.seq_mod, offset)
            for label, ch in self._push(data_ch, message):
                out.append((f"send-{offset}-{label}", pack(data_ch=ch)))

        # adversary: delayed duplicates from an earlier incarnation
        if self.stale_traffic:
            for wire_seq in range(self.seq_mod):
                message = ("d", wire_seq, self.STALE)
                for label, ch in self._push(data_ch, message):
                    if label == "sent":
                        out.append((f"stale-{wire_seq}", pack(data_ch=ch)))

        # receiver consumes a data message
        for msg, rest in self._pops(data_ch):
            _kind, wire_seq, true_id = msg
            # reconstruct: the unique in-window offset matching wire_seq
            candidates = [
                o
                for o in range(rcv_nxt, rcv_nxt + self.window)
                if o % self.seq_mod == wire_seq and o < self.segments
            ]
            if not candidates or candidates[0] in ooo:
                # duplicate or out-of-window: drop, re-ack
                for label, ch in self._push(ack_ch, ("a", rcv_nxt % self.seq_mod)):
                    if label != "duplicated":
                        out.append((f"reack-{label}", pack(data_ch=rest, ack_ch=ch)))
                continue
            offset = candidates[0]
            bad = corrupted or (true_id != offset)
            if offset == rcv_nxt:
                new_nxt = rcv_nxt + 1
                new_ooo = set(ooo)
                while new_nxt in new_ooo:
                    new_ooo.discard(new_nxt)
                    new_nxt += 1
            else:
                new_nxt = rcv_nxt
                new_ooo = set(ooo) | {offset}
            for label, ch in self._push(ack_ch, ("a", new_nxt % self.seq_mod)):
                out.append((
                    f"recv-{offset}-{label}",
                    pack(rcv_nxt=new_nxt, ooo=tuple(sorted(new_ooo)),
                         corrupted=bad, data_ch=rest, ack_ch=ch),
                ))

        # sender consumes an ack
        for msg, rest in self._pops(ack_ch):
            _kind, wire_ack = msg
            candidates = [
                b
                for b in range(base + 1, base + self.window + 1)
                if b % self.seq_mod == wire_ack and b <= self.segments
            ]
            if candidates:
                out.append((f"ack-{candidates[0]}", pack(base=candidates[0], ack_ch=rest)))
            else:
                out.append(("ack-stale", pack(ack_ch=rest)))
        return out

    def invariants(self) -> list[Invariant]:
        def exactly_once_right_content(state) -> bool:
            return not state[3]

        def no_phantom_progress(state) -> bool:
            return state[1] <= self.segments and state[0] <= self.segments

        return [
            Invariant("exactly-once-right-content", exactly_once_right_content),
            Invariant("no-phantom-progress", no_phantom_progress),
        ]


# ======================================================================
# OSR: reorder buffer over RD's exactly-once unordered service
# ======================================================================
class OsrModel(Model):
    """Reassembly of ``segments`` items delivered exactly once in an
    adversarial order (RD's postcondition as the assumption)."""

    name = "osr-reassembly"

    def __init__(self, segments: int = 3, buffer_limit: int | None = None):
        self.segments = segments
        self.buffer_limit = (
            buffer_limit if buffer_limit is not None else segments
        )

    def initial_states(self):
        # (undelivered frozenset-as-tuple, buffered, app_next)
        yield (tuple(range(self.segments)), (), 0)

    def actions(self, state):
        undelivered, buffered, app_next = state
        out = []
        for item in undelivered:
            rest = tuple(x for x in undelivered if x != item)
            if item == app_next:
                new_next = app_next + 1
                buf = set(buffered)
                while new_next in buf:
                    buf.discard(new_next)
                    new_next += 1
                out.append((
                    f"deliver-{item}",
                    (rest, tuple(sorted(buf)), new_next),
                ))
            else:
                buf = tuple(sorted(set(buffered) | {item}))
                out.append((f"buffer-{item}", (rest, buf, app_next)))
        return out

    def invariants(self) -> list[Invariant]:
        def in_order_stream(state) -> bool:
            _undelivered, buffered, app_next = state
            # the app saw exactly 0..app_next-1; nothing buffered below it
            return all(b > app_next for b in buffered)

        def buffer_bounded(state) -> bool:
            return len(state[1]) <= self.buffer_limit

        return [
            Invariant("in-order-stream", in_order_stream),
            Invariant("buffer-bounded", buffer_bounded),
        ]


# ======================================================================
# Monolithic: handshake + transfer in one machine (the Section 4.2 way)
# ======================================================================
class MonolithicModel(Model):
    """CM and RD glued into one transition system over one channel pair.

    The state couples handshake phases with transfer state, because
    that is exactly what the monolithic PCB does; verifying in-order
    delivery then requires exploring the product space.  Functionally
    it is CmModel followed by RdModel; the E3 benchmark's point is the
    state-count ratio against checking the sublayer models separately.
    """

    name = "monolithic-tcp"

    def __init__(
        self,
        segments: int = 3,
        window: int = 1,
        seq_mod: int = 2,
        capacity: int = 2,
        duplicating: bool = True,
    ):
        self.cm = CmModel(capacity=capacity)
        self.rd = RdModel(
            segments=segments,
            window=window,
            seq_mod=seq_mod,
            capacity=capacity,
            duplicating=duplicating,
        )
        self.segments = segments

    def initial_states(self):
        for cm_state in self.cm.initial_states():
            for rd_state in self.rd.initial_states():
                yield (cm_state, rd_state)

    def actions(self, state):
        cm_state, rd_state = state
        out = []
        # handshake actions are always available (retransmissions, stale
        # messages draining) — coupled into the product
        for label, cm_next in self.cm.actions(cm_state):
            out.append((f"cm:{label}", (cm_next, rd_state)))
        # data transfer only once both sides established — the coupling
        # between CM state and RD progress the paper complains about
        cp, sp = cm_state[0], cm_state[3]
        if cp == CmModel.ESTABLISHED and sp == CmModel.ESTABLISHED:
            for label, rd_next in self.rd.actions(rd_state):
                out.append((f"rd:{label}", (cm_state, rd_next)))
        return out

    def invariants(self) -> list[Invariant]:
        cm_invariants = CmModel.invariants()
        rd_invariants = self.rd.invariants()

        def lifted_cm(state) -> bool:
            return all(inv.check(state[0]) for inv in cm_invariants)

        def lifted_rd(state) -> bool:
            return all(inv.check(state[1]) for inv in rd_invariants)

        def no_data_before_established(state) -> bool:
            cm_state, rd_state = state
            cp, sp = cm_state[0], cm_state[3]
            if rd_state[0] > 0 or rd_state[1] > 0:
                return cp == CmModel.ESTABLISHED and sp == CmModel.ESTABLISHED
            return True

        return [
            Invariant("cm-postcondition", lifted_cm),
            Invariant("rd-postcondition", lifted_rd),
            Invariant("no-data-before-established", no_data_before_established),
        ]
