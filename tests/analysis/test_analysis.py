"""Tests for the analysis package (entanglement, offload, headers)."""

import pytest

from repro.analysis import (
    ISOMORPHISM_TABLE,
    MONOLITHIC_PARTITIONS,
    Partition,
    SUBLAYER_PARTITIONS,
    check_data_segment_roundtrip,
    coupling_matrix,
    entanglement_rows,
    entanglement_score,
    evaluate_partition,
    evaluate_partitions,
    footprints,
    isomorphism_report,
    native_fields_covered,
    rfc793_fields_covered,
)
from repro.core.instrument import AccessLog, InstrumentedState, acting_as

from ..transport.helpers import make_pair, transfer


def entangled_log():
    log = AccessLog()
    pcb = InstrumentedState("pcb", log=log)
    with acting_as("rd"):
        pcb.seq = 1
        pcb.window = 10
    with acting_as("cc"):
        _ = pcb.window
        pcb.window = 5
    with acting_as("flow"):
        pcb.rwnd = 3
    return log


class TestEntanglement:
    def test_footprints(self):
        prints = footprints(entangled_log())
        assert prints["rd"].writes == {("pcb", "seq"), ("pcb", "window")}
        assert prints["cc"].reads == {("pcb", "window")}

    def test_coupling_matrix(self):
        matrix = coupling_matrix(entangled_log())
        assert matrix[("cc", "rd")] == 1       # window
        assert matrix[("cc", "flow")] == 0

    def test_score_range(self):
        score = entanglement_score(entangled_log())
        assert 0.0 < score < 1.0

    def test_score_zero_for_single_actor(self):
        log = AccessLog()
        state = InstrumentedState("s", log=log)
        with acting_as("only"):
            state.x = 1
        assert entanglement_score(log) == 0.0

    def test_rows_shape(self):
        rows = entanglement_rows(entangled_log())
        by_name = {r["subfunction"]: r for r in rows}
        assert by_name["cc"]["fields_shared_with_others"] == 1
        assert by_name["flow"]["fields_shared_with_others"] == 0

    def test_sublayered_less_entangled_than_monolithic(self):
        """The A1 headline comparison on the real implementations."""
        sim, a, b, _ = make_pair("sub", "sub", loss=0.05)
        transfer(sim, a, b, nbytes=20_000)
        sub_score = entanglement_score(a.access_log, {"osr", "rd", "cm", "dm"})
        sim2, m, n, _ = make_pair("mono", "mono", loss=0.05)
        transfer(sim2, m, n, nbytes=20_000)
        mono_score = entanglement_score(m.access_log, {"pcb"})
        assert sub_score == 0.0
        assert mono_score > 0.05


class TestOffload:
    def test_partition_side(self):
        partition = Partition.of("x", {"rd"})
        assert partition.side("rd") == "hw"
        assert partition.side("osr") == "sw"

    def test_all_software_baseline(self):
        report = evaluate_partition(entangled_log(), Partition.of("none", set()))
        assert report.boundary_crossings == 0
        assert report.offload_fraction == 0.0

    def test_crossings_counted(self):
        # actors alternate rd(2 accesses), cc(2), flow(1)
        report = evaluate_partition(entangled_log(), Partition.of("x", {"cc"}))
        assert report.boundary_crossings == 2  # rd->cc, cc->flow

    def test_duplicated_state(self):
        report = evaluate_partition(entangled_log(), Partition.of("x", {"cc"}))
        assert ("pcb", "window") in report.duplicated_fields

    def test_row_keys(self):
        report = evaluate_partition(entangled_log(), Partition.of("x", {"cc"}))
        assert set(report.row()) == {
            "partition", "crossings", "duplicated_state_fields",
            "offload_fraction",
        }

    def test_sublayer_cuts_duplicate_no_state(self):
        """C6's shape: every sublayer-boundary cut is clean (T3), while
        every functional cut of the monolithic TCP mirrors PCB state."""
        sim, a, b, _ = make_pair("sub", "sub", loss=0.05)
        transfer(sim, a, b, nbytes=20_000)
        sub_reports = evaluate_partitions(
            a.access_log, SUBLAYER_PARTITIONS, {"osr", "rd", "cm", "dm"}
        )
        assert all(r.duplicated_state == 0 for r in sub_reports)

        sim2, m, n, _ = make_pair("mono", "mono", loss=0.05)
        transfer(sim2, m, n, nbytes=20_000)
        mono_reports = evaluate_partitions(
            m.access_log, MONOLITHIC_PARTITIONS, {"pcb"}
        )
        offloading = [r for r in mono_reports if r.partition.hardware]
        assert all(r.duplicated_state > 0 for r in offloading)


class TestHeaderIsomorphism:
    def test_every_native_field_audited(self):
        cover = native_fields_covered()
        missing = [name for name, ok in cover.items() if not ok]
        assert missing == []

    def test_every_rfc793_field_audited(self):
        cover = rfc793_fields_covered()
        missing = [name for name, ok in cover.items() if not ok]
        assert missing == []

    def test_behavioural_roundtrip(self):
        outcome = check_data_segment_roundtrip()
        assert all(outcome.values()), outcome

    def test_roundtrip_various_values(self):
        outcome = check_data_segment_roundtrip(
            sport=65535, dport=1, isn=2**32 - 10, ack_isn=0,
            offset=100, ack=0, wnd=0, payload=b"",
        )
        # zero-length payload: no data unit payload comparison issue
        assert outcome["ports"] and outcome["seq"] and outcome["window"]

    def test_report_aggregate(self):
        report = isomorphism_report()
        assert report["behavioural_roundtrip"]
        assert report["native_fields_audited"] == report["native_fields"]
        assert report["rfc793_fields_audited"] == report["rfc793_fields"]
        assert report["table_rows"] == len(ISOMORPHISM_TABLE)
