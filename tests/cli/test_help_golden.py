"""Golden ``--help`` tests for the seven CLIs, plus a docs-drift check.

The golden files pin each CLI's flag surface; ``docs/CLI.md`` must
mention every long flag the help output advertises.  Adding or
renaming a flag therefore forces both the golden file and the docs to
be updated in the same change.

Regenerate a golden after an intentional change with::

    COLUMNS=80 PYTHONPATH=src python -m repro.<cli> --help \
        > tests/cli/golden/<cli>.txt
"""

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
GOLDEN = Path(__file__).parent / "golden"
CLIS = ["verify", "faults", "obs", "staticcheck", "flow", "topo", "net"]


def run_help(module, *subcommand):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["COLUMNS"] = "80"  # argparse wraps to the terminal width
    proc = subprocess.run(
        [sys.executable, "-m", f"repro.{module}", *subcommand, "--help"],
        capture_output=True,
        text=True,
        cwd=REPO,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.fixture(scope="module")
def help_texts():
    return {module: run_help(module) for module in CLIS}


@pytest.mark.parametrize("module", CLIS)
def test_help_matches_golden(module, help_texts):
    golden = (GOLDEN / f"{module}.txt").read_text()
    assert help_texts[module] == golden, (
        f"--help for repro.{module} drifted from its golden; if the "
        f"change is intentional, regenerate tests/cli/golden/{module}.txt "
        f"and update docs/CLI.md"
    )


@pytest.mark.parametrize("module", CLIS)
def test_docs_mention_every_flag(module, help_texts):
    docs = (REPO / "docs" / "CLI.md").read_text()
    text = help_texts[module]
    if module == "obs":  # flags live on the subcommands
        text += "".join(
            run_help("obs", sub)
            for sub in ("summarize", "convert", "validate", "analyze")
        )
    if module == "topo":  # flags live on the subcommands
        text += "".join(
            run_help("topo", sub) for sub in ("run", "campaign", "flow")
        )
    if module == "net":  # flags live on the subcommands
        text += "".join(
            run_help("net", sub) for sub in ("serve", "load", "twin")
        )
    flags = set(re.findall(r"--[a-z][a-z-]*", text)) - {"--help"}
    assert flags, f"no flags parsed from repro.{module} --help"
    missing = sorted(flag for flag in flags if flag not in docs)
    assert not missing, (
        f"docs/CLI.md does not mention {missing} from repro.{module} --help"
    )


@pytest.mark.parametrize("module", CLIS)
def test_docs_mention_every_cli(module):
    docs = (REPO / "docs" / "CLI.md").read_text()
    assert f"python -m repro.{module}" in docs


def test_obs_subcommands_documented():
    docs = (REPO / "docs" / "CLI.md").read_text()
    for sub in ("summarize", "convert", "validate", "analyze"):
        assert sub in docs


def test_topo_subcommands_documented():
    docs = (REPO / "docs" / "CLI.md").read_text()
    for sub in ("run", "campaign", "flow"):
        assert f"repro.topo {sub}" in docs


def test_net_subcommands_documented():
    docs = (REPO / "docs" / "CLI.md").read_text()
    for sub in ("serve", "load", "twin"):
        assert f"repro.net {sub}" in docs
