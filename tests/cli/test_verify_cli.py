"""Tests for the ``python -m repro.verify`` CLI."""

import json
import os

import pytest

from repro.verify.__main__ import main, parse_rule

FORKING = os.name == "posix"


def run(tmp_path, name, *argv):
    out = tmp_path / f"{name}.json"
    status = main([*argv, "--out", str(out)])
    return status, out.read_bytes()


class TestVerifyCli:
    def test_jobs4_output_byte_identical_to_jobs1(self, tmp_path):
        if not FORKING:
            pytest.skip("fork-only")
        status1, serial = run(
            tmp_path, "serial", "--max-len", "5", "--jobs", "1"
        )
        status4, parallel = run(
            tmp_path, "parallel", "--max-len", "5", "--jobs", "4"
        )
        assert status1 == status4 == 0
        assert serial == parallel

    def test_report_shape(self, tmp_path):
        status, raw = run(tmp_path, "shape", "--max-len", "5", "--rule", "hdlc")
        report = json.loads(raw)
        assert status == 0
        assert report["proved"] is True
        assert report["max_len"] == 5
        assert len(report["libraries"]) == 1
        (library,) = report["libraries"].values()
        names = [result["lemma"] for result in library["results"]]
        assert names == sorted(names)

    def test_cache_stats_reported_and_warm_run_hits(self, tmp_path):
        cache_dir = tmp_path / "cache"
        args = (
            "--max-len", "5", "--rule", "hdlc",
            "--cache", "--cache-dir", str(cache_dir),
        )
        _, cold = run(tmp_path, "cold", *args)
        _, warm = run(tmp_path, "warm", *args)
        cold_stats = json.loads(cold)["cache"]
        warm_stats = json.loads(warm)["cache"]
        assert cold_stats["hits"] == 0
        assert warm_stats["misses"] == 0
        assert warm_stats["hits"] == warm_stats["entries"] > 0

    def test_invalid_rule_fails(self, tmp_path):
        # flag 0110 / trigger 11 / stuff 0 is a known-bad rule: the
        # stuffed bit can complete a flag with following data.
        status, raw = run(
            tmp_path, "broken", "--max-len", "6", "--rule", "0110:11:0"
        )
        report = json.loads(raw)
        assert status == 1
        assert report["proved"] is False
        failed = [
            result
            for library in report["libraries"].values()
            for result in library["results"]
            if not result["proved"]
        ]
        assert failed and all(
            result["counterexample"] for result in failed
        )


class TestParseRule:
    def test_named_rules(self):
        assert parse_rule("hdlc").label().startswith("flag=01111110")
        assert parse_rule("low-overhead").label().startswith("flag=00000010")

    def test_triple(self):
        rule = parse_rule("0110:11:0")
        assert rule.label() == "flag=0110 trigger=11 stuff=0"

    def test_garbage_rejected(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_rule("not-a-rule")
