"""StackBuilder, the profile registry, and the three construction sites."""

import pytest

from repro.compose import (
    SlotSpec,
    StackBuilder,
    StackProfile,
    available_profiles,
    get_profile,
    register_profile,
    validate_layer_order,
)
from repro.compose import builder as builder_module
from repro.core import ConfigurationError, PassthroughSublayer
from repro.core.clock import ManualClock


@pytest.fixture
def registry_snapshot():
    saved = dict(builder_module._PROFILES)
    yield
    builder_module._PROFILES.clear()
    builder_module._PROFILES.update(saved)


def passthrough_profile(name="pp", depth=2):
    return StackProfile(
        name=name,
        slots=tuple(
            SlotSpec(f"p{i}", lambda params, i=i: PassthroughSublayer(f"p{i}"))
            for i in range(depth)
        ),
        defaults={"knob": 1},
    )


class TestRegistry:
    def test_builtins_registered(self):
        assert {"hdlc", "wireless", "tcp", "quic"} <= set(available_profiles())

    def test_unknown_profile(self):
        with pytest.raises(ConfigurationError, match="unknown stack profile"):
            get_profile("doesnotexist")

    def test_duplicate_rejected_unless_replace(self, registry_snapshot):
        profile = passthrough_profile("dup-test")
        register_profile(profile)
        with pytest.raises(ConfigurationError, match="already registered"):
            register_profile(profile)
        register_profile(passthrough_profile("dup-test"), replace=True)

    def test_profile_validates_slots(self):
        with pytest.raises(ConfigurationError, match="no slots"):
            StackProfile(name="empty", slots=())
        slot = SlotSpec("a", lambda p: PassthroughSublayer("a"))
        with pytest.raises(ConfigurationError, match="duplicate slot"):
            StackProfile(name="twice", slots=(slot, slot))


class TestBuilder:
    def test_build_from_profile_object(self):
        stack = StackBuilder(passthrough_profile(), name="s").build()
        assert stack.order() == ["p0", "p1"]
        assert stack.tier == "full"

    def test_unknown_param_rejected(self):
        builder = StackBuilder(passthrough_profile(), name="s")
        with pytest.raises(ConfigurationError, match="no parameters"):
            builder.with_params(frobnicate=2)

    def test_unknown_slot_rejected(self):
        builder = StackBuilder(passthrough_profile(), name="s")
        with pytest.raises(ConfigurationError, match="no slot"):
            builder.with_replacement("p7", PassthroughSublayer("p7"))

    def test_replacement_instance_and_factory(self):
        profile = passthrough_profile()
        seen_params = {}

        def factory(params):
            seen_params.update(params)
            return PassthroughSublayer("custom1")

        stack = (
            StackBuilder(profile, name="s")
            .with_params(knob=5)
            .with_replacement("p0", PassthroughSublayer("custom0"))
            .with_replacement("p1", factory)
            .build()
        )
        assert stack.order() == ["custom0", "custom1"]
        assert seen_params == {"knob": 5}

    def test_replacement_none_empties_slot(self):
        stack = (
            StackBuilder(passthrough_profile(), name="s")
            .with_replacement("p0", None)
            .build()
        )
        assert stack.order() == ["p1"]

    def test_empty_stack_rejected(self):
        builder = StackBuilder(passthrough_profile(depth=1), name="s")
        builder.with_replacement("p0", None)
        with pytest.raises(ConfigurationError, match="empty stack"):
            builder.build()

    def test_bad_slot_result_rejected(self):
        profile = StackProfile(
            name="bad", slots=(SlotSpec("x", lambda p: 42),)
        )
        with pytest.raises(ConfigurationError, match="expected a Sublayer"):
            StackBuilder(profile, name="s").build()

    def test_threads_tier_clock_logs_metrics(self):
        from repro.core.instrument import AccessLog
        from repro.core.interface import InterfaceLog

        clock = ManualClock()
        access_log, interface_log = AccessLog(), InterfaceLog()

        class Sink:
            def inc(self, name, by=1):
                pass

        metrics = Sink()
        stack = StackBuilder(
            passthrough_profile(),
            name="s",
            clock=clock,
            access_log=access_log,
            interface_log=interface_log,
            metrics=metrics,
            tier="metrics",
            lossy_delivery=True,
        ).build()
        assert stack.clock is clock
        assert stack.tier == "metrics"
        assert stack.lossy_delivery is True
        assert stack.metrics is metrics
        # real logs are held for set_tier("full") even though the
        # metrics tier starts on the null implementations
        stack.set_tier("full")
        assert stack.access_log is access_log
        assert stack.interface_log is interface_log

    def test_with_tier(self):
        stack = (
            StackBuilder(passthrough_profile(), name="s")
            .with_tier("off")
            .build()
        )
        assert stack.tier == "off"


class TestInsertions:
    def test_insertion_before_and_after(self):
        stack = (
            StackBuilder(passthrough_profile(), name="s")
            .with_insertion("p0", PassthroughSublayer("above"), where="before")
            .with_insertion("p0", PassthroughSublayer("below"), where="after")
            .build()
        )
        assert stack.order() == ["above", "p0", "below", "p1"]

    def test_repeated_insertions_stack_in_call_order(self):
        stack = (
            StackBuilder(passthrough_profile(), name="s")
            .with_insertion("p1", PassthroughSublayer("first"), where="before")
            .with_insertion("p1", PassthroughSublayer("second"), where="before")
            .build()
        )
        assert stack.order() == ["p0", "first", "second", "p1"]

    def test_insertion_factory_sees_params(self):
        seen = {}

        def factory(params):
            seen.update(params)
            return PassthroughSublayer("extra")

        stack = (
            StackBuilder(passthrough_profile(), name="s")
            .with_params(knob=3)
            .with_insertion("p0", factory)
            .build()
        )
        assert stack.order() == ["p0", "extra", "p1"]
        assert seen == {"knob": 3}

    def test_insertion_list_value(self):
        stack = (
            StackBuilder(passthrough_profile(), name="s")
            .with_insertion(
                "p0",
                [PassthroughSublayer("x"), PassthroughSublayer("y")],
            )
            .build()
        )
        assert stack.order() == ["p0", "x", "y", "p1"]

    def test_insertion_unknown_slot(self):
        builder = StackBuilder(passthrough_profile(), name="s")
        with pytest.raises(ConfigurationError, match="no slot"):
            builder.with_insertion("p7", PassthroughSublayer("x"))

    def test_insertion_bad_where(self):
        builder = StackBuilder(passthrough_profile(), name="s")
        with pytest.raises(ConfigurationError, match="before.*after"):
            builder.with_insertion(
                "p0", PassthroughSublayer("x"), where="around"
            )

    def test_insertion_at_emptied_slot_still_lands(self):
        # The anchor slot realises to nothing (replacement None), but
        # its insertions keep their position in the order.
        stack = (
            StackBuilder(passthrough_profile(), name="s")
            .with_replacement("p0", None)
            .with_insertion("p0", PassthroughSublayer("extra"), where="after")
            .build()
        )
        assert stack.order() == ["extra", "p1"]

    def test_with_fault_requires_transparent(self):
        from repro.faults import DropFault

        builder = StackBuilder(passthrough_profile(), name="s")
        builder.with_fault(DropFault("f"), after="p0")
        stack = builder.build()
        assert stack.order() == ["p0", "f", "p1"]
        with pytest.raises(ConfigurationError, match="TRANSPARENT"):
            (
                StackBuilder(passthrough_profile(), name="s")
                .with_fault(PassthroughSublayer("opaque"), after="p0")
                .build()
            )

    def test_with_fault_exactly_one_anchor(self):
        from repro.faults import DropFault

        builder = StackBuilder(passthrough_profile(), name="s")
        with pytest.raises(ConfigurationError, match="exactly one"):
            builder.with_fault(DropFault("f"))
        with pytest.raises(ConfigurationError, match="exactly one"):
            builder.with_fault(DropFault("f"), before="p0", after="p1")
        with pytest.raises(ConfigurationError, match="no slot"):
            builder.with_fault(DropFault("f"), after="p9")

    @pytest.mark.parametrize("tier", ["full", "metrics", "off"])
    def test_inserted_stack_carries_data_at_every_tier(self, tier):
        from repro.faults import NoOpFault

        stack = (
            StackBuilder(passthrough_profile(), name="s")
            .with_tier(tier)
            .with_fault(NoOpFault("fault"), after="p0")
            .build()
        )
        wire = []
        stack.on_transmit = lambda unit, **meta: wire.append(unit)
        stack.send(b"x")
        assert wire == [b"x"]
        assert stack.tier == tier

    def test_extra_hop_counted_at_metrics_tier(self):
        def build(with_extra):
            builder = StackBuilder(
                passthrough_profile(), name="s", tier="metrics"
            )
            if with_extra:
                from repro.faults import NoOpFault

                builder.with_fault(NoOpFault("fault"), after="p0")
            stack = builder.build()
            stack.on_transmit = lambda unit, **meta: None
            stack.send(b"x")
            return stack.hop_counters.down

        assert build(with_extra=True) == build(with_extra=False) + 1


class TestLayerOrderValidation:
    def test_upside_down_stack_rejected(self):
        from repro.datalink.arq import GoBackNArq
        from repro.phys.sublayer import EncodingSublayer

        # encoding (phys, tier 1) above ARQ (datalink, tier 2): upside down
        with pytest.raises(ConfigurationError, match="layer order"):
            validate_layer_order(
                [EncodingSublayer("enc"), GoBackNArq("arq")]
            )

    def test_correct_order_and_foreign_sublayers_pass(self):
        from repro.datalink.arq import GoBackNArq
        from repro.phys.sublayer import EncodingSublayer

        class LocalSublayer(PassthroughSublayer):
            pass

        validate_layer_order(
            [GoBackNArq("arq"), LocalSublayer("x"), EncodingSublayer("enc")]
        )

    def test_builder_validates_at_build_time(self):
        from repro.datalink.arq import GoBackNArq
        from repro.phys.sublayer import EncodingSublayer

        profile = StackProfile(
            name="upside-down",
            slots=(
                SlotSpec("enc", lambda p: EncodingSublayer("enc")),
                SlotSpec("arq", lambda p: GoBackNArq("arq")),
            ),
        )
        with pytest.raises(ConfigurationError, match="layer order"):
            StackBuilder(profile, name="s").build()


class TestConstructionSites:
    def test_hdlc_profile_order(self):
        from repro.datalink.stacks import build_hdlc_stack

        stack = build_hdlc_stack("dl", ManualClock())
        assert stack.order() == [
            "recovery", "errordetect", "stuffing", "flags", "encoding",
        ]

    def test_hdlc_cobs_and_replacements(self):
        from repro.datalink.arq import SelectiveRepeatArq
        from repro.datalink.stacks import build_hdlc_stack

        stack = build_hdlc_stack(
            "dl",
            ManualClock(),
            framing="cobs",
            replacements={
                "arq": SelectiveRepeatArq("recovery", window=4),
            },
        )
        assert stack.order() == ["recovery", "errordetect", "framing", "encoding"]
        assert isinstance(stack.sublayer("recovery"), SelectiveRepeatArq)
        assert stack.sublayer("recovery").window == 4

    def test_hdlc_bad_knobs_still_raise(self):
        from repro.datalink.stacks import build_hdlc_stack

        with pytest.raises(ConfigurationError, match="ARQ"):
            build_hdlc_stack("dl", ManualClock(), arq="wishful")
        with pytest.raises(ConfigurationError, match="framing"):
            build_hdlc_stack("dl", ManualClock(), framing="magic")

    def test_tcp_host_builds_through_profile(self):
        from repro.transport import SublayeredTcpHost

        host = SublayeredTcpHost("h", ManualClock())
        assert host.stack.order() == ["osr", "rd", "cm", "dm"]

    def test_tcp_host_shim_and_tier(self):
        from repro.transport import Rfc793Shim, SublayeredTcpHost

        host = SublayeredTcpHost(
            "h", ManualClock(), shim=Rfc793Shim(), tier="off"
        )
        assert host.stack.order() == ["osr", "rd", "cm", "dm", "shim"]
        assert host.stack.tier == "off"
        assert host.stack.interface_log.crossings() == 0

    def test_tcp_host_replacements_kwarg(self):
        from repro.transport import SublayeredTcpHost
        from repro.transport.sublayered.cm_timer import TimerCmSublayer

        host = SublayeredTcpHost(
            "h",
            ManualClock(),
            replacements={"cm": TimerCmSublayer("cm", quiet_interval=9.0)},
        )
        cm = host.stack.sublayer("cm")
        assert isinstance(cm, TimerCmSublayer)
        assert cm.quiet_interval == 9.0

    def test_quic_host_builds_through_profile(self):
        from repro.transport.quic import QuicHost

        host = QuicHost("q", ManualClock(), tier="metrics")
        assert host.stack.order() == ["stream", "connection", "record", "dm"]
        assert host.stack.tier == "metrics"

    def test_wireless_station_builds_through_profile(self):
        from repro.datalink.stacks import build_wireless_station
        from repro.sim import Simulator
        from repro.sim.medium import BroadcastMedium

        sim = Simulator()
        medium = BroadcastMedium(sim, rate_bps=1_000_000)
        stack = build_wireless_station(sim, medium, address=3)
        assert stack.order() == [
            "mac", "errordetect", "stuffing", "flags", "encoding",
        ]
        assert stack.sublayer("mac").address == 3
