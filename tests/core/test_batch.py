"""The vector protocol: ``send_batch``/``receive_batch`` across tiers.

A batch must be *semantically* a loop over the scalar path — same
payloads, same order, same per-sublayer state — at every tier; what
changes is only the per-crossing bookkeeping cost (one counter bump per
batch at the metrics tier, one fused call at off).
"""

import pytest

from repro.core import PassthroughSublayer, Stack, Sublayer


class CountingSublayer(Sublayer):
    def on_attach(self):
        self.state.seen = 0

    def from_above(self, sdu, **meta):
        self.state.seen = self.state.seen + 1
        self.send_down(sdu, **meta)

    def from_below(self, pdu, **meta):
        self.state.seen = self.state.seen + 1
        self.deliver_up(pdu, **meta)


def build(tier, depth=3):
    stack = Stack(
        "b",
        [CountingSublayer(f"c{i}") for i in range(depth)],
        tier=tier,
    )
    sent = []
    stack.on_transmit = lambda sdu, **meta: sent.append((sdu, meta))
    delivered = []
    stack.on_deliver = lambda sdu, **meta: delivered.append((sdu, meta))
    return stack, sent, delivered


PAYLOADS = [b"a", b"b", b"c", b"d"]


@pytest.mark.parametrize("tier", ["full", "metrics", "off"])
def test_send_batch_equals_scalar_loop(tier):
    batch_stack, batch_sent, _ = build(tier)
    batch_stack.send_batch(PAYLOADS)
    loop_stack, loop_sent, _ = build(tier)
    for payload in PAYLOADS:
        loop_stack.send(payload)
    assert batch_sent == loop_sent
    for i in range(3):
        assert (
            batch_stack.sublayer(f"c{i}").state.seen
            == loop_stack.sublayer(f"c{i}").state.seen
            == len(PAYLOADS)
        )


@pytest.mark.parametrize("tier", ["full", "metrics", "off"])
def test_receive_batch_equals_scalar_loop(tier):
    batch_stack, _, batch_delivered = build(tier)
    batch_stack.receive_batch(PAYLOADS)
    loop_stack, _, loop_delivered = build(tier)
    for payload in PAYLOADS:
        loop_stack.receive(payload)
    assert batch_delivered == loop_delivered


@pytest.mark.parametrize("tier", ["full", "metrics", "off"])
def test_batch_metas_travel_with_their_units(tier):
    stack, sent, _ = build(tier)
    metas = [{"conn": i} for i in range(len(PAYLOADS))]
    stack.send_batch(PAYLOADS, metas)
    assert sent == [(p, {"conn": i}) for i, p in enumerate(PAYLOADS)]


def test_metrics_tier_counts_batch_crossings():
    stack, _, _ = build("metrics")
    stack.send_batch(PAYLOADS)
    # APP->c0, c0->c1, c1->c2, c2->WIRE: 4 crossings per unit.
    assert stack.hop_counters.down == 4 * len(PAYLOADS)
    stack.receive_batch(PAYLOADS)
    assert stack.hop_counters.up == 4 * len(PAYLOADS)


def test_metrics_tier_batch_counts_match_scalar_counts():
    batch_stack, _, _ = build("metrics")
    batch_stack.send_batch(PAYLOADS)
    loop_stack, _, _ = build("metrics")
    for payload in PAYLOADS:
        loop_stack.send(payload)
    assert batch_stack.hop_counters.down == loop_stack.hop_counters.down


def test_full_tier_batch_keeps_interface_log():
    batch_stack, _, _ = build("full")
    batch_stack.send_batch(PAYLOADS)
    loop_stack, _, _ = build("full")
    for payload in PAYLOADS:
        loop_stack.send(payload)
    assert (
        batch_stack.interface_log.records == loop_stack.interface_log.records
    )


def test_hop_latency_observes_batch_element_count():
    from repro.obs import Histogram

    stack, _, _ = build("metrics")
    hist = Histogram()
    stack.hop_latency = hist
    stack.send_batch(PAYLOADS)
    assert hist.count == len(PAYLOADS)


def test_batch_endpoint_sink_receives_whole_batch_at_off():
    stack = Stack(
        "b", [PassthroughSublayer(f"p{i}") for i in range(3)], tier="off"
    )
    batches = []
    stack.on_transmit = lambda sdu, **meta: None
    stack.on_transmit_batch = lambda units, metas=None: batches.append(
        (list(units), metas)
    )
    stack.send_batch(PAYLOADS)
    assert batches == [(PAYLOADS, None)]


def test_empty_batch_is_a_no_op():
    stack, sent, _ = build("metrics")
    stack.send_batch([])
    assert sent == []
    assert stack.hop_counters.down == 0
