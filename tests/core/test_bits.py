"""Tests for repro.core.bits."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bits import Bits, all_bitstrings, all_bitstrings_up_to

bit_lists = st.lists(st.integers(min_value=0, max_value=1), max_size=64)


class TestConstruction:
    def test_empty(self):
        assert len(Bits()) == 0
        assert Bits().to_string() == ""

    def test_from_iterable(self):
        assert list(Bits([1, 0, 1])) == [1, 0, 1]

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            Bits([0, 2])

    def test_from_string(self):
        assert Bits.from_string("0111 1110") == Bits([0, 1, 1, 1, 1, 1, 1, 0])

    def test_from_string_underscores(self):
        assert Bits.from_string("01_10") == Bits([0, 1, 1, 0])

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ValueError):
            Bits.from_string("012")

    def test_from_bytes_msb_first(self):
        assert Bits.from_bytes(b"\x80") == Bits.from_string("10000000")
        assert Bits.from_bytes(b"\x01") == Bits.from_string("00000001")

    def test_from_int(self):
        assert Bits.from_int(5, 4) == Bits.from_string("0101")

    def test_from_int_zero_width(self):
        assert Bits.from_int(0, 0) == Bits()

    def test_from_int_overflow(self):
        with pytest.raises(ValueError):
            Bits.from_int(16, 4)

    def test_from_int_negative(self):
        with pytest.raises(ValueError):
            Bits.from_int(-1, 4)

    def test_zeros_ones(self):
        assert Bits.zeros(3) == Bits.from_string("000")
        assert Bits.ones(3) == Bits.from_string("111")


class TestSequence:
    def test_indexing(self):
        b = Bits.from_string("0110")
        assert b[0] == 0
        assert b[1] == 1
        assert b[-1] == 0

    def test_slicing_returns_bits(self):
        b = Bits.from_string("011010")
        assert isinstance(b[1:4], Bits)
        assert b[1:4] == Bits.from_string("110")

    def test_concat(self):
        assert Bits.from_string("01") + Bits.from_string("10") == Bits.from_string("0110")

    def test_concat_with_list(self):
        assert Bits.from_string("01") + [1, 1] == Bits.from_string("0111")

    def test_repeat(self):
        assert Bits.from_string("01") * 3 == Bits.from_string("010101")

    def test_hashable(self):
        assert {Bits.from_string("01"): 1}[Bits.from_string("01")] == 1

    def test_equality_with_tuple(self):
        assert Bits([1, 0]) == (1, 0)


class TestConversions:
    def test_to_int(self):
        assert Bits.from_string("0101").to_int() == 5

    def test_to_int_empty(self):
        assert Bits().to_int() == 0

    def test_to_bytes_roundtrip(self):
        data = b"\x00\xff\x7e\x42"
        assert Bits.from_bytes(data).to_bytes() == data

    def test_to_bytes_unaligned_raises(self):
        with pytest.raises(ValueError):
            Bits.from_string("0101010").to_bytes()

    @given(st.binary(max_size=32))
    def test_bytes_roundtrip_property(self, data):
        assert Bits.from_bytes(data).to_bytes() == data

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_int_roundtrip_property(self, value):
        assert Bits.from_int(value, 16).to_int() == value


class TestPatterns:
    def test_find_present(self):
        assert Bits.from_string("0011100").find(Bits.from_string("111")) == 2

    def test_find_absent(self):
        assert Bits.from_string("0000").find(Bits.from_string("1")) == -1

    def test_find_with_start(self):
        b = Bits.from_string("101101")
        assert b.find(Bits.from_string("1"), start=1) == 2

    def test_find_empty_pattern(self):
        assert Bits.from_string("01").find(Bits()) == 0

    def test_count_overlapping(self):
        assert Bits.from_string("1111").count_overlapping(Bits.from_string("11")) == 3

    def test_contains(self):
        assert Bits.from_string("0110").contains(Bits.from_string("11"))
        assert not Bits.from_string("0100").contains(Bits.from_string("11"))

    def test_startswith_endswith(self):
        b = Bits.from_string("0110")
        assert b.startswith(Bits.from_string("01"))
        assert b.endswith(Bits.from_string("10"))
        assert b.endswith(Bits())

    @given(bit_lists, bit_lists)
    def test_find_agrees_with_string_find(self, hay, needle):
        h, n = Bits(hay), Bits(needle)
        if len(n) == 0:
            return
        assert h.find(n) == h.to_string().find(n.to_string())


class TestEnumeration:
    def test_all_bitstrings_count(self):
        assert len(list(all_bitstrings(3))) == 8

    def test_all_bitstrings_zero_length(self):
        assert list(all_bitstrings(0)) == [Bits()]

    def test_all_bitstrings_unique(self):
        strings = list(all_bitstrings(4))
        assert len(set(strings)) == 16

    def test_all_bitstrings_up_to(self):
        # 1 + 2 + 4 + 8 = 15 strings of length <= 3
        assert len(list(all_bitstrings_up_to(3))) == 15

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            list(all_bitstrings(-1))
