"""Tests for repro.core.clock."""

import pytest

from repro.core.clock import Clock, ManualClock


class TestManualClock:
    def test_starts_at_zero(self):
        assert ManualClock().now() == 0.0

    def test_custom_start(self):
        assert ManualClock(5.0).now() == 5.0

    def test_advance_moves_time(self):
        clock = ManualClock()
        clock.advance(2.5)
        assert clock.now() == 2.5

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            ManualClock().call_later(-1, lambda: None)

    def test_callback_fires_at_time(self):
        clock = ManualClock()
        fired = []
        clock.call_later(1.0, lambda: fired.append(clock.now()))
        clock.advance(0.5)
        assert fired == []
        clock.advance(0.5)
        assert fired == [1.0]

    def test_callbacks_fire_in_order(self):
        clock = ManualClock()
        order = []
        clock.call_later(2.0, lambda: order.append("b"))
        clock.call_later(1.0, lambda: order.append("a"))
        clock.advance(3.0)
        assert order == ["a", "b"]

    def test_ties_fire_in_schedule_order(self):
        clock = ManualClock()
        order = []
        clock.call_later(1.0, lambda: order.append("first"))
        clock.call_later(1.0, lambda: order.append("second"))
        clock.advance(1.0)
        assert order == ["first", "second"]

    def test_cancel(self):
        clock = ManualClock()
        fired = []
        handle = clock.call_later(1.0, lambda: fired.append(1))
        handle.cancel()
        clock.advance(2.0)
        assert fired == []
        assert handle.cancelled

    def test_callback_can_schedule_more(self):
        clock = ManualClock()
        fired = []

        def first():
            fired.append("first")
            clock.call_later(1.0, lambda: fired.append("second"))

        clock.call_later(1.0, first)
        clock.advance(2.0)
        assert fired == ["first", "second"]

    def test_run_until_idle(self):
        clock = ManualClock()
        fired = []
        clock.call_later(5.0, lambda: fired.append(1))
        clock.run_until_idle()
        assert fired == [1]
        assert clock.now() == 5.0

    def test_pending_count(self):
        clock = ManualClock()
        h1 = clock.call_later(1.0, lambda: None)
        clock.call_later(2.0, lambda: None)
        assert clock.pending == 2
        h1.cancel()
        assert clock.pending == 1

    def test_satisfies_clock_protocol(self):
        assert isinstance(ManualClock(), Clock)

    def test_advance_sets_now_during_callback(self):
        clock = ManualClock()
        seen = []
        clock.call_later(1.5, lambda: seen.append(clock.now()))
        clock.advance(10.0)
        assert seen == [1.5]
        assert clock.now() == 10.0
