"""Fungibility coverage: every concrete Sublayer subclass must
``clone_fresh()`` back to its constructor configuration.

``Stack.replace()`` rebuilds every *untouched* sublayer via
``clone_fresh``; a subclass that forgets to override it (or overrides
it and drops a parameter) silently resets configuration in the middle
of a fungibility experiment.  This test discovers every subclass in the
package — new sublayers cannot opt out — builds each with deliberately
non-default configuration, and checks the clone preserves it.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import random

import pytest

import repro
from repro.core.bits import Bits
from repro.core.sublayer import Sublayer


def all_sublayer_classes() -> list[type[Sublayer]]:
    for module in pkgutil.walk_packages(repro.__path__, "repro."):
        importlib.import_module(module.name)
    found: list[type[Sublayer]] = []

    def walk(cls: type) -> None:
        for sub in cls.__subclasses__():
            if sub.__module__.startswith("repro.") and sub not in found:
                found.append(sub)
                walk(sub)

    walk(Sublayer)
    return sorted(found, key=lambda c: (c.__module__, c.__name__))


#: Framework base classes: not meant to be composed directly, their
#: concrete subclasses are tested instead.
BASE_CLASSES = {
    "ArqSublayerBase",
    "MacSublayerBase",
    "ShimSublayer",
    "FaultSublayer",
}


def build_cases() -> dict[type[Sublayer], Sublayer]:
    """One deliberately non-default instance per concrete subclass."""
    from repro.core.shim import IdentityShim
    from repro.core.sublayer import PassthroughSublayer
    from repro.datalink.arq import (
        GoBackNArq,
        NullArq,
        SelectiveRepeatArq,
        StopAndWaitArq,
    )
    from repro.datalink.errordetect import ErrorDetectSublayer, ParityByte
    from repro.datalink.framing.cobs import CobsFramingSublayer
    from repro.datalink.framing.rules import prefix_rule
    from repro.datalink.framing.sublayers import FlagSublayer, StuffingSublayer
    from repro.datalink.mac import ChannelView, CsmaMac, PureAlohaMac
    from repro.faults.schedule import FaultSchedule
    from repro.faults.sublayers import (
        CorruptBitsFault,
        DelayFault,
        DropFault,
        DuplicateFault,
        NoOpFault,
        ReorderFault,
        StallFault,
        TruncateFault,
    )
    from repro.phys.encodings import Manchester
    from repro.phys.sublayer import EncodingSublayer
    from repro.transport.isn import TimerIsn
    from repro.transport.quic.connection import ConnectionSublayer
    from repro.transport.quic.record import RecordSublayer
    from repro.transport.quic.stream import StreamSublayer
    from repro.transport.sublayered.cm import CmSublayer
    from repro.transport.sublayered.cm_timer import TimerCmSublayer
    from repro.transport.sublayered.dm import DmSublayer
    from repro.transport.sublayered.osr import OsrSublayer
    from repro.transport.sublayered.rd import RdSublayer
    from repro.transport.sublayered.shim import Rfc793Shim

    rule = prefix_rule(Bits.from_string("01111100"), 4)
    channel = ChannelView(lambda: False)
    rng = random.Random(99)

    def cc_factory(mss: int) -> None:  # shared sentinel, never invoked
        raise AssertionError("cc_factory should not run at construction")

    isn = TimerIsn(max_segment_lifetime=2.5)
    fault_schedule = FaultSchedule(probability=0.3, start_unit=2, every=3)
    fault_rng = random.Random(17)

    instances = [
        NoOpFault("fnoop", schedule=fault_schedule, rng=fault_rng, direction="up"),
        DropFault("fdrop", schedule=fault_schedule, rng=fault_rng, direction="both"),
        DuplicateFault(
            "fdup", schedule=fault_schedule, rng=fault_rng, direction="up"
        ),
        ReorderFault(
            "fre", schedule=fault_schedule, rng=fault_rng,
            direction="both", max_hold=0.2,
        ),
        CorruptBitsFault(
            "fcor", schedule=fault_schedule, rng=fault_rng,
            direction="up", flips=5,
        ),
        TruncateFault(
            "ftru", schedule=fault_schedule, rng=fault_rng,
            direction="both", keep=0.25,
        ),
        DelayFault(
            "fdel", schedule=fault_schedule, rng=fault_rng,
            direction="up", delay=0.15, jitter=0.05,
        ),
        StallFault(
            "fsta", schedule=fault_schedule, rng=fault_rng,
            direction="both", blackhole=True,
        ),
        PassthroughSublayer("pt"),
        IdentityShim("idshim"),
        Rfc793Shim("rfcshim"),
        CobsFramingSublayer("cobs"),
        NullArq("null-arq"),
        StopAndWaitArq("saw", retransmit_timeout=0.55, max_retries=7),
        GoBackNArq("gbn", retransmit_timeout=0.45, max_retries=9, window=5),
        SelectiveRepeatArq("sr", retransmit_timeout=0.35, max_retries=11, window=6),
        ErrorDetectSublayer("ed", ParityByte()),
        StuffingSublayer("st", rule),
        FlagSublayer("fl", rule, stream_mode=True),
        CsmaMac(
            "csma", address=7, channel=channel,
            max_attempts=3, base_backoff=0.05, rng=rng,
        ),
        PureAlohaMac(
            "aloha", address=9, channel=channel,
            max_attempts=4, base_backoff=0.07, rng=rng,
        ),
        EncodingSublayer("enc", Manchester()),
        StreamSublayer("strm", max_frame_data=512),
        ConnectionSublayer(
            "conn", mtu=900, rto_initial=0.4, rto_max=4.0,
            max_handshake_retries=3, cc_factory=cc_factory, rng=rng,
        ),
        RecordSublayer("rec"),
        CmSublayer("cm", isn_scheme=isn, handshake_timeout=0.7, max_retries=4),
        TimerCmSublayer(
            "tcm", isn_scheme=isn, handshake_timeout=0.8,
            max_retries=5, quiet_interval=12.0,
        ),
        DmSublayer("dm"),
        OsrSublayer(
            "osr", mss=512, recv_buffer=4096,
            cc_factory=cc_factory, probe_interval=0.9,
        ),
        RdSublayer(
            "rd", rto_initial=0.5, rto_min=0.1, rto_max=5.0,
            dupack_threshold=4, sack_enabled=False,
        ),
    ]
    return {type(instance): instance for instance in instances}


CONCRETE = [c for c in all_sublayer_classes() if c.__name__ not in BASE_CLASSES]
CASES = build_cases()

#: Wiring attributes installed by Stack._wire, not constructor config.
WIRING_ATTRS = {"state", "below", "clock", "metrics", "notifications", "stack_name"}


def test_every_concrete_sublayer_has_a_case():
    missing = [c.__name__ for c in CONCRETE if c not in CASES]
    assert not missing, (
        f"no clone_fresh case for {missing}: add a non-default instance "
        "to build_cases() so the fungibility contract stays covered"
    )


@pytest.mark.parametrize("cls", CONCRETE, ids=lambda c: c.__name__)
def test_clone_fresh_preserves_constructor_config(cls):
    original = CASES[cls]
    clone = original.clone_fresh()
    assert type(clone) is cls, (
        f"{cls.__name__}.clone_fresh() produced a {type(clone).__name__}"
    )
    assert clone.name == original.name

    # every constructor parameter stored under its own name must survive
    params = [
        p for p in inspect.signature(cls.__init__).parameters if p != "self"
    ]
    for param in params:
        if not hasattr(original, param):
            continue
        expected = getattr(original, param)
        got = getattr(clone, param, "<missing>")
        assert got is expected or got == expected, (
            f"{cls.__name__}.clone_fresh() dropped {param!r}: "
            f"{expected!r} -> {got!r}"
        )

    # ... and so must every other public attribute set at construction
    for key, expected in vars(original).items():
        if key.startswith("_") or key in WIRING_ATTRS:
            continue
        got = vars(clone).get(key, "<missing>")
        assert got is expected or got == expected, (
            f"{cls.__name__}.clone_fresh() changed {key!r}: "
            f"{expected!r} -> {got!r}"
        )
