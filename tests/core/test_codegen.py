"""The tier=off fused codegen fast path.

Contract under test:

* at ``tier=off`` with no observers, both directions fuse into one
  exec-compiled function and the plan records the generated source;
* any per-element observer (tap, span hook), any other tier, or an
  opted-out sublayer falls the direction back to the chain walk;
* the fused path is *semantically invisible*: payloads, drops,
  per-sublayer state counters, and meta handling match the chain walk
  exactly (the stack-level differential rig extends this to whole
  profiles);
* ``REPRO_CODEGEN=0`` and ``Stack.codegen_enabled`` are kill switches.
"""

import pytest

from repro.core import ConfigurationError, PassthroughSublayer, Stack, Sublayer
from repro.core.codegen import DROP, IDENTITY, compile_fused, fuse_steps


class SuffixSublayer(Sublayer):
    """Appends a byte downward, strips it upward — stateful transform."""

    def on_attach(self):
        self.state.down = 0
        self.state.up = 0

    def from_above(self, sdu, **meta):
        self.state.down = self.state.down + 1
        self.send_down(sdu + b"!", **meta)

    def from_below(self, pdu, **meta):
        self.state.up = self.state.up + 1
        self.deliver_up(pdu[:-1], **meta)

    def fuse_down(self):
        state = self.state

        def step(sdu, meta):
            state.down = state.down + 1
            return sdu + b"!"
        return step

    def fuse_up(self):
        state = self.state

        def step(pdu, meta):
            state.up = state.up + 1
            return pdu[:-1]
        return step


class DropOddSublayer(Sublayer):
    """Silently drops payloads whose first byte is odd (downward)."""

    def from_above(self, sdu, **meta):
        if sdu[0] % 2:
            return
        self.send_down(sdu, **meta)

    def from_below(self, pdu, **meta):
        self.deliver_up(pdu, **meta)

    def fuse_down(self):
        def step(sdu, meta):
            return DROP if sdu[0] % 2 else sdu
        return step

    def fuse_up(self):
        return IDENTITY


class TagSublayer(Sublayer):
    """Writes a meta key on the way down — exercises ``writes_meta``."""

    def from_above(self, sdu, **meta):
        meta["tag"] = "set"
        self.send_down(sdu, **meta)

    def from_below(self, pdu, **meta):
        self.deliver_up(pdu, **meta)

    def fuse_down(self):
        def step(sdu, meta):
            meta["tag"] = "set"
            return sdu
        step.writes_meta = True
        return step

    def fuse_up(self):
        return IDENTITY


def fused_stack(sublayers=None, tier="off", **kwargs):
    stack = Stack(
        "cg",
        sublayers
        if sublayers is not None
        else [PassthroughSublayer(f"p{i}") for i in range(4)],
        tier=tier,
        **kwargs,
    )
    sent = []
    stack.on_transmit = lambda sdu, **meta: sent.append((sdu, meta))
    return stack, sent


# ----------------------------------------------------------------------
# When fusion engages
# ----------------------------------------------------------------------
def test_off_tier_fuses_both_directions():
    stack, _ = fused_stack()
    assert stack.wiring_plan.fused == {"down": True, "up": True}
    source = stack.wiring_plan.codegen_source["down"]
    assert source is not None and "def push" in source


@pytest.mark.parametrize("tier", ["full", "metrics"])
def test_other_tiers_never_fuse(tier):
    stack, _ = fused_stack(tier=tier)
    assert stack.wiring_plan.fused == {"down": False, "up": False}


def test_opted_out_sublayer_falls_back_per_direction():
    class UpOnly(PassthroughSublayer):
        # fuse_down is inherited (guarded IDENTITY); opting out of the
        # up direction must not disturb the down direction.
        def fuse_up(self):
            return None

    stack, sent = fused_stack([PassthroughSublayer("p0"), UpOnly("u")])
    assert stack.wiring_plan.fused == {"down": True, "up": False}
    stack.send(b"x")
    assert [sdu for sdu, _ in sent] == [b"x"]


def test_tap_attach_and_detach_recompile():
    stack, sent = fused_stack()
    tap_log = []
    stack.taps.append(lambda *args: tap_log.append(args))
    assert stack.wiring_plan.fused == {"down": False, "up": False}
    stack.send(b"x")
    assert tap_log  # the tap really runs on the fallback path
    stack.taps.pop()
    assert stack.wiring_plan.fused == {"down": True, "up": True}


def test_span_hook_forces_fallback():
    stack, _ = fused_stack()
    stack.span_hook = lambda direction, caller, provider, sdu, meta: None
    assert stack.wiring_plan.fused == {"down": False, "up": False}
    stack.span_hook = None
    assert stack.wiring_plan.fused == {"down": True, "up": True}


def test_codegen_enabled_toggle():
    stack, sent = fused_stack()
    stack.codegen_enabled = False
    assert stack.wiring_plan.fused == {"down": False, "up": False}
    stack.send(b"x")
    assert [sdu for sdu, _ in sent] == [b"x"]
    stack.codegen_enabled = True
    assert stack.wiring_plan.fused == {"down": True, "up": True}


def test_repro_codegen_env_kill_switch(monkeypatch):
    monkeypatch.setenv("REPRO_CODEGEN", "0")
    stack, _ = fused_stack()
    assert not stack.codegen_enabled
    assert stack.wiring_plan.fused == {"down": False, "up": False}


def test_insert_recompiles_and_refuses():
    stack, _ = fused_stack()

    class OptOut(Sublayer):
        def from_above(self, sdu, **meta):
            self.send_down(sdu, **meta)

        def from_below(self, pdu, **meta):
            self.deliver_up(pdu, **meta)

    stack.insert("p2", OptOut("opt-out"))
    assert stack.wiring_plan.fused == {"down": False, "up": False}


def test_passthrough_subclass_overriding_scalar_opts_out():
    class Local(PassthroughSublayer):
        def from_above(self, sdu, **meta):
            self.send_down(sdu + b"?", **meta)

    stack, sent = fused_stack([Local("l")])
    # Inheriting IDENTITY here would silently skip the override.
    assert stack.wiring_plan.fused["down"] is False
    stack.send(b"x")
    assert [sdu for sdu, _ in sent] == [b"x?"]


# ----------------------------------------------------------------------
# Semantic equivalence with the chain walk
# ----------------------------------------------------------------------
def transform_chain():
    return [SuffixSublayer("s0"), DropOddSublayer("d"), SuffixSublayer("s1")]


def payloads():
    return [bytes([i, i + 1]) for i in range(8)]


def run_down(codegen):
    stack, sent = fused_stack(transform_chain())
    stack.codegen_enabled = codegen
    for payload in payloads():
        stack.send(payload)
    counters = {
        name: (stack.sublayer(name).state.down, stack.sublayer(name).state.up)
        for name in ("s0", "s1")
    }
    return [sdu for sdu, _ in sent], counters


def test_fused_down_matches_chain_walk():
    fused_out, fused_counters = run_down(codegen=True)
    chain_out, chain_counters = run_down(codegen=False)
    assert fused_out == chain_out
    assert fused_counters == chain_counters
    # the drop really dropped something, so the equality is not vacuous
    assert len(fused_out) < len(payloads())


def test_fused_up_matches_chain_walk():
    def run(codegen):
        stack = Stack("cg", transform_chain(), tier="off")
        stack.codegen_enabled = codegen
        stack.on_transmit = lambda sdu, **meta: None
        got = []
        stack.on_deliver = lambda sdu, **meta: got.append(sdu)
        for payload in payloads():
            stack.receive(payload + b"!!")
        return got

    assert run(codegen=True) == run(codegen=False)


def test_batch_form_matches_scalar_form():
    stack, sent = fused_stack(transform_chain())
    assert stack.wiring_plan.fused["down"] is True
    stack.send_batch(payloads())
    batch_out = [sdu for sdu, _ in sent]
    scalar_out, _ = run_down(codegen=True)
    assert batch_out == scalar_out


def test_writes_meta_does_not_mutate_caller_dicts():
    stack, sent = fused_stack([TagSublayer("t")])
    assert stack.wiring_plan.fused["down"] is True
    metas = [{"k": 1}, {"k": 2}]
    stack.send_batch([b"a", b"b"], metas)
    assert [meta["tag"] for _, meta in sent] == ["set", "set"]
    assert metas == [{"k": 1}, {"k": 2}]


def test_scalar_meta_passes_through_fused_path():
    stack, sent = fused_stack()
    stack.send(b"x", conn=7)
    assert sent == [(b"x", {"conn": 7})]


# ----------------------------------------------------------------------
# The generated code itself
# ----------------------------------------------------------------------
def test_identity_steps_are_eliminated():
    steps = fuse_steps([PassthroughSublayer(f"p{i}") for i in range(3)], "down")
    assert steps == [IDENTITY, IDENTITY, IDENTITY]
    fused = compile_fused(steps, "down", "x", sink=lambda sdu, **meta: None)
    assert "_s0" not in fused.source


def test_pure_passthrough_with_batch_sink_is_one_call():
    batches = []
    fused = compile_fused(
        [IDENTITY],
        "down",
        "x",
        sink=lambda sdu, **meta: None,
        batch_sink=lambda sdus, metas: batches.append((list(sdus), metas)),
    )
    assert "for " not in fused.source.split("def push_batch")[1]
    fused.batch([b"a", b"b"], None)
    assert batches == [([b"a", b"b"], None)]


def test_fuse_steps_all_or_nothing():
    class OptOut(Sublayer):
        def from_above(self, sdu, **meta):
            self.send_down(sdu, **meta)

        def from_below(self, pdu, **meta):
            self.deliver_up(pdu, **meta)

    assert fuse_steps([PassthroughSublayer("p"), OptOut("o")], "down") is None


def test_drop_short_circuits_generated_code():
    hits = []

    def dropper(sdu, meta):
        return DROP

    def never(sdu, meta):  # pragma: no cover - must not run
        hits.append(sdu)
        return sdu

    fused = compile_fused(
        [dropper, never], "down", "x", sink=lambda sdu, **meta: hits.append(sdu)
    )
    fused.scalar(b"x")
    fused.batch([b"a", b"b"], None)
    assert hits == []


def test_replace_preserves_codegen_configuration():
    stack, _ = fused_stack()
    stack.codegen_enabled = False
    twin = stack.replace("p1", PassthroughSublayer("p1"))
    twin.on_transmit = lambda sdu, **meta: None
    assert not twin.codegen_enabled
    assert twin.wiring_plan.fused == {"down": False, "up": False}


def test_unattached_batch_crossing_raises():
    orphan = PassthroughSublayer("orphan")
    with pytest.raises(ConfigurationError):
        orphan.send_down_batch([b"x"])
    with pytest.raises(ConfigurationError):
        orphan.deliver_up_batch([b"x"])
