"""Tests for repro.core.contracts."""

import pytest

from repro.core.contracts import (
    ByteStreamIntegrity,
    ContractMonitor,
    ExactlyOnceDelivery,
    InOrderDelivery,
    LocalizationReport,
    NoCorruption,
    Observation,
    evaluate_contracts,
)
from repro.core.errors import ConfigurationError, ContractViolation
from repro.core.stack import APP, Stack
from repro.core.sublayer import PassthroughSublayer


class TestExactlyOnce:
    def test_holds(self):
        obs = Observation(sent=[1, 2, 3], delivered=[3, 1, 2])
        assert ExactlyOnceDelivery("rd").evaluate(obs) == []

    def test_duplicate_detected(self):
        obs = Observation(sent=[1], delivered=[1, 1])
        violations = ExactlyOnceDelivery("rd").evaluate(obs)
        assert any("delivered 2 times" in v for v in violations)

    def test_loss_detected(self):
        obs = Observation(sent=[1, 2], delivered=[1])
        violations = ExactlyOnceDelivery("rd").evaluate(obs)
        assert any("never delivered" in v for v in violations)

    def test_phantom_detected(self):
        obs = Observation(sent=[1], delivered=[1, 9])
        violations = ExactlyOnceDelivery("rd").evaluate(obs)
        assert any("never sent" in v for v in violations)

    def test_custom_key(self):
        obs = Observation(
            sent=[{"id": 1, "x": "a"}], delivered=[{"id": 1, "x": "b"}]
        )
        contract = ExactlyOnceDelivery("rd", key=lambda s: s["id"])
        assert contract.evaluate(obs) == []

    def test_enforce_raises_named_violation(self):
        obs = Observation(sent=[1], delivered=[])
        with pytest.raises(ContractViolation) as excinfo:
            ExactlyOnceDelivery("rd").enforce(obs)
        assert excinfo.value.sublayer == "rd"


class TestInOrder:
    def test_holds(self):
        obs = Observation(sent=["a", "b", "c"], delivered=["a", "b", "c"])
        assert InOrderDelivery("osr").evaluate(obs) == []

    def test_reorder_detected(self):
        obs = Observation(sent=["a", "b"], delivered=["b", "a"])
        violations = InOrderDelivery("osr").evaluate(obs)
        assert any("out of order" in v for v in violations)

    def test_gap_is_not_reorder(self):
        obs = Observation(sent=["a", "b", "c"], delivered=["a", "c"])
        assert InOrderDelivery("osr").evaluate(obs) == []

    def test_unknown_item(self):
        obs = Observation(sent=["a"], delivered=["z"])
        violations = InOrderDelivery("osr").evaluate(obs)
        assert any("unknown" in v for v in violations)


class TestByteStream:
    def test_exact_match(self):
        obs = Observation(sent=[b"hello ", b"world"], delivered=[b"hello world"])
        assert ByteStreamIntegrity("osr").evaluate(obs) == []

    def test_chunking_irrelevant(self):
        obs = Observation(sent=[b"hel", b"lo"], delivered=[b"h", b"ell", b"o"])
        assert ByteStreamIntegrity("osr").evaluate(obs) == []

    def test_divergence_detected(self):
        obs = Observation(sent=[b"abc"], delivered=[b"abx"])
        violations = ByteStreamIntegrity("osr").evaluate(obs)
        assert any("diverges" in v and "byte 2" in v for v in violations)

    def test_incomplete_detected(self):
        obs = Observation(sent=[b"abc"], delivered=[b"ab"])
        violations = ByteStreamIntegrity("osr").evaluate(obs)
        assert any("delivered only 2 of 3" in v for v in violations)

    def test_incomplete_allowed_when_partial_ok(self):
        obs = Observation(sent=[b"abc"], delivered=[b"ab"])
        contract = ByteStreamIntegrity("osr", require_complete=False)
        assert contract.evaluate(obs) == []


class TestNoCorruption:
    def test_holds(self):
        obs = Observation(sent=[b"x", b"y"], delivered=[b"y"])
        assert NoCorruption("errordetect").evaluate(obs) == []

    def test_corruption_detected(self):
        obs = Observation(sent=[b"x"], delivered=[b"z"])
        violations = NoCorruption("errordetect").evaluate(obs)
        assert violations


class TestContractMonitor:
    def make_stacks(self):
        tx = Stack("tx", [PassthroughSublayer("a"), PassthroughSublayer("b")])
        rx = Stack("rx", [PassthroughSublayer("a"), PassthroughSublayer("b")])
        rx.on_deliver = lambda d, **m: None
        tx.on_transmit = lambda p, **m: rx.receive(p)
        return tx, rx

    def test_boundary_observation(self):
        tx, rx = self.make_stacks()
        monitor = ContractMonitor(tx, rx, "b")
        tx.send(b"one")
        assert monitor.observation.sent == [b"one"]
        assert monitor.observation.delivered == [b"one"]

    def test_app_boundary(self):
        tx, rx = self.make_stacks()
        monitor = ContractMonitor(tx, rx, APP)
        tx.send(b"one")
        assert monitor.observation.sent == [b"one"]
        assert monitor.observation.delivered == [b"one"]

    def test_unknown_boundary_rejected(self):
        tx, rx = self.make_stacks()
        with pytest.raises(ConfigurationError):
            ContractMonitor(tx, rx, "zzz")


class TestLocalization:
    def test_evaluate_contracts_splits_pass_fail(self):
        contracts = [ExactlyOnceDelivery("rd"), InOrderDelivery("osr")]
        observations = {
            "rd": Observation(sent=[1], delivered=[1]),
            "osr": Observation(sent=[1, 2], delivered=[2, 1]),
        }
        report = evaluate_contracts(contracts, observations)
        assert len(report.passed) == 1
        assert len(report.failed) == 1
        assert report.implicated_sublayers == ["osr"]

    def test_missing_observation_raises(self):
        with pytest.raises(ConfigurationError):
            evaluate_contracts([ExactlyOnceDelivery("rd")], {})

    def test_localize_picks_lowest_failure(self):
        report = LocalizationReport(
            failed=[
                (InOrderDelivery("osr"), ["x"]),
                (ExactlyOnceDelivery("rd"), ["y"]),
            ]
        )
        # stack order top->bottom: osr above rd; rd is lower, so rd is suspect
        assert report.localize(["osr", "rd", "cm", "dm"]) == "rd"

    def test_localize_none_when_clean(self):
        report = LocalizationReport()
        assert report.localize(["osr", "rd"]) is None
