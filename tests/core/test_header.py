"""Tests for repro.core.header."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bits import Bits
from repro.core.errors import HeaderError
from repro.core.header import Field, HeaderFormat, concat_formats


def simple_format():
    return HeaderFormat(
        "demo",
        [Field("a", 4), Field("b", 8), Field("flag", 1), Field("pad", 3)],
        owner="demo",
    )


class TestField:
    def test_rejects_zero_width(self):
        with pytest.raises(HeaderError):
            Field("x", 0)

    def test_rejects_bad_default(self):
        with pytest.raises(HeaderError):
            Field("x", 2, default=4)

    def test_max_value(self):
        assert Field("x", 4).max_value == 15


class TestHeaderFormat:
    def test_bit_width(self):
        assert simple_format().bit_width == 16

    def test_byte_width(self):
        assert simple_format().byte_width == 2

    def test_byte_width_unaligned_raises(self):
        fmt = HeaderFormat("odd", [Field("x", 3)])
        with pytest.raises(HeaderError):
            fmt.byte_width

    def test_duplicate_field_rejected(self):
        with pytest.raises(HeaderError):
            HeaderFormat("dup", [Field("x", 1), Field("x", 2)])

    def test_owner_propagates(self):
        fmt = simple_format()
        assert all(f.owner == "demo" for f in fmt.fields)

    def test_explicit_owner_preserved(self):
        fmt = HeaderFormat("h", [Field("x", 1, owner="other")], owner="me")
        assert fmt.field("x").owner == "other"

    def test_field_lookup(self):
        assert simple_format().field("b").width == 8

    def test_field_lookup_missing(self):
        with pytest.raises(HeaderError):
            simple_format().field("nope")

    def test_owners(self):
        assert simple_format().owners() == {"demo"}

    def test_fields_owned_by(self):
        assert len(simple_format().fields_owned_by("demo")) == 4

    def test_bit_ranges(self):
        ranges = simple_format().bit_ranges()
        assert ranges["a"] == (0, 4)
        assert ranges["b"] == (4, 12)
        assert ranges["flag"] == (12, 13)


class TestPackUnpack:
    def test_roundtrip(self):
        fmt = simple_format()
        values = {"a": 5, "b": 200, "flag": 1, "pad": 0}
        assert fmt.unpack(fmt.pack(values)) == values

    def test_defaults_fill_missing(self):
        fmt = simple_format()
        assert fmt.unpack(fmt.pack({"a": 3})) == {"a": 3, "b": 0, "flag": 0, "pad": 0}

    def test_unknown_field_rejected(self):
        with pytest.raises(HeaderError):
            simple_format().pack({"zzz": 1})

    def test_overflow_rejected(self):
        with pytest.raises(HeaderError):
            simple_format().pack({"a": 16})

    def test_unpack_short_input_rejected(self):
        with pytest.raises(HeaderError):
            simple_format().unpack(Bits.from_string("0101"))

    def test_pack_bytes(self):
        fmt = simple_format()
        assert len(fmt.pack_bytes({"a": 1})) == 2

    def test_unpack_bytes(self):
        fmt = simple_format()
        data = fmt.pack_bytes({"a": 7, "b": 13})
        assert fmt.unpack_bytes(data)["b"] == 13

    def test_split_returns_remainder(self):
        fmt = simple_format()
        bits = fmt.pack({"a": 1}) + Bits.from_string("1010")
        values, rest = fmt.split(bits)
        assert values["a"] == 1
        assert rest == Bits.from_string("1010")

    @given(
        st.integers(0, 15),
        st.integers(0, 255),
        st.integers(0, 1),
        st.integers(0, 7),
    )
    def test_roundtrip_property(self, a, b, flag, pad):
        fmt = simple_format()
        values = {"a": a, "b": b, "flag": flag, "pad": pad}
        assert fmt.unpack(fmt.pack(values)) == values


class TestConcat:
    def test_concat_prefixes_names(self):
        fmt1 = HeaderFormat("cm", [Field("isn", 32)], owner="cm")
        fmt2 = HeaderFormat("rd", [Field("seq", 32)], owner="rd")
        combined = concat_formats("tcp", fmt1, fmt2)
        assert combined.field_names() == ["cm.isn", "rd.seq"]
        assert combined.bit_width == 64

    def test_concat_preserves_owners(self):
        fmt1 = HeaderFormat("cm", [Field("isn", 32)], owner="cm")
        fmt2 = HeaderFormat("rd", [Field("seq", 32)], owner="rd")
        combined = concat_formats("tcp", fmt1, fmt2)
        assert combined.field("cm.isn").owner == "cm"
        assert combined.field("rd.seq").owner == "rd"
        assert combined.owners() == {"cm", "rd"}
