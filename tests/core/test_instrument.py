"""Tests for repro.core.instrument."""

import pytest

from repro.core.instrument import (
    AccessLog,
    InstrumentedState,
    acting_as,
    current_actor,
)


class TestActorContext:
    def test_no_actor_by_default(self):
        assert current_actor() is None

    def test_acting_as_sets_and_resets(self):
        with acting_as("rd"):
            assert current_actor() == "rd"
        assert current_actor() is None

    def test_nested_actors(self):
        with acting_as("osr"):
            with acting_as("rd"):
                assert current_actor() == "rd"
            assert current_actor() == "osr"

    def test_reset_on_exception(self):
        with pytest.raises(RuntimeError):
            with acting_as("cm"):
                raise RuntimeError
        assert current_actor() is None


class TestInstrumentedState:
    def test_write_then_read(self):
        state = InstrumentedState("rd")
        state.snd_nxt = 5
        assert state.snd_nxt == 5

    def test_read_undeclared_raises(self):
        state = InstrumentedState("rd")
        with pytest.raises(AttributeError):
            state.nothing

    def test_initial_kwargs(self):
        state = InstrumentedState("rd", snd_nxt=0, window=10)
        assert state.window == 10

    def test_accesses_logged_with_actor(self):
        log = AccessLog()
        state = InstrumentedState("rd", log=log)
        with acting_as("rd"):
            state.x = 1
            _ = state.x
        kinds = [(r.actor, r.target, r.field, r.kind) for r in log.records]
        assert ("rd", "rd", "x", "write") in kinds
        assert ("rd", "rd", "x", "read") in kinds

    def test_foreign_actor_recorded(self):
        log = AccessLog()
        state = InstrumentedState("rd", log=log, window=1)
        log.clear()
        with acting_as("osr"):
            _ = state.window
        assert log.records[0].actor == "osr"
        assert log.records[0].target == "rd"

    def test_snapshot_does_not_log(self):
        log = AccessLog()
        state = InstrumentedState("rd", log=log, a=1)
        log.clear()
        assert state.snapshot() == {"a": 1}
        assert log.records == []

    def test_field_names(self):
        state = InstrumentedState("rd", a=1, b=2)
        assert state.field_names() == {"a", "b"}

    def test_repr(self):
        assert "rd" in repr(InstrumentedState("rd", a=1))


class TestAccessLog:
    def make_log(self):
        log = AccessLog()
        rd = InstrumentedState("rd", log=log)
        pcb = InstrumentedState("pcb", log=log)
        with acting_as("rd"):
            rd.seq = 1
            pcb.window = 5
        with acting_as("cc"):
            _ = pcb.window
            pcb.window = 6
        return log

    def test_actors(self):
        assert self.make_log().actors() == {"rd", "cc"}

    def test_fields_touched_by(self):
        log = self.make_log()
        assert ("pcb", "window") in log.fields_touched_by("cc")
        assert ("rd", "seq") in log.fields_touched_by("rd")

    def test_writers_and_readers(self):
        log = self.make_log()
        assert log.writers_of("pcb", "window") == {"rd", "cc"}
        assert log.readers_of("pcb", "window") == {"cc"}

    def test_interference_matrix(self):
        matrix = self.make_log().interference_matrix()
        assert matrix[("pcb", "window")] == {"rd", "cc"}

    def test_shared_fields(self):
        shared = self.make_log().shared_fields()
        assert ("pcb", "window") in shared
        assert ("rd", "seq") not in shared

    def test_paused(self):
        log = AccessLog()
        state = InstrumentedState("s", log=log, x=1)
        log.clear()
        with log.paused():
            _ = state.x
        assert log.records == []
        _ = state.x
        assert len(log.records) == 1

    def test_clear(self):
        log = self.make_log()
        log.clear()
        assert log.records == []
