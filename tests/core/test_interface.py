"""Tests for repro.core.interface."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.instrument import current_actor
from repro.core.interface import (
    BoundPort,
    InterfaceLog,
    Notification,
    Primitive,
    ServiceInterface,
)


class Provider:
    def __init__(self):
        self.calls = []
        self.actor_seen = None

    def srv_get_isn(self, conn):
        self.calls.append(("get_isn", conn))
        self.actor_seen = current_actor()
        return 42

    def srv_release(self, segment):
        self.calls.append(("release", segment))


ISN_IFACE = ServiceInterface("cm-service", [Primitive("get_isn"), Primitive("release")])


class TestServiceInterface:
    def test_width(self):
        assert ISN_IFACE.width == 2

    def test_has(self):
        assert ISN_IFACE.has("get_isn")
        assert not ISN_IFACE.has("nope")

    def test_duplicate_primitives_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceInterface("x", [Primitive("a"), Primitive("a")])


class TestBoundPort:
    def make_port(self, provider=None, log=None):
        provider = provider or Provider()
        log = log or InterfaceLog()
        port = BoundPort(ISN_IFACE, provider, "cm", "rd", log)
        return port, provider, log

    def test_call_dispatches(self):
        port, provider, _ = self.make_port()
        assert port.get_isn("c1") == 42
        assert provider.calls == [("get_isn", "c1")]

    def test_call_logged(self):
        port, _, log = self.make_port()
        port.get_isn("c1")
        record = log.records[0]
        assert record.interface == "cm-service"
        assert record.primitive == "get_isn"
        assert record.caller == "rd"
        assert record.provider == "cm"
        assert record.arg_count == 1

    def test_call_runs_as_provider(self):
        port, provider, _ = self.make_port()
        port.get_isn("c1")
        assert provider.actor_seen == "cm"

    def test_unknown_primitive_rejected(self):
        port, _, _ = self.make_port()
        with pytest.raises(ConfigurationError):
            port.bogus()

    def test_missing_implementation_rejected(self):
        class Bad:
            pass

        with pytest.raises(ConfigurationError):
            BoundPort(ISN_IFACE, Bad(), "cm", "rd", InterfaceLog())


class TestInterfaceLog:
    def test_crossings(self):
        port, _, log = TestBoundPort().make_port()
        port.get_isn("a")
        port.release("s")
        assert log.crossings() == 2

    def test_crossings_between(self):
        port, _, log = TestBoundPort().make_port()
        port.get_isn("a")
        assert log.crossings_between("rd", "cm") == 1
        assert log.crossings_between("cm", "rd") == 0

    def test_used_width(self):
        port, _, log = TestBoundPort().make_port()
        port.get_isn("a")
        port.get_isn("b")
        assert log.used_width("cm-service") == 1
        port.release("s")
        assert log.used_width("cm-service") == 2

    def test_pairs(self):
        port, _, log = TestBoundPort().make_port()
        port.get_isn("a")
        assert log.pairs() == {("rd", "cm")}


class TestNotification:
    def test_fire_unconnected_is_noop(self):
        n = Notification("acked", "rd", InterfaceLog())
        assert n.fire(1, 2) is None

    def test_fire_connected(self):
        log = InterfaceLog()
        n = Notification("acked", "rd", log)
        seen = []
        n.connect("osr", lambda *a: seen.append(a))
        n.fire(10)
        assert seen == [(10,)]
        assert log.records[0].caller == "rd"
        assert log.records[0].provider == "osr"

    def test_double_connect_rejected(self):
        n = Notification("acked", "rd", InterfaceLog())
        n.connect("osr", lambda: None)
        with pytest.raises(ConfigurationError):
            n.connect("x", lambda: None)

    def test_handler_runs_as_user(self):
        n = Notification("acked", "rd", InterfaceLog())
        seen = {}
        n.connect("osr", lambda: seen.setdefault("actor", current_actor()))
        n.fire()
        assert seen["actor"] == "osr"
