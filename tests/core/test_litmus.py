"""Tests for repro.core.litmus — the automated T1/T2/T3 checks."""

import pytest

from repro.core import (
    Field,
    HeaderFormat,
    LitmusFailure,
    Stack,
    Sublayer,
    WireTap,
    run_litmus,
    unwrap,
)


class Top(Sublayer):
    HEADER = HeaderFormat("top", [Field("t", 4), Field("pad", 4)], owner="top")

    def from_above(self, sdu, **meta):
        self.send_down(self.wrap({"t": 1}, sdu))

    def from_below(self, pdu, **meta):
        _, inner = unwrap(pdu, "top")
        self.deliver_up(inner)


class Bottom(Sublayer):
    HEADER = HeaderFormat("bottom", [Field("b", 8)], owner="bottom")

    def from_above(self, sdu, **meta):
        self.send_down(self.wrap({"b": 2}, sdu))

    def from_below(self, pdu, **meta):
        _, inner = unwrap(pdu, "bottom")
        self.deliver_up(inner)


def run_pair(top_cls=Top, bottom_cls=Bottom, messages=(b"m1", b"m2")):
    tx = Stack("tx", [top_cls("top"), bottom_cls("bottom")])
    rx = Stack("rx", [top_cls("top"), bottom_cls("bottom")])
    wire = WireTap(tx, rx)
    rx.on_deliver = lambda d, **m: None
    tx.on_transmit = lambda p, **m: rx.receive(p)
    for msg in messages:
        tx.send(msg)
    return tx, rx, wire


class TestCleanStackPasses:
    def test_all_tests_pass(self):
        tx, rx, wire = run_pair()
        report = run_litmus(tx, rx, wire)
        assert report.passed
        report.require()  # must not raise

    def test_t1_metrics(self):
        tx, rx, wire = run_pair()
        report = run_litmus(tx, rx, wire)
        t1 = report.result("T1")
        assert t1.metrics["order"] == ["top", "bottom"]
        assert t1.metrics["wire_pdus"] == 2

    def test_summary_format(self):
        tx, rx, wire = run_pair()
        text = run_litmus(tx, rx, wire).summary()
        assert "T1: PASS" in text and "T3: PASS" in text

    def test_result_lookup_missing(self):
        tx, rx, wire = run_pair()
        with pytest.raises(KeyError):
            run_litmus(tx, rx, wire).result("T9")


class TestT1Violations:
    def test_mismatched_endpoint_orders(self):
        tx = Stack("tx", [Top("top"), Bottom("bottom")])
        rx = Stack("rx", [Bottom("bottom"), Top("top")])  # wrong order
        wire = WireTap(tx, rx)
        report = run_litmus(tx, rx, wire)
        assert not report.result("T1").passed

    def test_header_nesting_violation(self):
        class InvertedBottom(Bottom):
            # Puts its header *inside* the upper header: violates T1 nesting.
            def from_above(self, sdu, **meta):
                if hasattr(sdu, "inner"):
                    swapped = self.wrap({"b": 2}, sdu.inner)
                    sdu.inner = swapped
                    self.send_down(sdu)
                else:
                    self.send_down(self.wrap({"b": 2}, sdu))

            def from_below(self, pdu, **meta):
                self.deliver_up(pdu)

        tx = Stack("tx", [Top("top"), InvertedBottom("bottom")])
        rx = Stack("rx", [Top("top"), InvertedBottom("bottom")])
        wire = WireTap(tx, rx)
        rx.on_deliver = lambda d, **m: None
        tx.on_transmit = lambda p, **m: None  # don't need receive side
        tx.send(b"x")
        report = run_litmus(tx, rx, wire)
        assert not report.result("T1").passed
        with pytest.raises(LitmusFailure):
            report.require()


class TestT3Violations:
    def test_foreign_state_access_detected(self):
        class NosyTop(Top):
            def from_above(self, sdu, **meta):
                # Reach into the bottom sublayer's private state: T3 violation.
                bottom = self._victim
                _ = bottom.state.secret
                super().from_above(sdu, **meta)

        class SecretBottom(Bottom):
            def on_attach(self):
                self.state.secret = 7

        top = NosyTop("top")
        bottom = SecretBottom("bottom")
        top._victim = bottom
        tx = Stack("tx", [top, bottom])
        rx = Stack("rx", [Top("top"), Bottom("bottom")])
        wire = WireTap(tx, rx)
        rx.on_deliver = lambda d, **m: None
        tx.on_transmit = lambda p, **m: rx.receive(p)
        tx.send(b"x")
        report = run_litmus(tx, rx, wire)
        t3 = report.result("T3")
        assert not t3.passed
        assert t3.metrics["foreign_state_touches"] >= 1
        assert any("top" in d and "secret" in d for d in t3.details)

    def test_foreign_header_bits_detected(self):
        stolen = HeaderFormat(
            "top", [Field("t", 4, owner="bottom"), Field("pad", 4, owner="top")]
        )

        class StealingTop(Top):
            HEADER = stolen

        tx, rx, wire = run_pair(top_cls=StealingTop)
        report = run_litmus(tx, rx, wire)
        assert not report.result("T3").passed


class TestT2Violations:
    def test_wide_interface_flagged(self):
        tx, rx, wire = run_pair()
        report = run_litmus(tx, rx, wire, max_interface_width=0)
        # data interfaces are exempt; control interfaces absent here, so still passes
        assert report.result("T2").passed

    def test_t2_interface_widths_reported(self):
        tx, rx, wire = run_pair()
        report = run_litmus(tx, rx, wire)
        widths = report.result("T2").metrics["interface_widths"]
        assert "data:tx" in widths
