"""Tests for repro.core.pdu."""

import pytest

from repro.core.bits import Bits
from repro.core.errors import HeaderError
from repro.core.header import Field, HeaderFormat
from repro.core.pdu import Pdu, unwrap

RD_FMT = HeaderFormat("rd", [Field("seq", 16), Field("ack", 16)], owner="rd")
DM_FMT = HeaderFormat("dm", [Field("sport", 16), Field("dport", 16)], owner="dm")


def nested_pdu(payload=b"hi"):
    inner = Pdu("rd", RD_FMT, {"seq": 7}, payload)
    return Pdu("dm", DM_FMT, {"sport": 80, "dport": 1234}, inner)


class TestPdu:
    def test_field_value(self):
        pdu = nested_pdu()
        assert pdu.field("sport") == 80

    def test_field_default(self):
        pdu = Pdu("rd", RD_FMT, {"seq": 1}, b"")
        assert pdu.field("ack") == 0

    def test_field_missing(self):
        with pytest.raises(HeaderError):
            nested_pdu().field("nope")

    def test_unknown_header_value_rejected(self):
        with pytest.raises(HeaderError):
            Pdu("rd", RD_FMT, {"bogus": 1}, b"")

    def test_with_field_copies(self):
        pdu = nested_pdu()
        changed = pdu.with_field("sport", 99)
        assert changed.field("sport") == 99
        assert pdu.field("sport") == 80

    def test_header_chain_order(self):
        pdu = nested_pdu()
        assert [p.owner for p in pdu.header_chain()] == ["dm", "rd"]

    def test_owners(self):
        assert nested_pdu().owners() == ["dm", "rd"]

    def test_find(self):
        pdu = nested_pdu()
        assert pdu.find("rd").field("seq") == 7
        assert pdu.find("zz") is None

    def test_payload(self):
        assert nested_pdu(b"data").payload() == b"data"

    def test_header_bits(self):
        assert nested_pdu().header_bits() == 64

    def test_payload_bits_bytes(self):
        assert nested_pdu(b"ab").payload_bits() == 16

    def test_payload_bits_bits(self):
        assert nested_pdu(Bits.from_string("010")).payload_bits() == 3

    def test_to_bits_layout(self):
        pdu = nested_pdu(b"\xff")
        bits = pdu.to_bits()
        assert len(bits) == 64 + 8
        # outermost header first: dm.sport == 80 in the first 16 bits
        assert bits[0:16].to_int() == 80
        assert bits[32:48].to_int() == 7  # rd.seq

    def test_to_bits_none_payload(self):
        pdu = Pdu("rd", RD_FMT, {"seq": 1}, None)
        assert len(pdu.to_bits()) == 32

    def test_to_bits_bad_payload(self):
        pdu = Pdu("rd", RD_FMT, {}, object())
        with pytest.raises(HeaderError):
            pdu.to_bits()

    def test_clone_is_deep(self):
        pdu = nested_pdu()
        clone = pdu.clone()
        clone.find("rd").header["seq"] = 99
        assert pdu.find("rd").field("seq") == 7

    def test_repr_mentions_owners(self):
        text = repr(nested_pdu())
        assert "dm" in text and "rd" in text


class TestUnwrap:
    def test_unwrap_fills_defaults(self):
        pdu = Pdu("rd", RD_FMT, {"seq": 3}, b"x")
        values, inner = unwrap(pdu, "rd")
        assert values == {"seq": 3, "ack": 0}
        assert inner == b"x"

    def test_unwrap_wrong_owner(self):
        with pytest.raises(HeaderError):
            unwrap(nested_pdu(), "rd")  # outermost is dm

    def test_unwrap_peels_one_layer(self):
        values, inner = unwrap(nested_pdu(), "dm")
        assert values["dport"] == 1234
        assert isinstance(inner, Pdu)
        assert inner.owner == "rd"
