"""Tests for core shim support and remaining core odds and ends."""

import pytest

from repro.core import (
    APP,
    Bits,
    IdentityShim,
    Field,
    HeaderFormat,
    PassthroughSublayer,
    Pdu,
    ShimSublayer,
    Stack,
    WIRE,
)


class TestIdentityShim:
    def make_pair(self):
        tx = Stack("tx", [PassthroughSublayer("p"), IdentityShim("shim")])
        rx = Stack("rx", [PassthroughSublayer("p"), IdentityShim("shim")])
        got = []
        rx.on_deliver = lambda d, **m: got.append(d)
        tx.on_transmit = lambda u, **m: rx.receive(u)
        return tx, rx, got

    def test_transparent_both_ways(self):
        tx, rx, got = self.make_pair()
        tx.send(b"unchanged")
        assert got == [b"unchanged"]

    def test_shim_in_order(self):
        tx, _, _ = self.make_pair()
        assert tx.order() == ["p", "shim"]


class TestShimDropSemantics:
    def test_encode_none_drops(self):
        class DropShim(ShimSublayer):
            def encode(self, pdu):
                return None

            def decode(self, wire):
                return wire

        tx = Stack("tx", [DropShim("shim")])
        out = []
        tx.on_transmit = lambda u, **m: out.append(u)
        tx.send(b"x")
        assert out == []

    def test_decode_none_drops(self):
        class DropShim(ShimSublayer):
            def encode(self, pdu):
                return pdu

            def decode(self, wire):
                return None

        rx = Stack("rx", [DropShim("shim")])
        got = []
        rx.on_deliver = lambda d, **m: got.append(d)
        rx.receive(b"x")
        assert got == []

    def test_abstract_shim_raises(self):
        shim = ShimSublayer("s")
        with pytest.raises(NotImplementedError):
            shim.encode(b"x")
        with pytest.raises(NotImplementedError):
            shim.decode(b"x")


class TestDeepStack:
    """Stacks deeper than two sublayers wire every hop correctly."""

    def make_layer(self, name, width):
        fmt = HeaderFormat(name, [Field("v", width)], owner=name)

        class Layer(PassthroughSublayer):
            HEADER = fmt

            def from_above(self, sdu, **meta):
                self.send_down(Pdu(self.name, fmt, {"v": 1}, sdu))

            def from_below(self, pdu, **meta):
                self.deliver_up(pdu.inner)

        return Layer(name)

    def test_five_sublayer_stack(self):
        names = ["l1", "l2", "l3", "l4", "l5"]
        tx = Stack("tx", [self.make_layer(n, 8) for n in names])
        rx = Stack("rx", [self.make_layer(n, 8) for n in names])
        got = []
        wire = []
        rx.on_deliver = lambda d, **m: got.append(d)
        tx.on_transmit = lambda u, **m: (wire.append(u), rx.receive(u))
        tx.send(b"deep")
        assert got == [b"deep"]
        # headers nest bottom-outermost
        assert wire[0].owners() == ["l5", "l4", "l3", "l2", "l1"]

    def test_data_crossings_count(self):
        names = ["l1", "l2", "l3"]
        tx = Stack("tx", [self.make_layer(n, 8) for n in names])
        tx.on_transmit = lambda u, **m: None
        tx.send(b"x")
        data = [r for r in tx.interface_log.records if r.interface == "data:tx"]
        # app->l1, l1->l2, l2->l3, l3->wire
        assert [(r.caller, r.provider) for r in data] == [
            (APP, "l1"), ("l1", "l2"), ("l2", "l3"), ("l3", WIRE),
        ]
