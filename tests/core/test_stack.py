"""Tests for repro.core.stack wiring and data paths."""

import pytest

from repro.core import (
    APP,
    WIRE,
    ConfigurationError,
    Field,
    HeaderFormat,
    Primitive,
    ServiceInterface,
    Stack,
    Sublayer,
    unwrap,
)


class Upper(Sublayer):
    HEADER = HeaderFormat("up", [Field("n", 8)], owner="up")
    NOTIFICATIONS = ()

    def on_attach(self):
        self.state.sent = 0

    def from_above(self, sdu, **meta):
        self.state.sent = self.state.sent + 1
        isn = self.below.get_isn("conn") if self.below else 0
        self.send_down(self.wrap({"n": isn % 256}, sdu))

    def from_below(self, pdu, **meta):
        values, inner = unwrap(pdu, "up")
        self.deliver_up(inner, n=values["n"])


class Lower(Sublayer):
    SERVICE = ServiceInterface("lower-service", [Primitive("get_isn")])
    NOTIFICATIONS = ("event",)
    HEADER = HeaderFormat("low", [Field("k", 8)], owner="low")

    def on_attach(self):
        self.state.isn = 42

    def srv_get_isn(self, conn):
        return self.state.isn

    def from_above(self, sdu, **meta):
        self.send_down(self.wrap({"k": 9}, sdu))

    def from_below(self, pdu, **meta):
        values, inner = unwrap(pdu, "low")
        self.deliver_up(inner)
        self.notify("event", values["k"])


class NotifiedUpper(Upper):
    def on_attach(self):
        super().on_attach()
        self.events = []

    def nf_event(self, k):
        self.events.append(k)


def make_pair(upper_cls=Upper):
    tx = Stack("tx", [upper_cls("up"), Lower("low")])
    rx = Stack("rx", [upper_cls("up"), Lower("low")])
    delivered = []
    rx.on_deliver = lambda d, **m: delivered.append(d)
    tx.on_transmit = lambda p, **m: rx.receive(p)
    return tx, rx, delivered


class TestAssembly:
    def test_empty_stack_rejected(self):
        with pytest.raises(ConfigurationError):
            Stack("s", [])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            Stack("s", [Upper("x"), Lower("x")])

    def test_order(self):
        tx, _, _ = make_pair()
        assert tx.order() == ["up", "low"]

    def test_top_bottom(self):
        tx, _, _ = make_pair()
        assert tx.top.name == "up"
        assert tx.bottom.name == "low"

    def test_sublayer_lookup(self):
        tx, _, _ = make_pair()
        assert tx.sublayer("low").name == "low"
        with pytest.raises(ConfigurationError):
            tx.sublayer("nope")

    def test_on_attach_ran(self):
        tx, _, _ = make_pair()
        assert tx.sublayer("low").state.isn == 42

    def test_port_wired_to_below(self):
        tx, _, _ = make_pair()
        assert tx.sublayer("up").below is not None
        assert tx.sublayer("up").below.provider_name == "low"

    def test_bottom_has_no_port(self):
        tx, _, _ = make_pair()
        assert tx.sublayer("low").below is None


class TestDataPath:
    def test_end_to_end_delivery(self):
        tx, _, delivered = make_pair()
        tx.send(b"payload")
        assert delivered == [b"payload"]

    def test_headers_nested_in_order(self):
        tx, rx, _ = make_pair()
        seen = []
        tx.on_transmit = lambda p, **m: seen.append(p)
        tx.send(b"x")
        assert seen[0].owners() == ["low", "up"]

    def test_missing_transmit_sink_raises(self):
        tx = Stack("tx", [Upper("up"), Lower("low")])
        with pytest.raises(ConfigurationError):
            tx.send(b"x")

    def test_control_call_through_port(self):
        tx, _, _ = make_pair()
        tx.send(b"x")
        control = [
            r for r in tx.interface_log.records if r.interface == "lower-service"
        ]
        assert len(control) == 1
        assert control[0].caller == "up"

    def test_notification_to_upper(self):
        tx, rx, _ = make_pair(NotifiedUpper)
        tx.send(b"x")
        assert rx.sublayer("up").events == [9]

    def test_crossings_counted(self):
        tx, rx, _ = make_pair()
        tx.send(b"x")
        # tx: app->up, up->low (data) + control; rx: wire->low, low->up, up->app
        data_tx = [r for r in tx.interface_log.records if r.interface == "data:tx"]
        data_rx = [r for r in rx.interface_log.records if r.interface == "data:rx"]
        assert len(data_tx) == 3  # app->up, up->low, low->wire
        assert len(data_rx) == 3  # wire->low, low->up, up->app

    def test_state_attributed_to_sublayer(self):
        tx, _, _ = make_pair()
        tx.send(b"x")
        writes = [
            r
            for r in tx.access_log.records
            if r.target == "up" and r.field == "sent" and r.kind == "write"
        ]
        assert all(r.actor == "up" for r in writes)

    def test_taps_see_hops(self):
        tx, _, _ = make_pair()
        hops = []
        tx.taps.append(lambda d, c, p, s, m: hops.append((d, c, p)))
        tx.send(b"x")
        assert ("down", APP, "up") in hops
        assert ("down", "up", "low") in hops
        assert ("down", "low", WIRE) in hops


class TestReplace:
    def test_replace_swaps_one_sublayer(self):
        tx, _, _ = make_pair()

        class Lower2(Lower):
            def on_attach(self):
                self.state.isn = 77

        replaced = tx.replace("low", Lower2("low"))
        assert replaced.sublayer("low").state.isn == 77
        assert replaced.order() == ["up", "low"]

    def test_replace_missing_raises(self):
        tx, _, _ = make_pair()
        with pytest.raises(ConfigurationError):
            tx.replace("nope", Lower("nope"))

    def test_replaced_stack_still_works(self):
        tx, _, _ = make_pair()
        replaced = tx.replace("low", Lower("low"))
        delivered = []
        rx = Stack("rx", [Upper("up"), Lower("low")])
        rx.on_deliver = lambda d, **m: delivered.append(d)
        replaced.on_transmit = lambda p, **m: rx.receive(p)
        replaced.send(b"swap")
        assert delivered == [b"swap"]
