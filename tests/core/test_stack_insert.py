"""Stack.insert: splicing a sublayer into a live, wired stack."""

import pytest

from repro.core import (
    ConfigurationError,
    PassthroughSublayer,
    Primitive,
    ServiceInterface,
    Stack,
    Sublayer,
)
from repro.faults import DropFault, FaultSchedule, NoOpFault


class Top(Sublayer):
    def on_attach(self):
        self.state.sent = 0
        self.events = []

    def from_above(self, sdu, **meta):
        self.state.sent = self.state.sent + 1
        isn = self.below.get_isn("conn") if self.below else None
        self.send_down(sdu, isn=isn)

    def from_below(self, pdu, **meta):
        self.deliver_up(pdu)

    def nf_event(self, k):
        self.events.append(k)


class Bottom(Sublayer):
    SERVICE = ServiceInterface("bottom-service", [Primitive("get_isn")])
    NOTIFICATIONS = ("event",)

    def on_attach(self):
        self.state.isn = 42

    def srv_get_isn(self, conn):
        return self.state.isn

    def from_above(self, sdu, **meta):
        self.send_down(sdu)

    def from_below(self, pdu, **meta):
        self.deliver_up(pdu)
        self.notify("event", pdu)


def make_stack(tier="full"):
    stack = Stack("s", [Top("top"), Bottom("bot")], tier=tier)
    wire, delivered = [], []
    stack.on_transmit = lambda unit, **meta: wire.append(unit)
    stack.on_deliver = lambda unit, **meta: delivered.append(unit)
    return stack, wire, delivered


class TestPlacement:
    def test_insert_after(self):
        stack, _, _ = make_stack()
        stack.insert("top", PassthroughSublayer("mid"), where="after")
        assert stack.order() == ["top", "mid", "bot"]

    def test_insert_before(self):
        stack, _, _ = make_stack()
        stack.insert("bot", PassthroughSublayer("mid"), where="before")
        assert stack.order() == ["top", "mid", "bot"]

    def test_insert_at_top(self):
        stack, _, _ = make_stack()
        stack.insert("top", PassthroughSublayer("above"), where="before")
        assert stack.order() == ["above", "top", "bot"]
        assert stack.top.name == "above"

    def test_insert_at_bottom(self):
        stack, wire, _ = make_stack()
        stack.insert("bot", PassthroughSublayer("below"), where="after")
        assert stack.order() == ["top", "bot", "below"]
        assert stack.bottom.name == "below"
        stack.send(b"x")
        assert wire == [b"x"]

    def test_returns_self_for_chaining(self):
        stack, _, _ = make_stack()
        assert stack.insert("top", PassthroughSublayer("mid")) is stack


class TestValidation:
    def test_unknown_anchor(self):
        stack, _, _ = make_stack()
        with pytest.raises(ConfigurationError, match="no sublayer"):
            stack.insert("nope", PassthroughSublayer("mid"))

    def test_duplicate_name(self):
        stack, _, _ = make_stack()
        with pytest.raises(ConfigurationError, match="duplicate"):
            stack.insert("top", PassthroughSublayer("bot"))

    def test_bad_where(self):
        stack, _, _ = make_stack()
        with pytest.raises(ConfigurationError, match="before.*after"):
            stack.insert("top", PassthroughSublayer("mid"), where="inside")


class TestRewiring:
    def test_transparent_insert_preserves_service_port(self):
        stack, wire, _ = make_stack()
        stack.insert("top", NoOpFault("fault"), where="after")
        # top must still reach bottom-service straight through the fault
        assert stack.sublayer("top").below is not None
        assert stack.sublayer("top").below.provider_name == "bot"
        stack.send(b"x")
        assert wire == [b"x"]

    def test_transparent_insert_preserves_notifications(self):
        stack, _, _ = make_stack()
        stack.insert("top", NoOpFault("fault"), where="after")
        stack.receive(b"ping")
        assert stack.sublayer("top").events == [b"ping"]

    def test_opaque_insert_rewires_to_new_neighbour(self):
        stack, _, _ = make_stack()
        stack.insert("top", Bottom("mid"), where="after")
        # top now binds to mid's identical service, not bot's
        assert stack.sublayer("top").below.provider_name == "mid"

    def test_plan_recompiled(self):
        stack, _, _ = make_stack()
        before = stack.wiring_plan.compilations
        stack.insert("top", NoOpFault("fault"))
        assert stack.wiring_plan.compilations == before + 1

    def test_existing_state_preserved_newcomer_attached(self):
        stack, _, _ = make_stack()
        stack.send(b"a")
        assert stack.sublayer("top").state.sent == 1
        fault = DropFault("fault", schedule=FaultSchedule.once(0))
        stack.insert("top", fault, where="after")
        # untouched sublayers keep their state; only the newcomer attached
        assert stack.sublayer("top").state.sent == 1
        assert stack.sublayer("bot").state.isn == 42
        assert fault.state.units_seen == 0
        stack.send(b"b")
        assert stack.sublayer("top").state.sent == 2
        assert fault.state.dropped == 1


@pytest.mark.parametrize("tier", ["full", "metrics", "off"])
def test_insert_works_at_every_tier(tier):
    stack, wire, delivered = make_stack(tier=tier)
    stack.insert("top", NoOpFault("fault"), where="after")
    assert stack.tier == tier
    stack.send(b"down")
    stack.receive(b"up")
    assert wire == [b"down"]
    assert delivered == [b"up"]
