"""Compiled wiring plans: tiers, recompilation, endpoints, replace.

The wiring tentpole's contract, spelled out as tests:

* ``full`` keeps the historical observable behaviour (covered in depth
  by test_stack.py and the litmus suite; spot-checked here);
* ``metrics`` counts hops and nothing else; ``off`` compiles hops down
  to direct bound-method chains;
* attaching/detaching an observer (span hook, tap, endpoint sink)
  recompiles the plan, at any tier;
* both missing endpoints raise symmetrically, with ``lossy_delivery``
  as the explicit opt-out;
* ``Stack.replace()`` carries the full wiring configuration.
"""

import pytest

from repro.core import (
    ConfigurationError,
    HopCounters,
    NullAccessLog,
    NullInterfaceLog,
    PassthroughSublayer,
    Stack,
    Sublayer,
    TIERS,
    TapList,
)


def chain(tier="full", depth=3, **kwargs):
    stack = Stack(
        "w",
        [PassthroughSublayer(f"p{i}") for i in range(depth)],
        tier=tier,
        **kwargs,
    )
    sent = []
    stack.on_transmit = lambda sdu, **meta: sent.append(sdu)
    return stack, sent


class CountingSublayer(Sublayer):
    """Touches its state on every unit, so tiers' access-log behaviour
    is observable."""

    def on_attach(self):
        self.state.seen = 0

    def from_above(self, sdu, **meta):
        self.state.seen = self.state.seen + 1
        self.send_down(sdu, **meta)

    def from_below(self, pdu, **meta):
        self.state.seen = self.state.seen + 1
        self.deliver_up(pdu, **meta)


class RecordingMetrics:
    def __init__(self):
        self.counts = {}

    def inc(self, name, by=1):
        self.counts[name] = self.counts.get(name, 0) + by


class TestTiers:
    def test_unknown_tier_rejected(self):
        with pytest.raises(ConfigurationError, match="tier"):
            Stack("x", [PassthroughSublayer("p")], tier="verbose")

    def test_full_records_interface_and_access(self):
        stack = Stack("f", [CountingSublayer("c")])
        stack.on_transmit = lambda sdu, **meta: None
        stack.send(b"x")
        assert stack.interface_log.crossings() == 2  # app->c, c->wire
        accesses = [r for r in stack.access_log.records if r.field == "seen"]
        assert accesses and all(r.actor == "c" for r in accesses if r.kind == "write")

    def test_metrics_counts_hops_only(self):
        stack, _ = chain("metrics")
        stack.on_deliver = lambda sdu, **meta: None
        stack.send(b"x")
        stack.receive(b"y")
        assert stack.hop_counters.down == 4
        assert stack.hop_counters.up == 4
        assert stack.hop_counters.total() == 8
        assert stack.interface_log.crossings() == 0
        assert stack.access_log.records == []
        assert isinstance(stack.interface_log, NullInterfaceLog)
        assert isinstance(stack.access_log, NullAccessLog)

    def test_metrics_and_off_install_null_logs_in_state(self):
        for tier in ("metrics", "off"):
            stack = Stack("n", [CountingSublayer("c")], tier=tier)
            stack.on_transmit = lambda sdu, **meta: None
            stack.send(b"x")
            assert stack.sublayer("c").state.seen == 1  # state still works
            assert stack.access_log.records == []       # ...unrecorded

    def test_off_hops_are_direct_bound_methods(self):
        stack, sent = chain("off")
        p0, p1 = stack.sublayer("p0"), stack.sublayer("p1")
        assert p0._send_down == p1.from_above
        assert p1._deliver_up == p0.from_below
        stack.send(b"x")
        assert sent == [b"x"]

    def test_off_delivers_both_directions(self):
        stack, sent = chain("off")
        got = []
        stack.on_deliver = lambda sdu, **meta: got.append(sdu)
        stack.send(b"down")
        stack.receive(b"up")
        assert sent == [b"down"] and got == [b"up"]

    def test_meta_flows_through_every_tier(self):
        for tier in TIERS:
            stack, _ = chain(tier)
            seen = []
            stack.on_transmit = lambda sdu, **meta: seen.append(meta)
            stack.send(b"x", dst=7)
            assert seen == [{"dst": 7}]


class TestRecompilation:
    def test_span_hook_setter_recompiles(self):
        stack, sent = chain("off")
        spans = []

        class Hook:
            def __init__(self, *args):
                spans.append(args[0:3])

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

        before = stack.wiring_plan.compilations
        stack.span_hook = Hook
        assert stack.wiring_plan.compilations == before + 1
        stack.send(b"x")
        assert len(spans) == 4  # spans fire even at the off tier
        stack.span_hook = None
        spans.clear()
        stack.send(b"y")
        assert spans == []

    def test_span_tracer_attach_detach_recompiles(self):
        from repro.obs import SpanTracer

        stack, _ = chain("off")
        tracer = SpanTracer()
        tracer.attach(stack)
        stack.send(b"x")
        assert len(tracer) == 4
        tracer.detach(stack)
        stack.send(b"y")
        assert len(tracer) == 4

    @pytest.mark.parametrize("tier", TIERS)
    def test_tap_mutations_recompile(self, tier):
        stack, _ = chain(tier)
        hops = []
        tap = lambda *args: hops.append(args[0])  # noqa: E731
        plan = stack.wiring_plan

        before = plan.compilations
        stack.taps.append(tap)
        assert plan.compilations == before + 1
        stack.send(b"x")
        assert hops == ["down"] * 4

        for mutate in (
            lambda: stack.taps.remove(tap),
            lambda: stack.taps.extend([tap]),
            lambda: stack.taps.pop(),
            lambda: stack.taps.insert(0, tap),
            lambda: stack.taps.clear(),
        ):
            before = plan.compilations
            mutate()
            assert plan.compilations == before + 1

        hops.clear()
        stack.send(b"y")
        assert hops == []  # cleared taps really are compiled out

    def test_taps_assignment_rebuilds_taplist(self):
        stack, _ = chain()
        stack.taps = []
        assert isinstance(stack.taps, TapList)
        hops = []
        stack.taps.append(lambda *a: hops.append(a))
        stack.send(b"x")
        assert len(hops) == 4

    def test_wiretap_still_attaches(self):
        from repro.core.litmus import WireTap

        a, _ = chain()
        b, _ = chain()
        WireTap(a, b)
        a.send(b"x")  # tap sees hops without error


class TestEndpoints:
    def test_missing_transmit_raises_at_every_tier(self):
        for tier in TIERS:
            stack = Stack("t", [PassthroughSublayer("p")], tier=tier)
            with pytest.raises(ConfigurationError, match="on_transmit"):
                stack.send(b"x")

    def test_missing_deliver_raises_at_every_tier(self):
        for tier in TIERS:
            stack = Stack("t", [PassthroughSublayer("p")], tier=tier)
            with pytest.raises(ConfigurationError, match="on_deliver"):
                stack.receive(b"x")

    def test_lossy_delivery_counts_drops(self):
        metrics = RecordingMetrics()
        stack = Stack(
            "t", [PassthroughSublayer("p")],
            metrics=metrics, lossy_delivery=True,
        )
        stack.receive(b"x")
        stack.receive(b"y")
        assert stack.hop_counters.dropped_deliveries == 2
        assert metrics.counts["t/dropped_deliveries"] == 2

    def test_setting_sinks_recompiles(self):
        stack = Stack("t", [PassthroughSublayer("p")])
        sent, got = [], []
        stack.on_transmit = lambda sdu, **meta: sent.append(sdu)
        stack.on_deliver = lambda sdu, **meta: got.append(sdu)
        stack.send(b"a")
        stack.receive(b"b")
        assert sent == [b"a"] and got == [b"b"]


class TestSetTier:
    def test_round_trip_swaps_logs_in_place(self):
        stack, _ = chain("full", depth=2)
        stack.send(b"x")
        full_crossings = stack.interface_log.crossings()
        assert full_crossings == 3

        stack.set_tier("off")
        assert stack.tier == "off"
        stack.send(b"y")
        assert stack.interface_log.crossings() == 0

        stack.set_tier("full")
        stack.send(b"z")
        # the real log survived the excursion, old records intact
        assert stack.interface_log.crossings() == full_crossings + 3

    def test_state_and_notifications_follow_the_swap(self):
        stack = Stack("s", [CountingSublayer("c")])
        stack.on_transmit = lambda sdu, **meta: None
        stack.set_tier("off")
        stack.send(b"x")
        assert stack.access_log.records == []
        stack.set_tier("full")
        stack.send(b"y")
        assert any(r.field == "seen" for r in stack.access_log.records)

    def test_set_tier_preserves_counters_and_validates(self):
        stack, _ = chain("metrics")
        stack.send(b"x")
        assert stack.hop_counters.down == 4
        stack.set_tier("off")
        assert stack.hop_counters.down == 4
        with pytest.raises(ConfigurationError):
            stack.set_tier("loud")
        assert stack.set_tier("off") is stack  # no-op returns self


class TestSublayerIndex:
    def test_lookup_and_missing(self):
        stack, _ = chain()
        assert stack.sublayer("p1").name == "p1"
        with pytest.raises(ConfigurationError, match="p9"):
            stack.sublayer("p9")

    def test_replace_rebuilds_index(self):
        stack, _ = chain()
        twin = stack.replace("p1", PassthroughSublayer("p1"))
        assert twin.sublayer("p1") is not stack.sublayer("p1")


class TestReplaceCarriesWiring:
    """Satellite 1: the C5 fungibility path must keep its telemetry."""

    def build_instrumented(self):
        metrics = RecordingMetrics()
        stack = Stack(
            "r",
            [CountingSublayer("a"), CountingSublayer("b")],
            metrics=metrics,
            lossy_delivery=True,
        )
        sent, hops = [], []
        stack.on_transmit = lambda sdu, **meta: sent.append(sdu)
        stack.on_deliver = lambda sdu, **meta: None
        stack.taps.append(lambda *args: hops.append(args[0]))
        spans = []

        class Hook:
            def __init__(self, *args):
                spans.append(args)

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

        stack.span_hook = Hook
        return stack, metrics, sent, hops, spans

    def test_replace_keeps_logs_taps_spans_endpoints(self):
        stack, metrics, sent, hops, spans = self.build_instrumented()
        twin = stack.replace("b", CountingSublayer("b"))

        # shared telemetry instances, not fresh empty ones
        assert twin.interface_log is stack.interface_log
        assert twin.access_log is stack.access_log
        assert twin.metrics is stack.metrics
        assert twin.clock is stack.clock
        assert twin.lossy_delivery is True
        assert list(twin.taps) == list(stack.taps)
        assert twin.span_hook is stack.span_hook
        assert twin.on_transmit is stack.on_transmit
        assert twin.on_deliver is stack.on_deliver

        before = stack.interface_log.crossings()
        hops.clear()
        spans.clear()
        twin.send(b"x")
        assert sent == [b"x"]                      # carried on_transmit
        assert twin.interface_log.crossings() > before  # carried log
        assert hops == ["down"] * 3                # carried taps
        assert len(spans) == 3                     # carried span hook
        assert any(
            r.field == "seen" for r in twin.access_log.records
        )                                          # carried access log

    def test_replace_keeps_tier(self):
        stack, _ = chain("off")
        twin = stack.replace("p1", PassthroughSublayer("p1"))
        assert twin.tier == "off"
        assert twin.interface_log.crossings() == 0
        p0, p1 = twin.sublayer("p0"), twin.sublayer("p1")
        assert p0._send_down == p1.from_above


class TestHopCounters:
    def test_snapshot_and_reset(self):
        counters = HopCounters()
        counters.down = 3
        counters.up = 2
        counters.dropped_deliveries = 1
        assert counters.total() == 5
        assert counters.snapshot() == {
            "down": 3, "up": 2, "dropped_deliveries": 1,
        }
        counters.reset()
        assert counters.total() == 0
        assert "down=0" in repr(counters)
