"""Tests for the ARQ error-recovery sublayers.

Each scheme runs as a 1-sublayer stack pair over an impaired simulated
link; the service contract is exactly-once in-order delivery.
"""

import random

import pytest

from repro.core.bits import Bits
from repro.core.errors import ConfigurationError
from repro.core.stack import Stack
from repro.datalink.arq import (
    ARQ_SCHEMES,
    GoBackNArq,
    SelectiveRepeatArq,
    StopAndWaitArq,
    _fold,
    _unfold,
)
from repro.sim import DuplexLink, LinkConfig, Simulator


def make_pair(scheme_cls, sim, link_config, seed=0, **kwargs):
    a = Stack("a", [scheme_cls("arq", **kwargs)], clock=sim.clock())
    b = Stack("b", [scheme_cls("arq", **kwargs)], clock=sim.clock())
    duplex = DuplexLink(
        sim,
        link_config,
        rng_forward=random.Random(seed),
        rng_reverse=random.Random(seed + 1),
    )
    duplex.attach(a, b)
    received = []
    b.on_deliver = lambda bits, **m: received.append(bits.to_bytes())
    return a, b, received


def payloads(n):
    return [f"msg-{i:03d}".encode() for i in range(n)]


class TestSeqArithmetic:
    def test_fold(self):
        assert _fold(300) == 44

    def test_unfold_identity(self):
        assert _unfold(100, _fold(100)) == 100

    def test_unfold_ahead(self):
        assert _unfold(250, _fold(260)) == 260

    def test_unfold_wraps_forward(self):
        # wire value "behind" the reference maps forward
        assert _unfold(10, 5) == 261 - 6 + 10 % 256 or True
        assert _unfold(10, 5) == 10 + ((5 - 10) % 256)


@pytest.mark.parametrize("scheme", sorted(ARQ_SCHEMES))
class TestAllSchemes:
    def test_clean_link_in_order(self, scheme):
        sim = Simulator()
        a, b, received = make_pair(
            ARQ_SCHEMES[scheme], sim, LinkConfig(delay=0.01)
        )
        msgs = payloads(20)
        for m in msgs:
            a.send(Bits.from_bytes(m))
        sim.run(until=30)
        assert received == msgs

    def test_lossy_link_exactly_once(self, scheme):
        sim = Simulator()
        a, b, received = make_pair(
            ARQ_SCHEMES[scheme],
            sim,
            LinkConfig(delay=0.01, loss=0.2),
            retransmit_timeout=0.1,
        )
        msgs = payloads(25)
        for m in msgs:
            a.send(Bits.from_bytes(m))
        sim.run(until=120)
        assert received == msgs

    def test_duplicating_reordering_link(self, scheme):
        sim = Simulator()
        a, b, received = make_pair(
            ARQ_SCHEMES[scheme],
            sim,
            LinkConfig(delay=0.01, duplicate=0.2, reorder_jitter=0.03),
            retransmit_timeout=0.15,
        )
        msgs = payloads(25)
        for m in msgs:
            a.send(Bits.from_bytes(m))
        sim.run(until=120)
        assert received == msgs

    def test_retransmissions_happen_under_loss(self, scheme):
        sim = Simulator()
        a, b, received = make_pair(
            ARQ_SCHEMES[scheme],
            sim,
            LinkConfig(delay=0.01, loss=0.3),
            retransmit_timeout=0.1,
        )
        for m in payloads(10):
            a.send(Bits.from_bytes(m))
        sim.run(until=60)
        assert a.sublayer("arq").state.snapshot()["data_retransmitted"] > 0

    def test_corrupt_flag_treated_as_loss(self, scheme):
        sim = Simulator()
        a, b, received = make_pair(
            ARQ_SCHEMES[scheme], sim, LinkConfig(delay=0.01),
            retransmit_timeout=0.1,
        )
        arq_b = b.sublayer("arq")
        # inject a corrupt frame directly
        b.receive(Bits.from_bytes(b"\x00" * 4), corrupt=True)
        assert arq_b.state.snapshot()["corrupt_dropped"] == 1
        # normal traffic still flows
        a.send(Bits.from_bytes(b"after"))
        sim.run(until=10)
        assert received == [b"after"]

    def test_runt_frame_dropped(self, scheme):
        sim = Simulator()
        a, b, received = make_pair(
            ARQ_SCHEMES[scheme], sim, LinkConfig(delay=0.01)
        )
        b.receive(Bits.from_string("0101"))
        assert b.sublayer("arq").state.snapshot()["corrupt_dropped"] == 1

    def test_gives_up_on_dead_link(self, scheme):
        sim = Simulator()
        a, b, received = make_pair(
            ARQ_SCHEMES[scheme],
            sim,
            LinkConfig(delay=0.01, loss=1.0),
            retransmit_timeout=0.05,
            max_retries=3,
        )
        a.send(Bits.from_bytes(b"doomed"))
        sim.run(until=30)
        assert received == []
        assert a.sublayer("arq").state.snapshot()["given_up"] == 1


class TestSchemeSpecific:
    def test_stop_and_wait_single_frame_in_flight(self):
        sim = Simulator()
        sent_frames = []
        a = Stack("a", [StopAndWaitArq("arq")], clock=sim.clock())
        a.on_transmit = lambda bits, **m: sent_frames.append(bits)
        for m in payloads(5):
            a.send(Bits.from_bytes(m))
        # with no acks ever returning, only one data frame is emitted
        assert len(sent_frames) == 1

    def test_gbn_fills_window(self):
        sim = Simulator()
        sent_frames = []
        a = Stack("a", [GoBackNArq("arq", window=4)], clock=sim.clock())
        a.on_transmit = lambda bits, **m: sent_frames.append(bits)
        for m in payloads(10):
            a.send(Bits.from_bytes(m))
        assert len(sent_frames) == 4

    def test_gbn_window_validation(self):
        with pytest.raises(ConfigurationError):
            GoBackNArq("arq", window=0)

    def test_sr_buffers_out_of_order(self):
        sim = Simulator()
        b = Stack("b", [SelectiveRepeatArq("arq", window=8)], clock=sim.clock())
        received = []
        b.on_deliver = lambda bits, **m: received.append(bits.to_bytes())
        acks = []
        b.on_transmit = lambda bits, **m: acks.append(bits)
        from repro.datalink.arq import ARQ_HEADER, KIND_DATA

        def data_frame(seq, payload):
            return ARQ_HEADER.pack(
                {"kind": KIND_DATA, "seq": seq, "ack": 0}
            ) + Bits.from_bytes(payload)

        b.receive(data_frame(1, b"second"))
        assert received == []  # buffered, waiting for 0
        b.receive(data_frame(0, b"first!"))
        assert received == [b"first!", b"second"]

    def test_sr_per_packet_timers(self):
        """Under loss, selective repeat retransmits fewer frames than
        go-back-N for the same traffic (it only repeats the lost ones)."""
        results = {}
        for scheme in ("go-back-n", "selective-repeat"):
            sim = Simulator()
            a, b, received = make_pair(
                ARQ_SCHEMES[scheme],
                sim,
                LinkConfig(delay=0.02, loss=0.25),
                seed=42,
                retransmit_timeout=0.2,
                window=8,
            )
            msgs = payloads(40)
            for m in msgs:
                a.send(Bits.from_bytes(m))
            sim.run(until=300)
            assert received == msgs
            results[scheme] = a.sublayer("arq").state.snapshot()[
                "data_retransmitted"
            ]
        assert results["selective-repeat"] < results["go-back-n"]

    def test_negative_timeout_rejected(self):
        with pytest.raises(ConfigurationError):
            StopAndWaitArq("arq", retransmit_timeout=0)
