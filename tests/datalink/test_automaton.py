"""Tests for the KMP match automaton."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bits import Bits, all_bitstrings
from repro.datalink.framing.automaton import MatchAutomaton


def naive_find_all(pattern: Bits, stream: Bits):
    return [
        end
        for end in range(len(pattern), len(stream) + 1)
        if stream[end - len(pattern) : end] == pattern
    ]


class TestConstruction:
    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            MatchAutomaton(Bits())

    def test_size(self):
        assert MatchAutomaton(Bits.from_string("101")).size == 3


class TestStep:
    def test_match_progress(self):
        auto = MatchAutomaton(Bits.from_string("11"))
        state, done = auto.step(0, 1)
        assert (state, done) == (1, False)
        state, done = auto.step(1, 1)
        assert done

    def test_mismatch_falls_back(self):
        auto = MatchAutomaton(Bits.from_string("10"))
        state, done = auto.step(1, 1)  # saw "1", another "1": suffix "1" matches
        assert (state, done) == (1, False)

    def test_overlap_state_for_bordered_pattern(self):
        # pattern 101 has border "1": after a match the state is 1
        auto = MatchAutomaton(Bits.from_string("101"))
        state, done = auto.step(2, 1)
        assert done
        assert state == 1

    def test_overlap_state_unbordered(self):
        auto = MatchAutomaton(Bits.from_string("10"))
        state, done = auto.step(1, 0)
        assert done
        assert state == 0


class TestAgainstNaive:
    @pytest.mark.parametrize(
        "pattern", ["1", "0", "11", "10", "101", "11111", "01111110", "00000010"]
    )
    def test_find_all_matches_naive_exhaustive(self, pattern):
        auto = MatchAutomaton(Bits.from_string(pattern))
        for stream in all_bitstrings(9):
            assert auto.find_all(stream) == naive_find_all(auto.pattern, stream)

    @given(
        st.text(alphabet="01", min_size=1, max_size=8),
        st.text(alphabet="01", max_size=200),
    )
    def test_find_all_matches_naive_random(self, pattern, stream):
        p, s = Bits.from_string(pattern), Bits.from_string(stream)
        assert MatchAutomaton(p).find_all(s) == naive_find_all(p, s)

    @given(
        st.text(alphabet="01", min_size=1, max_size=8),
        st.text(alphabet="01", max_size=64),
    )
    def test_state_for_is_longest_proper_prefix_suffix(self, pattern, stream):
        p, s = Bits.from_string(pattern), Bits.from_string(stream)
        state = MatchAutomaton(p).state_for(s)
        # reference: longest suffix of s that is a proper prefix of p
        best = 0
        for length in range(1, min(len(s), len(p) - 1) + 1):
            if s[len(s) - length :] == p[:length]:
                best = length
        assert state == best
