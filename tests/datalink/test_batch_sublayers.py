"""Vectorized hot sublayers: batch paths mirror the scalar paths.

Each hot sublayer (line coding, bit stuffing, flags, COBS, error
detection, ARQ) overrides ``from_above_batch``/``from_below_batch``;
these tests run each one in a single-sublayer stack at ``tier=full``
(chain walk, full books) and assert scalar loops and batch calls give
byte-identical outputs, counters, and drop behaviour — including on
malformed input.
"""

import pytest

from repro.core import Stack
from repro.core.bits import Bits
from repro.datalink.errordetect import ErrorDetectSublayer, InternetChecksum
from repro.datalink.framing.cobs import CobsFramingSublayer
from repro.datalink.framing.sublayers import FlagSublayer, StuffingSublayer
from repro.phys.encodings import Manchester
from repro.phys.sublayer import EncodingSublayer

PAYLOADS = [Bits.from_bytes(bytes([i, 0x7E, i ^ 0xFF, 0x00])) for i in range(8)]


def harness(sublayer):
    stack = Stack("one", [sublayer], tier="full")
    sent, delivered = [], []
    stack.on_transmit = lambda sdu, **meta: sent.append(sdu)
    stack.on_deliver = lambda sdu, **meta: delivered.append(sdu)
    return stack, sent, delivered


@pytest.mark.parametrize(
    "factory",
    [
        lambda: EncodingSublayer(code=Manchester()),
        lambda: StuffingSublayer(),
        lambda: FlagSublayer(),
        lambda: CobsFramingSublayer(),
        lambda: ErrorDetectSublayer(code=InternetChecksum()),
    ],
    ids=["encoding", "stuffing", "flags", "cobs", "errordetect"],
)
def test_down_batch_matches_scalar_loop(factory):
    scalar_stack, scalar_sent, _ = harness(factory())
    for payload in PAYLOADS:
        scalar_stack.send(payload)
    batch_stack, batch_sent, _ = harness(factory())
    batch_stack.send_batch(PAYLOADS)
    assert batch_sent == scalar_sent
    assert (
        batch_stack.sublayers[0].state.snapshot()
        == scalar_stack.sublayers[0].state.snapshot()
    )


@pytest.mark.parametrize(
    "factory",
    [
        lambda: EncodingSublayer(code=Manchester()),
        lambda: StuffingSublayer(),
        lambda: FlagSublayer(),
        lambda: CobsFramingSublayer(),
        lambda: ErrorDetectSublayer(code=InternetChecksum()),
    ],
    ids=["encoding", "stuffing", "flags", "cobs", "errordetect"],
)
def test_up_batch_matches_scalar_loop(factory):
    # produce valid wire units with the same sublayer type
    producer, wire_units, _ = harness(factory())
    producer.send_batch(PAYLOADS)
    # corrupt one unit so the error paths run too
    mangled = list(wire_units)
    mangled[3] = Bits.from_bytes(b"\x55\x55")

    scalar_stack, _, scalar_up = harness(factory())
    for unit in mangled:
        scalar_stack.receive(unit)
    batch_stack, _, batch_up = harness(factory())
    batch_stack.receive_batch(mangled)
    assert batch_up == scalar_up
    assert (
        batch_stack.sublayers[0].state.snapshot()
        == scalar_stack.sublayers[0].state.snapshot()
    )


def test_flag_stream_mode_batch_falls_back_to_scalar_semantics():
    producer, wire_units, _ = harness(FlagSublayer())
    producer.send_batch(PAYLOADS[:4])
    # one Bits unit containing all four frames back to back
    stream = Bits()
    for unit in wire_units:
        stream = stream + unit

    scalar_stack, _, scalar_up = harness(FlagSublayer(stream_mode=True))
    scalar_stack.receive(stream)
    for unit in wire_units:
        scalar_stack.receive(unit)

    batch_stack, _, batch_up = harness(FlagSublayer(stream_mode=True))
    batch_stack.receive(stream)
    batch_stack.receive_batch(wire_units)
    assert batch_up == scalar_up


def test_errordetect_batch_marks_corrupt_meta():
    producer, wire_units, _ = harness(ErrorDetectSublayer(code=InternetChecksum()))
    producer.send_batch(PAYLOADS[:2])
    mangled = [wire_units[0], wire_units[1] + Bits([1])]

    got = []
    stack = Stack("one", [ErrorDetectSublayer(code=InternetChecksum())], tier="full")
    stack.on_transmit = lambda sdu, **meta: None
    stack.on_deliver = lambda sdu, **meta: got.append(meta.get("corrupt"))
    stack.receive_batch(mangled)
    assert got[0] is False
    assert got[1] is True
