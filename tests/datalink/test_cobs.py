"""Tests for COBS framing — the re-partitioning replacement."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bits import Bits
from repro.core.errors import FramingError
from repro.datalink import collect_bytes, connect_hdlc_pair, send_bytes
from repro.datalink.framing import CobsFramingSublayer, cobs_decode, cobs_encode
from repro.sim import LinkConfig, Simulator


class TestCodec:
    def test_empty(self):
        assert cobs_decode(cobs_encode(b"")) == b""

    def test_no_zeros_in_output(self):
        data = bytes(range(256)) * 2
        assert 0 not in cobs_encode(data)

    def test_known_vectors(self):
        # classic COBS examples
        assert cobs_encode(b"\x00") == b"\x01\x01"
        assert cobs_encode(b"\x00\x00") == b"\x01\x01\x01"
        assert cobs_encode(b"\x11\x22\x00\x33") == b"\x03\x11\x22\x02\x33"
        assert cobs_encode(b"\x11\x22\x33\x44") == b"\x05\x11\x22\x33\x44"

    def test_254_nonzero_block(self):
        data = bytes(range(1, 255))  # exactly 254 non-zero bytes
        assert cobs_encode(data) == b"\xff" + data + b"\x01"
        assert cobs_decode(cobs_encode(data)) == data

    @given(st.binary(max_size=1024))
    def test_roundtrip_property(self, data):
        encoded = cobs_encode(data)
        assert 0 not in encoded
        assert cobs_decode(encoded) == data

    @given(st.binary(max_size=1024))
    def test_overhead_bound(self, data):
        # one byte per started 254-byte run, plus the leading code byte
        overhead = len(cobs_encode(data)) - len(data)
        assert 1 <= overhead <= max(1, (len(data) + 253) // 254 + 1)

    def test_decode_rejects_embedded_zero(self):
        with pytest.raises(FramingError):
            cobs_decode(b"\x03\x11\x00")

    def test_decode_rejects_overrun(self):
        with pytest.raises(FramingError):
            cobs_decode(b"\x05\x11")


class TestSublayer:
    def make_pair(self):
        from repro.core.stack import Stack

        tx = Stack("tx", [CobsFramingSublayer("framing")])
        rx = Stack("rx", [CobsFramingSublayer("framing")])
        got = []
        rx.on_deliver = lambda bits, **m: got.append(bits.to_bytes())
        tx.on_transmit = lambda bits, **m: rx.receive(bits)
        return tx, rx, got

    def test_roundtrip_through_sublayer(self):
        tx, rx, got = self.make_pair()
        tx.send(Bits.from_bytes(b"payload with \x00 zeros \x00!"))
        assert got == [b"payload with \x00 zeros \x00!"]

    def test_unaligned_frame_rejected(self):
        tx, _, _ = self.make_pair()
        with pytest.raises(FramingError):
            tx.send(Bits.from_string("010"))

    def test_corrupt_frame_dropped(self):
        tx, rx, got = self.make_pair()
        rx.receive(Bits.from_bytes(b"\x05\x11\x00"))  # malformed
        assert got == []
        assert rx.sublayer("framing").state.snapshot()["framing_errors"] == 1

    def test_missing_delimiter_dropped(self):
        tx, rx, got = self.make_pair()
        rx.receive(Bits.from_bytes(b"\x02\x11"))  # no trailing zero
        assert got == []


class TestRepartitioningSwap:
    """The two-sublayer bit-stuffed framing and the one-sublayer COBS
    framing are interchangeable under the rest of the stack."""

    @pytest.mark.parametrize("framing", ["bitstuff", "cobs"])
    def test_full_stack_with_either_framing(self, framing):
        sim = Simulator()
        a, b, _ = connect_hdlc_pair(
            sim,
            LinkConfig(delay=0.01, loss=0.08, bit_error_rate=0.0005),
            retransmit_timeout=0.1,
            framing=framing,
        )
        received = collect_bytes(b)
        frames = [bytes([i]) * 20 for i in range(15)]
        for frame in frames:
            send_bytes(a, frame)
        sim.run(until=60)
        assert received == frames

    def test_stack_orders(self):
        sim = Simulator()
        bit = connect_hdlc_pair(sim, framing="bitstuff")[0]
        cob = connect_hdlc_pair(sim, framing="cobs")[0]
        assert bit.order() == [
            "recovery", "errordetect", "stuffing", "flags", "encoding",
        ]
        assert cob.order() == ["recovery", "errordetect", "framing", "encoding"]

    def test_unknown_framing_rejected(self):
        from repro.core.errors import ConfigurationError

        sim = Simulator()
        with pytest.raises(ConfigurationError):
            connect_hdlc_pair(sim, framing="bogus")
