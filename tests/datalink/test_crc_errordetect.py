"""Tests for the CRC engine and error-detection sublayer."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bits import Bits
from repro.core.stack import Stack
from repro.datalink.crc import (
    CRC8,
    CRC16_ARC,
    CRC16_CCITT,
    CRC32,
    CRC64_ECMA,
    CRC_SPECS,
)
from repro.datalink.errordetect import (
    CrcCode,
    ErrorDetectSublayer,
    InternetChecksum,
    ParityByte,
)

CHECK = b"123456789"

# Published check values for the rocksoft parameter sets.
CHECK_VALUES = {
    "crc8": 0xF4,
    "crc16-ccitt": 0x29B1,
    "crc16-arc": 0xBB3D,
    "crc32": 0xCBF43926,
    "crc64-ecma": 0x6C40DF5F0B497347,
}


class TestCrcSpecs:
    @pytest.mark.parametrize("name,expected", sorted(CHECK_VALUES.items()))
    def test_published_check_values(self, name, expected):
        assert CRC_SPECS[name].compute(CHECK) == expected

    def test_append_verify_roundtrip(self):
        framed = CRC32.append(b"hello world")
        assert CRC32.verify(framed)

    def test_verify_rejects_flip(self):
        framed = bytearray(CRC32.append(b"hello world"))
        framed[3] ^= 0x40
        assert not CRC32.verify(bytes(framed))

    def test_verify_rejects_short_input(self):
        assert not CRC32.verify(b"abc")

    @given(st.binary(max_size=64))
    def test_roundtrip_property_crc32(self, data):
        assert CRC32.verify(CRC32.append(data))

    @given(st.binary(min_size=1, max_size=64), st.integers(0, 7))
    def test_single_bit_flip_always_detected_crc32(self, data, bit):
        """CRC-32 detects every single-bit error."""
        framed = bytearray(CRC32.append(data))
        framed[len(framed) // 2] ^= 1 << bit
        assert not CRC32.verify(bytes(framed))

    def test_burst_detection_crc16(self):
        """CRC-16 detects all bursts up to 16 bits."""
        rng = random.Random(0)
        data = bytes(rng.randrange(256) for _ in range(32))
        framed = CRC16_CCITT.append(data)
        bits = list(Bits.from_bytes(framed))
        for start in range(0, len(bits) - 16, 7):
            corrupted = list(bits)
            for i in range(start, start + 16):
                corrupted[i] ^= 1
            assert not CRC16_CCITT.verify(Bits(corrupted).to_bytes())


class TestDetectionCodes:
    def test_internet_checksum_known(self):
        # all-zero data checksums to 0xFFFF
        assert InternetChecksum().compute(b"\x00\x00") == b"\xff\xff"

    def test_internet_checksum_odd_length(self):
        code = InternetChecksum()
        assert code.verify(b"abc", code.compute(b"abc"))

    def test_parity(self):
        assert ParityByte().compute(b"\x01\x02\x04") == b"\x07"

    def test_parity_misses_double_flip(self):
        """Parity is weak: two flips of the same bit position pass."""
        code = ParityByte()
        data = b"\x00\x00"
        trailer = code.compute(data)
        assert code.verify(b"\x01\x01", trailer)

    def test_crc_code_adapter(self):
        code = CrcCode(CRC16_CCITT)
        assert code.trailer_bytes == 2
        assert code.verify(CHECK, code.compute(CHECK))


class TestErrorDetectSublayer:
    def make_pair(self, code=None):
        tx = Stack("tx", [ErrorDetectSublayer("ed", code or CrcCode(CRC32))])
        rx = Stack("rx", [ErrorDetectSublayer("ed", code or CrcCode(CRC32))])
        delivered = []
        rx.on_deliver = lambda bits, corrupt=False, **m: delivered.append(
            (bits, corrupt)
        )
        return tx, rx, delivered

    def test_clean_frame_flagged_ok(self):
        tx, rx, delivered = self.make_pair()
        tx.on_transmit = lambda bits, **m: rx.receive(bits)
        tx.send(Bits.from_bytes(b"payload!"))
        assert delivered == [(Bits.from_bytes(b"payload!"), False)]

    def test_corrupt_frame_flagged(self):
        tx, rx, delivered = self.make_pair()
        captured = []
        tx.on_transmit = lambda bits, **m: captured.append(bits)
        tx.send(Bits.from_bytes(b"payload!"))
        flipped = list(captured[0])
        flipped[5] ^= 1
        rx.receive(Bits(flipped))
        assert len(delivered) == 1
        assert delivered[0][1] is True

    def test_mangled_length_flagged(self):
        _, rx, delivered = self.make_pair()
        rx.receive(Bits.from_string("0101"))  # not byte aligned, too short
        assert delivered[0][1] is True

    def test_trailer_grows_frame(self):
        tx, rx, _ = self.make_pair(CrcCode(CRC64_ECMA))
        captured = []
        tx.on_transmit = lambda bits, **m: captured.append(bits)
        tx.send(Bits.from_bytes(b"x"))
        assert len(captured[0]) == 8 + 64

    def test_swap_code_transparent(self):
        """Swapping CRC-32 for CRC-64 changes only this sublayer."""
        for spec in (CRC32, CRC64_ECMA):
            tx, rx, delivered = self.make_pair(CrcCode(spec))
            tx.on_transmit = lambda bits, **m: rx.receive(bits)
            tx.send(Bits.from_bytes(b"same payload"))
            assert delivered[-1] == (Bits.from_bytes(b"same payload"), False)

    def test_counters(self):
        tx, rx, _ = self.make_pair()
        tx.on_transmit = lambda bits, **m: rx.receive(bits)
        tx.send(Bits.from_bytes(b"a"))
        assert tx.sublayer("ed").state.snapshot()["protected"] == 1
        assert rx.sublayer("ed").state.snapshot()["verified"] == 1
