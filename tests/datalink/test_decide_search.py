"""Tests for the validity decision procedure and the rule search.

The key soundness test: the exact automaton-product decision agrees
with bounded exhaustive checking over the whole prefix-rule space.
"""

import pytest

from repro.core.bits import Bits, all_bitstrings
from repro.datalink.framing import (
    HDLC_RULE,
    LOW_OVERHEAD_RULE,
    StuffingRule,
    check_roundtrip_bounded,
    check_spec_bounded,
    check_stream_bounded,
    decide_valid,
    decide_valid_stream,
    find_valid_rules,
    prefix_rule,
    prefix_rule_space,
    substring_rule_space,
)


class TestDecide:
    def test_hdlc_valid(self):
        assert decide_valid(HDLC_RULE)
        assert decide_valid_stream(HDLC_RULE)

    def test_low_overhead_valid_frame_mode(self):
        assert decide_valid(LOW_OVERHEAD_RULE)

    def test_low_overhead_invalid_stream_mode(self):
        """A reproduction finding: the paper's low-overhead rule (flag
        00000010) is valid for a receiver that rescans from the body
        start, but NOT for a continuous-scan receiver — the flag's
        1-bit self-border ("0") lets a false flag span the opening
        delimiter and body bits the trigger never fires on.  The brute
        force stream check agrees with the decision procedure."""
        assert not decide_valid_stream(LOW_OVERHEAD_RULE)
        assert check_stream_bounded(LOW_OVERHEAD_RULE, 8) is not None

    def test_non_progressive_invalid(self):
        rule = StuffingRule(Bits.from_string("01111110"), Bits.from_string("111"), 1)
        verdict = decide_valid(rule)
        assert not verdict
        assert "progressive" in verdict.reason

    def test_known_bad_rule(self):
        # stuffing 1 after 1111110 for flag 01111110: the stuffed bit
        # plus preceding data can form the flag
        rule = StuffingRule(
            Bits.from_string("01111110"), Bits.from_string("1111110"), 1
        )
        assert not decide_valid(rule)
        # and brute force agrees with a concrete counterexample
        assert check_spec_bounded(rule, 9) is not None

    def test_stream_stricter_than_frame(self):
        frame_ok = {True: 0, False: 0}
        disagreements = []
        for flag in list(all_bitstrings(6)):
            rule = prefix_rule(flag, 5)
            f, s = bool(decide_valid(rule)), bool(decide_valid_stream(rule))
            if s and not f:
                disagreements.append(rule)
        # stream validity must imply frame validity
        assert disagreements == []

    def test_verdict_truthiness(self):
        assert bool(decide_valid(HDLC_RULE)) is True


class TestBoundedChecks:
    def test_roundtrip_bounded_clean(self):
        assert check_roundtrip_bounded(HDLC_RULE, 8) is None

    def test_spec_bounded_clean(self):
        assert check_spec_bounded(HDLC_RULE, 8) is None

    def test_stream_bounded_clean(self):
        assert check_stream_bounded(HDLC_RULE, 6) is None

    def test_spec_bounded_finds_counterexample(self):
        rule = StuffingRule(
            Bits.from_string("01111110"), Bits.from_string("1111110"), 1
        )
        counterexample = check_spec_bounded(rule, 9)
        assert counterexample is not None
        (data,) = counterexample
        assert isinstance(data, Bits)


class TestDecisionAgreesWithBruteForce:
    """Cross-validation: decision procedure vs exhaustive checking."""

    @pytest.mark.parametrize("flag_bits,max_len", [(4, 9), (5, 9)])
    def test_frame_semantics_agreement(self, flag_bits, max_len):
        for flag in all_bitstrings(flag_bits):
            for k in range(1, flag_bits):
                rule = prefix_rule(flag, k)
                if not rule.progressive:
                    continue
                decided = bool(decide_valid(rule))
                brute = check_spec_bounded(rule, max_len) is None
                assert decided == brute, rule.label()

    def test_stream_semantics_agreement_sample(self):
        for flag in all_bitstrings(5):
            rule = prefix_rule(flag, 4)
            if not rule.progressive:
                continue
            decided = bool(decide_valid_stream(rule))
            brute = check_stream_bounded(rule, 7) is None
            assert decided == brute, rule.label()


class TestSearch:
    def test_prefix_space_size(self):
        rules = list(prefix_rule_space(flag_bits=4))
        assert len(rules) == 16 * 3

    def test_prefix_space_contains_low_overhead_rule(self):
        assert LOW_OVERHEAD_RULE in list(prefix_rule_space(flag_bits=8))

    def test_substring_space_contains_hdlc(self):
        assert HDLC_RULE in list(substring_rule_space(flag_bits=8))

    def test_find_valid_rules_small_space(self):
        result = find_valid_rules(prefix_rule_space(flag_bits=5))
        assert result.candidates == 32 * 4
        assert 0 < result.valid_count < result.candidates
        for rule in result.valid:
            assert check_spec_bounded(rule, 8) is None, rule.label()

    def test_stream_semantics_is_stricter(self):
        frame = find_valid_rules(prefix_rule_space(flag_bits=6), "frame")
        stream = find_valid_rules(prefix_rule_space(flag_bits=6), "stream")
        assert stream.valid_count < frame.valid_count
        stream_set = {(r.flag, r.trigger, r.stuff_bit) for r in stream.valid}
        frame_set = {(r.flag, r.trigger, r.stuff_bit) for r in frame.valid}
        assert stream_set <= frame_set

    def test_unknown_semantics_rejected(self):
        with pytest.raises(ValueError):
            find_valid_rules(prefix_rule_space(flag_bits=4), "bogus")

    def test_ranked_by_overhead(self):
        result = find_valid_rules(prefix_rule_space(flag_bits=5))
        ranked = result.ranked_by_overhead()
        costs = [cost for _, cost in ranked]
        assert costs == sorted(costs)

    def test_better_than(self):
        result = find_valid_rules(
            prefix_rule_space(flag_bits=8, trigger_lengths=iter([7]))
        )
        better = result.better_than(HDLC_RULE)
        assert LOW_OVERHEAD_RULE in better

    def test_distinct_flags(self):
        result = find_valid_rules(prefix_rule_space(flag_bits=5))
        assert result.distinct_flags() <= 32
