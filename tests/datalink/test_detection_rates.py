"""Quantifying "the probability of undetected bit errors [is] very
small" (Section 2.1): undetected-corruption rates per detection code.

Random corruptions are applied directly to protected frames; a
*miss* is a corrupted frame the code accepts.  CRCs must be orders of
magnitude better than parity — the reason the sublayer exists and the
reason swapping CRC width is worth having as a one-line change.
"""

import random

import pytest

from repro.datalink.crc import CRC8, CRC16_CCITT, CRC32
from repro.datalink.errordetect import CrcCode, InternetChecksum, ParityByte

TRIALS = 3000
FRAME_BYTES = 64


def miss_rate(code, rng: random.Random, burst: int) -> float:
    """Fraction of corrupted frames the code fails to detect."""
    misses = 0
    for _ in range(TRIALS):
        data = bytes(rng.randrange(256) for _ in range(FRAME_BYTES))
        trailer = code.compute(data)
        corrupted = bytearray(data)
        # corrupt `burst` random byte positions
        positions = rng.sample(range(FRAME_BYTES), burst)
        for position in positions:
            flip = rng.randrange(1, 256)
            corrupted[position] ^= flip
        if bytes(corrupted) == data:
            continue
        if code.verify(bytes(corrupted), trailer):
            misses += 1
    return misses / TRIALS


class TestDetectionRates:
    def test_crc32_catches_everything_in_sample(self):
        rate = miss_rate(CrcCode(CRC32), random.Random(1), burst=4)
        assert rate == 0.0

    def test_crc16_miss_rate_near_two_to_minus_16(self):
        # expected ~2^-16; with 3000 trials anything beyond a stray
        # single miss would indicate a broken implementation
        rate = miss_rate(CrcCode(CRC16_CCITT), random.Random(2), burst=4)
        assert rate <= 2 / TRIALS

    def test_crc8_misses_roughly_one_in_256(self):
        rate = miss_rate(CrcCode(CRC8), random.Random(3), burst=6)
        assert 0.0 < rate < 0.02  # ~2^-8 with sampling noise

    def test_parity_misses_often(self):
        """XOR parity passes whenever the byte-XOR of the changes is
        zero — easy to hit with multi-byte corruption."""
        rng = random.Random(4)
        misses = 0
        code = ParityByte()
        for _ in range(TRIALS):
            data = bytes(rng.randrange(256) for _ in range(FRAME_BYTES))
            trailer = code.compute(data)
            corrupted = bytearray(data)
            flip = rng.randrange(1, 256)
            a, b = rng.sample(range(FRAME_BYTES), 2)
            corrupted[a] ^= flip
            corrupted[b] ^= flip  # same flip twice: parity-invariant
            if code.verify(bytes(corrupted), trailer):
                misses += 1
        assert misses == TRIALS  # parity misses this pattern every time

    def test_internet_checksum_between_parity_and_crc(self):
        rate = miss_rate(InternetChecksum(), random.Random(5), burst=6)
        assert rate < 0.01  # ~2^-16 in theory; zero-ish in sample

    def test_ordering_of_codes(self):
        """The strength ordering the swap experiment relies on."""
        rng = random.Random(6)
        crc8 = miss_rate(CrcCode(CRC8), random.Random(7), burst=6)
        crc32 = miss_rate(CrcCode(CRC32), random.Random(8), burst=6)
        assert crc32 <= crc8
