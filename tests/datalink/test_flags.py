"""Tests for the flag sublayer mechanisms and the frame assembler."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bits import Bits
from repro.core.errors import ConfigurationError, FramingError
from repro.datalink.framing import (
    HDLC_RULE,
    FlagSublayer,
    FrameAssembler,
    add_flags,
    frame_stream,
    remove_flags,
    stuff,
)

FLAG = HDLC_RULE.flag


class TestAddRemoveFlags:
    def test_add_flags_shape(self):
        body = Bits.from_string("1010")
        framed = add_flags(body, HDLC_RULE)
        assert framed == FLAG + body + FLAG

    def test_remove_flags_roundtrip(self):
        body = stuff(Bits.from_string("110101"), HDLC_RULE)
        assert remove_flags(add_flags(body, HDLC_RULE), HDLC_RULE) == body

    def test_remove_flags_empty_body(self):
        assert remove_flags(FLAG + FLAG, HDLC_RULE) == Bits()

    def test_no_opening_flag(self):
        with pytest.raises(FramingError):
            remove_flags(Bits.from_string("10101010"), HDLC_RULE)

    def test_no_closing_flag(self):
        with pytest.raises(FramingError):
            remove_flags(FLAG + Bits.from_string("1010"), HDLC_RULE)

    def test_leading_garbage_skipped(self):
        body = Bits.from_string("0000")
        framed = Bits.from_string("10101") + add_flags(body, HDLC_RULE)
        assert remove_flags(framed, HDLC_RULE) == body

    def test_false_flag_in_body_truncates(self):
        # unstuffed body containing the flag: receiver stops early —
        # the hazard stuffing exists to prevent
        body = Bits.from_string("01") + FLAG + Bits.from_string("10")
        recovered = remove_flags(add_flags(body, HDLC_RULE), HDLC_RULE)
        assert recovered == Bits.from_string("01")

    @given(st.text(alphabet="01", max_size=128))
    def test_roundtrip_for_stuffed_bodies(self, text):
        body = stuff(Bits.from_string(text), HDLC_RULE)
        assert remove_flags(add_flags(body, HDLC_RULE), HDLC_RULE) == body


class TestFrameStream:
    def test_empty(self):
        assert frame_stream([], HDLC_RULE) == Bits()

    def test_single_frame(self):
        body = Bits.from_string("0000")
        assert frame_stream([body], HDLC_RULE) == FLAG + body + FLAG

    def test_back_to_back_share_delimiter(self):
        b1, b2 = Bits.from_string("0000"), Bits.from_string("0101")
        stream = frame_stream([b1, b2], HDLC_RULE)
        assert stream == FLAG + b1 + FLAG + b2 + FLAG

    def test_idle_flags(self):
        body = Bits.from_string("0000")
        stream = frame_stream([body], HDLC_RULE, idle_flags=2)
        assert stream == FLAG + body + FLAG + FLAG + FLAG


class TestFrameAssembler:
    def test_single_frame(self):
        body = stuff(Bits.from_string("110011"), HDLC_RULE)
        assembler = FrameAssembler(HDLC_RULE)
        assert assembler.push(frame_stream([body], HDLC_RULE)) == [body]

    def test_back_to_back_frames(self):
        b1 = stuff(Bits.from_string("1100"), HDLC_RULE)
        b2 = stuff(Bits.from_string("0011"), HDLC_RULE)
        assembler = FrameAssembler(HDLC_RULE)
        assert assembler.push(frame_stream([b1, b2], HDLC_RULE)) == [b1, b2]

    def test_incremental_push(self):
        body = stuff(Bits.from_string("101010"), HDLC_RULE)
        stream = frame_stream([body], HDLC_RULE)
        assembler = FrameAssembler(HDLC_RULE)
        got = []
        for i in range(len(stream)):
            got.extend(assembler.push(stream[i : i + 1]))
        assert got == [body]

    def test_idle_fill_discarded(self):
        body = stuff(Bits.from_string("1100"), HDLC_RULE)
        stream = frame_stream([body], HDLC_RULE, idle_flags=3)
        assembler = FrameAssembler(HDLC_RULE)
        assert assembler.push(stream) == [body]

    def test_hunt_mode_skips_garbage(self):
        body = stuff(Bits.from_string("0101"), HDLC_RULE)
        stream = Bits.from_string("110010") + frame_stream([body], HDLC_RULE)
        assembler = FrameAssembler(HDLC_RULE)
        assert assembler.push(stream) == [body]

    def test_frames_emitted_counter(self):
        body = stuff(Bits.from_string("0101"), HDLC_RULE)
        assembler = FrameAssembler(HDLC_RULE)
        assembler.push(frame_stream([body, body, body], HDLC_RULE))
        assert assembler.frames_emitted == 3

    def test_reset(self):
        assembler = FrameAssembler(HDLC_RULE)
        assembler.push(FLAG + Bits.from_string("01"))
        assembler.reset()
        # after reset the partial frame is gone; a full frame still works
        body = stuff(Bits.from_string("0011"), HDLC_RULE)
        assert assembler.push(frame_stream([body], HDLC_RULE)) == [body]

    @given(st.lists(st.text(alphabet="01", min_size=1, max_size=32), max_size=5))
    def test_stream_roundtrip_property(self, texts):
        bodies = [stuff(Bits.from_string(t), HDLC_RULE) for t in texts]
        stream = frame_stream(bodies, HDLC_RULE)
        assembler = FrameAssembler(HDLC_RULE)
        assert assembler.push(stream) == bodies


class TestUnattachedAssembler:
    def test_stream_mode_before_attach_raises(self):
        """Stream-mode framing needs the assembler built in on_attach;
        using the sublayer unattached is a configuration error."""
        sub = FlagSublayer("flags", stream_mode=True)
        with pytest.raises(ConfigurationError, match="never attached"):
            sub.from_below(Bits.from_string("0110"))
