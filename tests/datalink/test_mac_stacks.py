"""Tests for MAC sublayers and the preassembled data-link stacks."""

import random

import pytest

from repro.core.bits import Bits
from repro.core.errors import ConfigurationError
from repro.core.litmus import WireTap, run_litmus
from repro.datalink import (
    BROADCAST,
    CRC64_ECMA,
    CrcCode,
    build_hdlc_stack,
    build_wireless_station,
    collect_bytes,
    connect_hdlc_pair,
    send_bytes,
)
from repro.datalink.framing import LOW_OVERHEAD_RULE
from repro.phys import Manchester
from repro.sim import BroadcastMedium, LinkConfig, Simulator


class TestHdlcStack:
    def test_order_matches_fig2(self):
        sim = Simulator()
        stack = build_hdlc_stack("dl", sim.clock())
        assert stack.order() == [
            "recovery",
            "errordetect",
            "stuffing",
            "flags",
            "encoding",
        ]

    def test_unknown_arq_rejected(self):
        with pytest.raises(ConfigurationError):
            build_hdlc_stack("dl", Simulator().clock(), arq="bogus")

    def test_clean_transfer(self):
        sim = Simulator()
        a, b, _ = connect_hdlc_pair(sim, LinkConfig(delay=0.005))
        received = collect_bytes(b)
        msgs = [f"frame-{i}".encode() for i in range(10)]
        for m in msgs:
            send_bytes(a, m)
        sim.run(until=10)
        assert received == msgs

    @pytest.mark.parametrize("arq", ["stop-and-wait", "go-back-n", "selective-repeat"])
    def test_hostile_link_all_schemes(self, arq):
        sim = Simulator()
        a, b, _ = connect_hdlc_pair(
            sim,
            LinkConfig(delay=0.01, loss=0.1, bit_error_rate=0.0005,
                       duplicate=0.05, reorder_jitter=0.005),
            arq=arq,
            retransmit_timeout=0.1,
        )
        received = collect_bytes(b)
        msgs = [f"frame-{i}".encode() for i in range(15)]
        for m in msgs:
            send_bytes(a, m)
        sim.run(until=120)
        assert received == msgs

    def test_bit_errors_caught_by_crc(self):
        sim = Simulator()
        a, b, _ = connect_hdlc_pair(
            sim,
            LinkConfig(delay=0.01, bit_error_rate=0.002),
            retransmit_timeout=0.1,
        )
        received = collect_bytes(b)
        msgs = [bytes([i]) * 24 for i in range(12)]
        for m in msgs:
            send_bytes(a, m)
        sim.run(until=120)
        assert received == msgs
        errors = b.sublayer("errordetect").state.snapshot()["detected_errors"]
        assert errors > 0  # the CRC actually worked for a living

    def test_litmus_passes_under_impairment(self):
        sim = Simulator()
        a, b, _ = connect_hdlc_pair(
            sim, LinkConfig(delay=0.01, loss=0.1), retransmit_timeout=0.1
        )
        wire = WireTap(a, b)
        received = collect_bytes(b)
        for i in range(8):
            send_bytes(a, f"frame-{i}".encode())
        sim.run(until=60)
        assert len(received) == 8
        run_litmus(a, b, wire).require()

    def test_swapped_crc_and_rule_and_code(self):
        """Three sublayer-local swaps at once: CRC-64, the paper's
        low-overhead stuffing rule, Manchester encoding."""
        sim = Simulator()
        a, b, _ = connect_hdlc_pair(
            sim,
            LinkConfig(delay=0.01, loss=0.1),
            rule=LOW_OVERHEAD_RULE,
            code=CrcCode(CRC64_ECMA),
            line_code=Manchester(),
            retransmit_timeout=0.1,
        )
        received = collect_bytes(b)
        msgs = [f"swapped-{i}".encode() for i in range(8)]
        for m in msgs:
            send_bytes(a, m)
        sim.run(until=60)
        assert received == msgs


class TestWirelessStack:
    def make_network(self, stations=3, mac="csma", seed=0):
        sim = Simulator()
        medium = BroadcastMedium(sim, rate_bps=200_000.0)
        stacks = [
            build_wireless_station(
                sim, medium, address=i, mac=mac, rng=random.Random(seed + i)
            )
            for i in range(stations)
        ]
        inboxes = [collect_bytes(s) for s in stacks]
        return sim, medium, stacks, inboxes

    def test_unknown_mac_rejected(self):
        sim = Simulator()
        medium = BroadcastMedium(sim)
        with pytest.raises(ConfigurationError):
            build_wireless_station(sim, medium, address=0, mac="bogus")

    def test_broadcast_reaches_all(self):
        sim, medium, stacks, inboxes = self.make_network(3)
        send_bytes(stacks[0], b"hello all")
        sim.run(until=5)
        assert inboxes[1] == [b"hello all"]
        assert inboxes[2] == [b"hello all"]
        assert inboxes[0] == []

    def test_unicast_filtered(self):
        sim, medium, stacks, inboxes = self.make_network(3)
        stacks[0].send(Bits.from_bytes(b"just for 2"), dst=2)
        sim.run(until=5)
        assert inboxes[1] == []
        assert inboxes[2] == [b"just for 2"]
        assert stacks[1].sublayer("mac").state.snapshot()["filtered"] == 1

    @pytest.mark.parametrize("mac", ["aloha", "csma"])
    def test_contention_eventually_delivers(self, mac):
        """All stations transmitting simultaneously: MAC arbitrates and
        every frame eventually gets through."""
        sim, medium, stacks, inboxes = self.make_network(4, mac=mac)
        for i, stack in enumerate(stacks):
            for k in range(3):
                send_bytes(stack, f"s{i}-m{k}".encode())
        sim.run(until=120)
        for i in range(4):
            expected = {
                f"s{j}-m{k}".encode() for j in range(4) if j != i for k in range(3)
            }
            assert set(inboxes[i]) == expected

    def test_collisions_counted(self):
        sim, medium, stacks, _ = self.make_network(4, mac="aloha")
        for stack in stacks:
            send_bytes(stack, b"clash")
        sim.run(until=60)
        assert medium.stats.collisions > 0

    def test_csma_fewer_collisions_than_aloha(self):
        """Carrier sensing should reduce collisions under load."""
        results = {}
        for mac in ("aloha", "csma"):
            sim, medium, stacks, inboxes = self.make_network(5, mac=mac, seed=7)
            for i, stack in enumerate(stacks):
                for k in range(4):
                    send_bytes(stack, f"s{i}-m{k}".encode())
            sim.run(until=200)
            results[mac] = medium.stats.collisions
        assert results["csma"] <= results["aloha"]
