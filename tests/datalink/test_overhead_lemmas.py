"""Tests for overhead models and the framing lemma library."""

import random

import pytest

from repro.core.bits import Bits
from repro.datalink.framing import (
    HDLC_RULE,
    LOW_OVERHEAD_RULE,
    StuffingRule,
    approx_overhead,
    build_framing_library,
    empirical_overhead,
    exact_overhead,
    overhead_report,
    prefix_rule,
)


class TestOverhead:
    def test_paper_approximations(self):
        """The paper's quoted numbers: 1 in 32 for HDLC, 1 in 128 for
        the low-overhead rule."""
        assert approx_overhead(HDLC_RULE) == pytest.approx(1 / 32)
        assert approx_overhead(LOW_OVERHEAD_RULE) == pytest.approx(1 / 128)

    def test_hdlc_exact_is_one_in_62(self):
        """The exact stationary rate for the 11111/0 rule is 1/62 —
        the 2^-5 in the paper is a back-of-envelope value."""
        assert exact_overhead(HDLC_RULE) == pytest.approx(1 / 62, rel=1e-9)

    def test_low_overhead_exact_is_one_in_128(self):
        assert exact_overhead(LOW_OVERHEAD_RULE) == pytest.approx(1 / 128, rel=1e-6)

    def test_ranking_preserved(self):
        """Approximate and exact models agree on who wins."""
        assert exact_overhead(LOW_OVERHEAD_RULE) < exact_overhead(HDLC_RULE)
        assert approx_overhead(LOW_OVERHEAD_RULE) < approx_overhead(HDLC_RULE)

    def test_empirical_matches_exact_hdlc(self):
        measured = empirical_overhead(HDLC_RULE, data_bits=60_000, rng=random.Random(3))
        assert measured == pytest.approx(exact_overhead(HDLC_RULE), rel=0.15)

    def test_empirical_matches_exact_low(self):
        measured = empirical_overhead(
            LOW_OVERHEAD_RULE, data_bits=60_000, rng=random.Random(3)
        )
        assert measured == pytest.approx(exact_overhead(LOW_OVERHEAD_RULE), rel=0.25)

    def test_exact_rejects_non_progressive(self):
        rule = StuffingRule(Bits.from_string("01111110"), Bits.from_string("111"), 1)
        with pytest.raises(ValueError):
            exact_overhead(rule)

    def test_report_keys(self):
        report = overhead_report(HDLC_RULE, data_bits=5_000)
        assert set(report) == {"approx", "exact", "empirical"}

    def test_shorter_trigger_higher_overhead(self):
        flag = Bits.from_string("01111110")
        costs = [exact_overhead(prefix_rule(flag, k)) for k in (2, 4, 6)]
        assert costs[0] > costs[1] > costs[2]


class TestFramingLibrary:
    def test_hdlc_library_proves(self):
        lib = build_framing_library(HDLC_RULE, max_len=7)
        report = lib.prove_all()
        assert report.proved, report.summary()

    def test_low_overhead_library_proves(self):
        lib = build_framing_library(LOW_OVERHEAD_RULE, max_len=7)
        assert lib.prove_all().proved

    def test_broken_rule_fails_at_interface_lemma(self):
        """Bug localization: an invalid rule fails exactly the
        stuffing/flags interface lemma, not the sublayer-local ones."""
        bad = StuffingRule(
            Bits.from_string("01111110"), Bits.from_string("1111110"), 1
        )
        lib = build_framing_library(bad, max_len=8, include_stream=False)
        report = lib.prove_all()
        failed = {r.lemma for r in report.failures()}
        assert "stuffed_body_is_flag_safe" in failed
        assert "framing_specification" in failed
        # sublayer-local lemmas keep holding: the bug is in the rule's
        # relationship between sublayers, not in either mechanism
        assert report.result("stuff_roundtrip").proved
        assert report.result("flags_roundtrip_conditional").proved

    def test_failure_carries_counterexample(self):
        bad = StuffingRule(
            Bits.from_string("01111110"), Bits.from_string("1111110"), 1
        )
        lib = build_framing_library(bad, max_len=8, include_stream=False)
        report = lib.prove_all()
        failure = report.result("stuffed_body_is_flag_safe")
        assert failure.counterexample is not None

    def test_modularity_report(self):
        lib = build_framing_library(HDLC_RULE, max_len=5)
        report = lib.modularity_report()
        assert report["lemmas"] >= 12
        assert report["per_sublayer"]["stuffing"] >= 4
        assert report["per_sublayer"]["flags"] >= 2
        # most lemmas are local to one sublayer — the paper's lesson 1
        assert report["modular_fraction"] > 0.5

    def test_stream_lemma_included_by_default(self):
        lib = build_framing_library(HDLC_RULE, max_len=5)
        assert "stream_back_to_back" in lib

    def test_stream_lemma_excludable(self):
        lib = build_framing_library(HDLC_RULE, max_len=5, include_stream=False)
        assert "stream_back_to_back" not in lib
