"""Parallel/cached rule search: same rules as serial, cache round-trips."""

import os

import pytest

from repro.datalink.framing.search import find_valid_rules, prefix_rule_space
from repro.par import ProofCache

FORKING = os.name == "posix"


def labels(result):
    return [rule.label() for rule in result.valid]


class TestParallelSearch:
    @pytest.mark.skipif(not FORKING, reason="fork-only")
    def test_parallel_matches_serial(self):
        serial = find_valid_rules(prefix_rule_space(flag_bits=5))
        parallel = find_valid_rules(prefix_rule_space(flag_bits=5), jobs=2)
        assert serial.candidates == parallel.candidates
        assert labels(serial) == labels(parallel)

    @pytest.mark.skipif(not FORKING, reason="fork-only")
    def test_parallel_stream_semantics(self):
        serial = find_valid_rules(prefix_rule_space(flag_bits=5), "stream")
        parallel = find_valid_rules(
            prefix_rule_space(flag_bits=5), "stream", jobs=2
        )
        assert labels(serial) == labels(parallel)


class TestCachedSearch:
    def test_warm_cache_decides_nothing(self, tmp_path):
        cache = ProofCache(root=tmp_path, domain="search")
        cold = find_valid_rules(prefix_rule_space(flag_bits=5), cache=cache)
        assert cache.stats()["hits"] == 0
        candidates = cache.stats()["entries"]
        assert candidates == cold.candidates  # both verdicts cached
        warm = find_valid_rules(prefix_rule_space(flag_bits=5), cache=cache)
        assert labels(cold) == labels(warm)
        assert cache.stats()["misses"] == candidates  # only the cold run
        assert cache.stats()["hits"] == candidates

    def test_semantics_have_separate_keys(self, tmp_path):
        cache = ProofCache(root=tmp_path, domain="search")
        find_valid_rules(prefix_rule_space(flag_bits=4), "frame", cache=cache)
        hits_before = cache.hits
        find_valid_rules(prefix_rule_space(flag_bits=4), "stream", cache=cache)
        assert cache.hits == hits_before  # no cross-semantics reuse
