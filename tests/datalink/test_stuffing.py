"""Tests for stuffing rules and the stuff/unstuff mechanisms."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bits import Bits, all_bitstrings_up_to
from repro.core.errors import ConfigurationError, FramingError
from repro.datalink.framing import (
    HDLC_RULE,
    LOW_OVERHEAD_RULE,
    StuffingRule,
    prefix_rule,
    stuff,
    stuffed_overhead_bits,
    unstuff,
)

random_bits = st.text(alphabet="01", max_size=256).map(Bits.from_string)


class TestRules:
    def test_hdlc_rule_shape(self):
        assert HDLC_RULE.flag.to_string() == "01111110"
        assert HDLC_RULE.trigger.to_string() == "11111"
        assert HDLC_RULE.stuff_bit == 0

    def test_low_overhead_rule_shape(self):
        assert LOW_OVERHEAD_RULE.flag.to_string() == "00000010"
        assert LOW_OVERHEAD_RULE.trigger.to_string() == "0000001"
        assert LOW_OVERHEAD_RULE.stuff_bit == 1

    def test_bad_stuff_bit_rejected(self):
        with pytest.raises(ConfigurationError):
            StuffingRule(Bits.from_string("01"), Bits.from_string("1"), 2)

    def test_empty_flag_rejected(self):
        with pytest.raises(ConfigurationError):
            StuffingRule(Bits(), Bits.from_string("1"), 0)

    def test_empty_trigger_rejected(self):
        with pytest.raises(ConfigurationError):
            StuffingRule(Bits.from_string("01"), Bits(), 0)

    def test_progressive_hdlc(self):
        assert HDLC_RULE.progressive

    def test_non_progressive_rule(self):
        # trigger 111 with stuff 1: stuffed bit re-completes the trigger
        rule = StuffingRule(Bits.from_string("01111110"), Bits.from_string("111"), 1)
        assert not rule.progressive

    def test_approx_overhead(self):
        assert HDLC_RULE.approx_overhead == pytest.approx(1 / 32)
        assert LOW_OVERHEAD_RULE.approx_overhead == pytest.approx(1 / 128)

    def test_prefix_rule_construction(self):
        rule = prefix_rule(Bits.from_string("00000010"), 7)
        assert rule == LOW_OVERHEAD_RULE

    def test_prefix_rule_bad_length(self):
        with pytest.raises(ConfigurationError):
            prefix_rule(Bits.from_string("01111110"), 8)

    def test_label(self):
        assert "01111110" in HDLC_RULE.label()


class TestStuff:
    def test_empty(self):
        assert stuff(Bits(), HDLC_RULE) == Bits()

    def test_no_trigger_no_change(self):
        data = Bits.from_string("0101010101")
        assert stuff(data, HDLC_RULE) == data

    def test_hdlc_classic_example(self):
        # five 1s get a 0 stuffed after them
        assert stuff(Bits.from_string("11111"), HDLC_RULE) == Bits.from_string("111110")

    def test_six_ones(self):
        # the stuff breaks the run; the sixth 1 starts a new count
        assert stuff(Bits.from_string("111111"), HDLC_RULE) == Bits.from_string(
            "1111101"
        )

    def test_ten_ones(self):
        # runs of five get broken twice
        assert stuff(Bits.ones(10), HDLC_RULE) == Bits.from_string("111110111110")

    def test_non_progressive_rejected(self):
        rule = StuffingRule(Bits.from_string("01111110"), Bits.from_string("111"), 1)
        with pytest.raises(FramingError):
            stuff(Bits.ones(3), rule)

    def test_flag_never_in_stuffed_output(self):
        for data in all_bitstrings_up_to(10):
            assert not stuff(data, HDLC_RULE).contains(HDLC_RULE.flag)

    @given(random_bits)
    def test_flag_never_in_stuffed_output_random(self, data):
        assert not stuff(data, HDLC_RULE).contains(HDLC_RULE.flag)

    def test_overhead_bits(self):
        assert stuffed_overhead_bits(Bits.ones(10), HDLC_RULE) == 2
        assert stuffed_overhead_bits(Bits.zeros(10), HDLC_RULE) == 0


class TestUnstuff:
    def test_inverse_exhaustive(self):
        for data in all_bitstrings_up_to(9):
            assert unstuff(stuff(data, HDLC_RULE), HDLC_RULE) == data

    @given(random_bits)
    def test_inverse_random_hdlc(self, data):
        assert unstuff(stuff(data, HDLC_RULE), HDLC_RULE) == data

    @given(random_bits)
    def test_inverse_random_low_overhead(self, data):
        assert unstuff(stuff(data, LOW_OVERHEAD_RULE), LOW_OVERHEAD_RULE) == data

    def test_missing_stuff_bit_rejected(self):
        # 111111 cannot appear in a valid HDLC-stuffed stream
        with pytest.raises(FramingError):
            unstuff(Bits.from_string("1111110"), HDLC_RULE)

    def test_truncated_stream_rejected(self):
        # stream ends right where a stuff bit is mandatory
        with pytest.raises(FramingError):
            unstuff(Bits.from_string("11111"), HDLC_RULE)

    def test_valid_stream_with_stuff_accepted(self):
        assert unstuff(Bits.from_string("111110"), HDLC_RULE) == Bits.ones(5)


class TestManyRules:
    """Round-trip holds for every progressive rule, not just valid ones
    (validity concerns flags; round trip is stuffing-local)."""

    @pytest.mark.parametrize("k", [1, 2, 3, 5, 7])
    def test_roundtrip_for_prefix_rules(self, k):
        rule = prefix_rule(Bits.from_string("01111110"), k)
        if not rule.progressive:  # k=1 gives trigger "0"/stuff 0: diverges
            pytest.skip("non-progressive rule")
        for data in all_bitstrings_up_to(7):
            assert unstuff(stuff(data, rule), rule) == data

    @given(
        st.text(alphabet="01", min_size=2, max_size=8),
        st.integers(0, 1),
        st.text(alphabet="01", max_size=32),
    )
    def test_roundtrip_any_progressive_rule(self, trigger, stuff_bit, data):
        rule = StuffingRule(
            Bits.from_string("01111110"), Bits.from_string(trigger), stuff_bit
        )
        if not rule.progressive:
            return
        bits = Bits.from_string(data)
        assert unstuff(stuff(bits, rule), rule) == bits
