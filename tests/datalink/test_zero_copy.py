"""Buffer-protocol discipline through CRC, COBS, and checksums.

The batched fast path hands ``memoryview`` slices down the framing and
error-detection code; these tests pin the contract that those routines
(1) accept any buffer-protocol object and (2) never take an
intermediate ``bytes()`` copy — every slice they make of a view is
itself a view of the *original* buffer, which ``memoryview.obj``
identity makes directly observable.
"""

import pytest

from repro.datalink.crc import CRC8, CRC16_CCITT, CRC32, CRC_SPECS
from repro.datalink.errordetect import InternetChecksum
from repro.datalink.framing.cobs import cobs_decode, cobs_encode

PAYLOAD = bytes(range(251)) * 3


# ----------------------------------------------------------------------
# The mechanism itself: slicing a view never leaves the original buffer
# ----------------------------------------------------------------------
def test_memoryview_slices_share_the_original_buffer():
    view = memoryview(PAYLOAD)
    assert view.obj is PAYLOAD
    assert view[10:-10].obj is PAYLOAD
    assert view[10:-10][5:].obj is PAYLOAD


# ----------------------------------------------------------------------
# CRC family
# ----------------------------------------------------------------------
@pytest.mark.parametrize("spec", CRC_SPECS.values(), ids=lambda s: s.name)
def test_crc_compute_accepts_views(spec):
    assert spec.compute(memoryview(PAYLOAD)) == spec.compute(PAYLOAD)


def test_crc_compute_accepts_view_slices_without_copy():
    view = memoryview(PAYLOAD)[7:-9]
    assert view.obj is PAYLOAD  # the input we hand in is itself a view
    assert CRC32.compute(view) == CRC32.compute(PAYLOAD[7:-9])


@pytest.mark.parametrize("spec", [CRC8, CRC16_CCITT, CRC32], ids=lambda s: s.name)
def test_crc_append_accepts_views(spec):
    framed = spec.append(memoryview(PAYLOAD))
    assert framed == spec.append(PAYLOAD)
    assert framed[: len(PAYLOAD)] == PAYLOAD


@pytest.mark.parametrize("spec", [CRC8, CRC16_CCITT, CRC32], ids=lambda s: s.name)
def test_crc_verify_accepts_views(spec):
    framed = spec.append(PAYLOAD)
    view = memoryview(framed)
    assert spec.verify(view)
    # the body/trailer split inside verify is a pair of view slices:
    trailer_bytes = spec.width // 8
    assert view[:-trailer_bytes].obj is framed
    assert view[-trailer_bytes:].obj is framed
    corrupted = bytearray(framed)
    corrupted[3] ^= 0x40
    assert not spec.verify(memoryview(corrupted))


# ----------------------------------------------------------------------
# COBS
# ----------------------------------------------------------------------
def test_cobs_encode_accepts_views():
    data = b"ab\x00cd\x00\x00e" + PAYLOAD
    assert cobs_encode(memoryview(data)) == cobs_encode(data)


def test_cobs_decode_accepts_views_and_view_slices():
    data = b"ab\x00cd\x00\x00e" + PAYLOAD
    encoded = cobs_encode(data) + b"\x00"
    # the sublayer's shape: strip the delimiter as a view, then decode
    view = memoryview(encoded)[:-1]
    assert view.obj is encoded
    assert cobs_decode(view) == data


def test_cobs_roundtrip_pure_views():
    data = bytearray(PAYLOAD)
    assert cobs_decode(memoryview(cobs_encode(memoryview(data)))) == bytes(data)


# ----------------------------------------------------------------------
# Internet checksum (the odd-length tail was the historical copy)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("length", [0, 1, 2, 7, 64, 65])
def test_internet_checksum_accepts_views(length):
    code = InternetChecksum()
    data = PAYLOAD[:length]
    assert code.compute(memoryview(data)) == code.compute(data)


def test_internet_checksum_odd_tail_needs_no_padding_copy():
    code = InternetChecksum()
    odd = PAYLOAD[:33]
    view = memoryview(odd)
    # Identical to the padded definition, computed without building
    # ``data + b"\\x00"``:
    assert code.compute(view) == code.compute(odd + b"\x00")
