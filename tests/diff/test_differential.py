"""Differential equivalence rig: every fast path against the slow truth.

The batched vector protocol and the tier=off codegen fast path promise
to be *semantically invisible*: a seeded workload must produce
byte-identical delivery order, metrics snapshots, and sublayer state
whichever path carried it.  This rig runs each profile (hdlc,
wireless, tcp, quic) under seeded traffic and compares:

* scalar sends vs ``send_batch`` (same tier),
* chain walk vs codegen (``Stack.codegen_enabled`` off vs on),
* across all three instrumentation tiers,
* and, for hdlc, with deterministic fault sublayers inserted and with
  the ARQ slot swapped for a passthrough (the fully-fuseable stack).

Every comparison is against the scalar chain-walk run — the
configuration the rest of the test suite has been validating since the
seed commit.
"""

import random

import pytest

from repro.datalink import (
    NullArq,
    build_hdlc_stack,
    build_wireless_station,
    collect_bytes,
    send_bytes,
    send_bytes_batch,
)
from repro.faults import DropFault, DuplicateFault, FaultSchedule
from repro.obs import MetricsRegistry
from repro.sim import BroadcastMedium, DuplexLink, LinkConfig, Simulator

TIERS = ["full", "metrics", "off"]

#: (mode, codegen): the three fast paths, each diffed against scalar+chain.
VARIANTS = [("scalar", True), ("batch", False), ("batch", True)]

PAYLOADS = [
    bytes([i % 251, (i * 7) % 251, (i * 13) % 251]) * 3 for i in range(24)
]


def books(stacks, delivered, metrics):
    """Everything a run observably produced, in comparable form."""
    return {
        "delivered": delivered,
        "metrics": metrics.snapshot(),
        "state": {
            stack.name: {
                sublayer.name: sublayer.state.snapshot()
                for sublayer in stack.sublayers
            }
            for stack in stacks
        },
        "hops": {
            stack.name: (stack.hop_counters.down, stack.hop_counters.up)
            for stack in stacks
        },
    }


# ----------------------------------------------------------------------
# hdlc
# ----------------------------------------------------------------------
def run_hdlc(tier, mode, codegen, fault=False, swap_arq=False):
    sim = Simulator()
    metrics = MetricsRegistry()
    kwargs = dict(tier=tier, metrics=metrics, retransmit_timeout=0.23)
    if swap_arq:
        kwargs["replacements"] = {"arq": lambda params: NullArq("recovery")}
    a = build_hdlc_stack("dl-a", sim.clock(), **kwargs)
    b = build_hdlc_stack("dl-b", sim.clock(), **kwargs)
    a.codegen_enabled = codegen
    b.codegen_enabled = codegen
    if fault:
        a.insert(
            "errordetect",
            DropFault(
                "drop",
                schedule=FaultSchedule(every=5),
                rng=random.Random(11),
                direction="down",
            ),
            where="after",
        )
        b.insert(
            "errordetect",
            DuplicateFault(
                "dup",
                schedule=FaultSchedule(every=7),
                rng=random.Random(12),
                direction="up",
            ),
            where="before",
        )
    duplex = DuplexLink(
        sim,
        LinkConfig(delay=0.013, rate_bps=2_000_000),
        rng_forward=random.Random(3),
        rng_reverse=random.Random(4),
        name="hdlc",
    )
    duplex.attach(a, b)
    inbox_a, inbox_b = collect_bytes(a), collect_bytes(b)
    if mode == "batch":
        send_bytes_batch(a, PAYLOADS)
        send_bytes_batch(b, PAYLOADS[:8])
    else:
        for payload in PAYLOADS:
            send_bytes(a, payload)
        for payload in PAYLOADS[:8]:
            send_bytes(b, payload)
    sim.run(until=30)
    return books([a, b], {"a": inbox_a, "b": inbox_b}, metrics)


@pytest.mark.parametrize("tier", TIERS)
def test_hdlc_fast_paths_match_chain_walk(tier):
    baseline = run_hdlc(tier, "scalar", codegen=False)
    assert baseline["delivered"]["b"] == PAYLOADS  # the run is not vacuous
    for mode, codegen in VARIANTS:
        assert run_hdlc(tier, mode, codegen) == baseline, (mode, codegen)


@pytest.mark.parametrize("tier", TIERS)
def test_hdlc_with_faults_matches_chain_walk(tier):
    baseline = run_hdlc(tier, "scalar", codegen=False, fault=True)
    faults = baseline["state"]["dl-a"]["drop"]["faults_injected"]
    assert faults > 0  # the adversity actually happened
    assert baseline["delivered"]["b"] == PAYLOADS  # ...and ARQ recovered
    for mode, codegen in VARIANTS:
        assert (
            run_hdlc(tier, mode, codegen, fault=True) == baseline
        ), (mode, codegen)


def test_hdlc_passthrough_arq_fuses_and_matches():
    baseline = run_hdlc("off", "scalar", codegen=False, swap_arq=True)
    for mode, codegen in VARIANTS:
        assert (
            run_hdlc("off", mode, codegen, swap_arq=True) == baseline
        ), (mode, codegen)


def test_hdlc_passthrough_arq_really_uses_codegen():
    sim = Simulator()
    stack = build_hdlc_stack(
        "dl",
        sim.clock(),
        tier="off",
        replacements={"arq": lambda params: NullArq("recovery")},
    )
    stack.on_transmit = lambda unit, **meta: None
    assert stack.wiring_plan.fused == {"down": True, "up": True}


# ----------------------------------------------------------------------
# wireless
# ----------------------------------------------------------------------
def run_wireless(tier, mode, codegen):
    sim = Simulator()
    metrics = MetricsRegistry()
    medium = BroadcastMedium(sim, rate_bps=200_000.0)
    stacks = [
        build_wireless_station(
            sim,
            medium,
            address=i,
            rng=random.Random(40 + i),
            tier=tier,
            metrics=metrics,
        )
        for i in range(3)
    ]
    for stack in stacks:
        stack.codegen_enabled = codegen
    inboxes = [collect_bytes(stack) for stack in stacks]
    if mode == "batch":
        send_bytes_batch(stacks[0], PAYLOADS[:10])
        send_bytes_batch(stacks[1], PAYLOADS[10:16])
    else:
        for payload in PAYLOADS[:10]:
            send_bytes(stacks[0], payload)
        for payload in PAYLOADS[10:16]:
            send_bytes(stacks[1], payload)
    sim.run(until=30)
    return books(
        stacks, {i: inbox for i, inbox in enumerate(inboxes)}, metrics
    )


@pytest.mark.parametrize("tier", TIERS)
def test_wireless_fast_paths_match_chain_walk(tier):
    baseline = run_wireless(tier, "scalar", codegen=False)
    assert any(baseline["delivered"][i] for i in (1, 2))
    for mode, codegen in VARIANTS:
        assert run_wireless(tier, mode, codegen) == baseline, (mode, codegen)


# ----------------------------------------------------------------------
# tcp / quic (host-level: the batch surface is the link wiring)
# ----------------------------------------------------------------------
def run_tcp(tier, codegen, nbytes=30_000):
    from repro.transport import SublayeredTcpHost, TcpConfig

    sim = Simulator()
    metrics = MetricsRegistry()
    config = TcpConfig(mss=1000)
    a = SublayeredTcpHost("a", sim.clock(), config, tier=tier, metrics=metrics)
    b = SublayeredTcpHost("b", sim.clock(), config, tier=tier, metrics=metrics)
    for host in (a, b):
        host.stack.codegen_enabled = codegen
    duplex = DuplexLink(
        sim,
        LinkConfig(delay=0.02, rate_bps=8_000_000, loss=0.02),
        rng_forward=random.Random(5),
        rng_reverse=random.Random(6),
    )
    duplex.attach(a, b)
    b.listen(80)
    data = bytes(i % 251 for i in range(nbytes))
    done = {}

    def accept(peer_sock):
        def on_data(_chunk):
            if len(peer_sock.bytes_received()) >= nbytes:
                done.setdefault("at", sim.now)

        peer_sock.on_data = on_data

    b.on_accept = accept
    sock = a.connect(12345, 80)
    sock.on_connect = lambda: (sock.send(data), sock.close())
    sim.run(until=120)
    peer = b.socket_for(80, 12345)
    received = peer.bytes_received() if peer is not None else b""
    return {
        "received": received,
        "done_at": done.get("at"),
        "metrics": metrics.snapshot(),
        "state": {
            host.stack.name: {
                sublayer.name: sublayer.state.snapshot()
                for sublayer in host.stack.sublayers
            }
            for host in (a, b)
        },
    }


@pytest.mark.parametrize("tier", TIERS)
def test_tcp_codegen_wiring_matches_chain_walk(tier):
    baseline = run_tcp(tier, codegen=False)
    assert len(baseline["received"]) == 30_000
    assert run_tcp(tier, codegen=True) == baseline


def run_quic(tier, codegen, nbytes=20_000):
    from repro.transport.quic import QuicHost

    sim = Simulator()
    metrics = MetricsRegistry()
    a = QuicHost("qa", sim.clock(), tier=tier, metrics=metrics)
    b = QuicHost("qb", sim.clock(), tier=tier, metrics=metrics)
    for host in (a, b):
        host.stack.codegen_enabled = codegen
    duplex = DuplexLink(
        sim,
        LinkConfig(delay=0.02, rate_bps=8_000_000, loss=0.02),
        rng_forward=random.Random(7),
        rng_reverse=random.Random(8),
    )
    duplex.attach(a, b)
    b.listen(443)
    data = bytes(i % 251 for i in range(nbytes))
    conn = a.connect(9000, 443)
    conn.on_connect = lambda: conn.send(1, data, fin=True)
    sim.run(until=120)
    peer = b.connection_for(443, 9000)
    received = peer.stream_bytes(1) if peer is not None else b""
    return {"received": received, "metrics": metrics.snapshot()}


@pytest.mark.parametrize("tier", TIERS)
def test_quic_codegen_wiring_matches_chain_walk(tier):
    baseline = run_quic(tier, codegen=False)
    assert len(baseline["received"]) == 20_000
    assert run_quic(tier, codegen=True) == baseline
