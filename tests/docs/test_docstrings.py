"""Local mirror of CI's ruff D1xx gate over the public-API modules.

CI runs ``ruff check --select D100,D101,D102,D103`` over the modules
listed below; ruff is not a runtime dependency, so
this test enforces the same contract with ``ast`` and keeps the gate
honest in environments without ruff installed.
"""

import ast
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

#: The documented public-API surface (keep in sync with the ruff
#: invocation in .github/workflows/ci.yml).
SCOPED_MODULES = [
    "src/repro/core/stack.py",
    "src/repro/core/sublayer.py",
    "src/repro/compose/builder.py",
    "src/repro/verify/lemma.py",
    "src/repro/verify/runner.py",
    "src/repro/verify/__main__.py",
    "src/repro/faults/schedule.py",
    "src/repro/faults/scenarios.py",
    "src/repro/faults/__main__.py",
    "src/repro/par/__init__.py",
    "src/repro/par/pool.py",
    "src/repro/par/cache.py",
    "src/repro/par/fingerprint.py",
]


def is_public(name):
    return not name.startswith("_") or name == "__init__"


def missing_docstrings(path):
    """(code, qualname) pairs for every D100–D103 violation in ``path``."""
    tree = ast.parse(path.read_text(), filename=str(path))
    problems = []
    if ast.get_docstring(tree) is None:
        problems.append(("D100", path.name))

    def visit(node, prefix, in_class):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if is_public(child.name) and ast.get_docstring(child) is None:
                    problems.append(("D101", f"{prefix}{child.name}"))
                visit(child, f"{prefix}{child.name}.", in_class=True)
            elif isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                if is_public(child.name) and ast.get_docstring(child) is None:
                    code = "D102" if in_class else "D103"
                    problems.append((code, f"{prefix}{child.name}"))
                visit(child, f"{prefix}{child.name}.", in_class=False)

    visit(tree, "", in_class=False)
    return problems


@pytest.mark.parametrize("module", SCOPED_MODULES)
def test_public_api_fully_docstringed(module):
    problems = missing_docstrings(REPO / module)
    assert not problems, (
        f"{module}: missing docstrings (pydocstyle D1xx): {problems}"
    )


def test_scope_list_is_current():
    for module in SCOPED_MODULES:
        assert (REPO / module).exists(), f"stale scope entry: {module}"
