"""Parallel/cached campaign determinism: report JSON identical to serial."""

import json
import os

import pytest

from repro.par import ProofCache
from repro.faults.__main__ import run_campaign

FORKING = os.name == "posix"


def as_json(report):
    return json.dumps(report, sort_keys=True)


class TestCampaignDeterminism:
    @pytest.mark.skipif(not FORKING, reason="fork-only")
    def test_parallel_json_equals_serial_json(self):
        serial = run_campaign("smoke", [0, 1])
        parallel = run_campaign("smoke", [0, 1], jobs=2)
        assert as_json(serial) == as_json(parallel)

    @pytest.mark.skipif(not FORKING, reason="fork-only")
    def test_jobs_count_does_not_matter(self):
        reports = {
            as_json(run_campaign("smoke", [0], jobs=jobs)) for jobs in (1, 2, 4)
        }
        assert len(reports) == 1

    def test_metrics_aggregate_present(self):
        report = run_campaign("smoke", [0])
        assert report["ok"]
        assert report["metrics"]["faults_injected"] > 0
        assert report["metrics"]["counters"] > 0


class TestCampaignCache:
    def test_warm_cache_replays_identically(self, tmp_path):
        cache = ProofCache(root=tmp_path, domain="trials")
        cold = run_campaign("smoke", [0], cache=cache)
        assert cache.stats()["hits"] == 0
        trials = cache.stats()["entries"]
        assert trials > 0
        warm = run_campaign("smoke", [0], cache=cache)
        assert as_json(cold) == as_json(warm)
        assert cache.stats()["hits"] == trials
        assert cache.stats()["misses"] == trials  # all from the cold run

    def test_cache_and_jobs_compose(self, tmp_path):
        if not FORKING:
            pytest.skip("fork-only")
        cache = ProofCache(root=tmp_path, domain="trials")
        cold = run_campaign("smoke", [0], jobs=2, cache=cache)
        warm = run_campaign("smoke", [0], jobs=2, cache=cache)
        assert as_json(cold) == as_json(warm)
        assert cache.stats()["hits"] == cache.stats()["entries"]
