"""Campaigns with an armed flight recorder: red trials leave a
post-mortem bundle (spans + metrics + trigger), green trials leave
nothing."""

import json

import pytest

from repro.faults.__main__ import run_campaign
from repro.obs import load_jsonl_with_meta
from repro.obs.recorder import METRICS_FILE, SPANS_FILE, TRIGGER_FILE


class TestRedTrialsDump:
    def test_negative_control_leaves_a_bundle(self, tmp_path):
        report = run_campaign(
            "negative", [0], recorder_dir=str(tmp_path)
        )
        assert not report["ok"], "the negative control must turn red"

        bundle = tmp_path / "wireless-drop-noarq-seed0"
        assert bundle.is_dir()
        spans, _meta = load_jsonl_with_meta(bundle / SPANS_FILE)
        assert spans, "the trial's span trace must be captured"
        metrics = json.loads((bundle / METRICS_FILE).read_text())
        assert metrics["final"]["counters"]
        trigger = json.loads((bundle / TRIGGER_FILE).read_text())
        assert trigger["scenario"] == "wireless-drop-noarq"
        assert trigger["seed"] == 0
        assert trigger["violations"], "the trigger names what went red"

        trial = report["scenarios"][0]["trials"][0]
        assert trial["info"]["bundle"] == str(bundle)

    def test_bundle_paths_survive_forked_workers(self, tmp_path):
        report = run_campaign(
            "negative", [0, 1], jobs=2, recorder_dir=str(tmp_path)
        )
        trials = report["scenarios"][0]["trials"]
        for trial in trials:
            assert (tmp_path / f"wireless-drop-noarq-seed{trial['seed']}").is_dir()
            assert "bundle" in trial["info"]

    def test_bundle_analyzes_cleanly(self, tmp_path):
        """The acceptance loop: dump a bundle, run the analyzer on it."""
        from repro.obs.analyze import render_report

        run_campaign("negative", [0], recorder_dir=str(tmp_path))
        spans, _ = load_jsonl_with_meta(
            tmp_path / "wireless-drop-noarq-seed0" / SPANS_FILE
        )
        text = render_report(spans, clock="virtual")
        assert "critical path" in text
        assert "per-sublayer breakdown" in text


class TestGreenTrialsDoNot:
    def test_green_scenario_leaves_no_bundle(self, tmp_path):
        report = run_campaign(
            "smoke",
            [0],
            only=["hdlc-drop-dup-corrupt"],
            recorder_dir=str(tmp_path),
        )
        assert report["ok"]
        assert list(tmp_path.iterdir()) == []
        trial = report["scenarios"][0]["trials"][0]
        assert "bundle" not in trial["info"]

    def test_recorder_off_changes_nothing(self, tmp_path):
        with_rec = run_campaign(
            "smoke", [0], only=["hdlc-drop-dup-corrupt"], recorder_dir=str(tmp_path)
        )
        without = run_campaign("smoke", [0], only=["hdlc-drop-dup-corrupt"])
        assert json.dumps(with_rec, sort_keys=True) == json.dumps(
            without, sort_keys=True
        )


class TestMatrixWiring:
    def test_negative_matrix_is_listed(self):
        from repro.faults.scenarios import MATRICES, build_matrix

        assert "negative" in MATRICES
        names = [s.name for s in build_matrix("negative")]
        assert names == ["wireless-drop-noarq"]

    def test_negative_control_not_in_green_matrices(self):
        from repro.faults.scenarios import build_matrix

        for matrix in ("default", "smoke"):
            assert "wireless-drop-noarq" not in [
                s.name for s in build_matrix(matrix)
            ]
