"""Resilience scenarios and the campaign CLI.

Each smoke-sized scenario runs one seeded trial green; the wireless
``arq=False`` variant is the negative control proving the monitors
bite.  Trials are deterministic in the seed, so these are exact
assertions, not flake-tolerant ones.
"""

import json

import pytest

from repro.core.errors import ConfigurationError
from repro.faults.__main__ import main, run_campaign
from repro.faults.scenarios import (
    HdlcScenario,
    QuicScenario,
    RoutingScenario,
    TcpScenario,
    WirelessScenario,
    build_matrix,
    smoke_matrix,
)


class TestScenariosGreen:
    """One seeded trial per smoke scenario must hold every invariant."""

    def check(self, scenario, seed=0):
        trial = scenario.run_trial(seed)
        assert trial.ok, f"violations: {[v.as_dict() for v in trial.violations]}"
        return trial

    def test_hdlc(self):
        trial = self.check(HdlcScenario(messages=6, timeout=120.0))
        assert trial.info["faults_injected"] > 0

    def test_wireless(self):
        trial = self.check(WirelessScenario(messages=6, timeout=90.0))
        assert trial.info["faults_injected"] > 0

    def test_tcp(self):
        trial = self.check(TcpScenario(nbytes=6_000, timeout=180.0))
        assert trial.info["faults_injected"] > 0

    def test_quic(self):
        trial = self.check(
            QuicScenario(nbytes=5_000, streams=1, timeout=180.0)
        )
        assert trial.info["faults_injected"] > 0

    def test_routing(self):
        self.check(RoutingScenario())


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        a = HdlcScenario(messages=6, timeout=120.0).run_trial(3)
        b = HdlcScenario(messages=6, timeout=120.0).run_trial(3)
        assert a.as_dict() == b.as_dict()


class TestNegativeControl:
    def test_no_arq_wireless_loses_data(self):
        """Removing recovery under the same drop fault must turn the
        no-data-loss monitor red — proof the monitors actually bite."""
        scenario = WirelessScenario(messages=6, arq=False, timeout=90.0)
        result = scenario.run(seeds=[0, 1, 2])
        assert not result.ok
        monitors_fired = {
            v.monitor for t in result.trials for v in t.violations
        }
        assert "no-data-loss" in monitors_fired


class TestMatrices:
    def test_smoke_matrix_covers_all_profiles(self):
        assert {s.profile for s in smoke_matrix()} == {
            "hdlc", "wireless", "tcp", "quic", "routing",
        }

    def test_unknown_matrix(self):
        with pytest.raises(ConfigurationError, match="unknown scenario matrix"):
            build_matrix("nope")

    def test_unknown_scenario_filter(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            run_campaign("smoke", seeds=[0], only=["not-a-scenario"])


class TestCli:
    def test_smoke_campaign_green_report(self, tmp_path, capsys):
        out = tmp_path / "resilience.json"
        code = main(
            ["--matrix", "smoke", "--seeds", "1", "--out", str(out)]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["ok"] is True
        assert report["matrix"] == "smoke"
        assert {s["name"] for s in report["scenarios"]} == {
            "hdlc-drop-dup-corrupt",
            "wireless-drop-arq",
            "tcp-drop-dup",
            "quic-drop",
            "routing-blackhole",
        }
        assert "resilient" in capsys.readouterr().out

    def test_scenario_filter(self, capsys):
        code = main(
            ["--matrix", "smoke", "--seeds", "1", "--scenario",
             "routing-blackhole"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "routing-blackhole" in output
        assert "hdlc" not in output

    def test_unknown_scenario_exits_2(self, capsys):
        code = main(
            ["--matrix", "smoke", "--seeds", "1", "--scenario", "bogus"]
        )
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_list(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "matrix smoke:" in output
        assert "tcp-drop-dup" in output
