"""FaultSchedule: declarative gates, determinism, and validation."""

import random

import pytest

from repro.core.errors import ConfigurationError
from repro.faults import FaultSchedule


def fires_at(schedule, indices, now=0.0, seed=1):
    rng = random.Random(seed)
    return [i for i in indices if schedule.fires(i, now, rng)]


class TestGates:
    def test_always(self):
        schedule = FaultSchedule.always()
        assert fires_at(schedule, range(5)) == [0, 1, 2, 3, 4]

    def test_once(self):
        schedule = FaultSchedule.once(at_unit=3)
        assert fires_at(schedule, range(8)) == [3]

    def test_unit_window(self):
        schedule = FaultSchedule.unit_window(2, 5)
        assert fires_at(schedule, range(8)) == [2, 3, 4]

    def test_every_nth_anchored_at_start(self):
        schedule = FaultSchedule.every_nth(3, start=2)
        assert fires_at(schedule, range(10)) == [2, 5, 8]

    def test_time_window(self):
        schedule = FaultSchedule.time_window(1.0, 2.0)
        rng = random.Random(0)
        assert not schedule.fires(0, 0.5, rng)
        assert schedule.fires(0, 1.0, rng)
        assert schedule.fires(0, 1.99, rng)
        assert not schedule.fires(0, 2.0, rng)

    def test_in_window_ignores_stride_and_probability(self):
        schedule = FaultSchedule(probability=0.0, every=7, start_unit=1)
        assert not schedule.in_window(0, 0.0)
        assert schedule.in_window(1, 0.0)
        assert schedule.in_window(2, 0.0)  # stride not consulted

    def test_predicate(self):
        schedule = FaultSchedule.when(lambda unit, meta: meta.get("mark", False))
        rng = random.Random(0)
        assert not schedule.fires(0, 0.0, rng, unit=b"x", meta={})
        assert schedule.fires(0, 0.0, rng, unit=b"x", meta={"mark": True})

    def test_probability_draw(self):
        schedule = FaultSchedule.with_probability(0.5)
        fired = fires_at(schedule, range(200), seed=42)
        assert 60 < len(fired) < 140  # roughly half, not all or none


class TestDeterminism:
    def test_same_seed_same_firings(self):
        schedule = FaultSchedule.with_probability(0.3)
        assert fires_at(schedule, range(50), seed=7) == fires_at(
            schedule, range(50), seed=7
        )

    def test_probability_one_consumes_no_draws(self):
        """Deterministic schedules never touch the rng stream, so adding
        one next to a probabilistic fault cannot shift its draws."""
        rng = random.Random(5)
        deterministic = FaultSchedule.unit_window(0, 10)
        for i in range(10):
            deterministic.fires(i, 0.0, rng)
        after_deterministic = rng.random()
        assert after_deterministic == random.Random(5).random()

    def test_out_of_window_consumes_no_draws(self):
        rng = random.Random(9)
        schedule = FaultSchedule(probability=0.5, start_unit=100)
        for i in range(10):
            schedule.fires(i, 0.0, rng)
        assert rng.random() == random.Random(9).random()


class TestValidation:
    def test_probability_bounds(self):
        with pytest.raises(ConfigurationError, match="probability"):
            FaultSchedule(probability=1.5)
        with pytest.raises(ConfigurationError, match="probability"):
            FaultSchedule(probability=-0.1)

    def test_negative_start_unit(self):
        with pytest.raises(ConfigurationError, match="start_unit"):
            FaultSchedule(start_unit=-1)

    def test_empty_unit_window(self):
        with pytest.raises(ConfigurationError, match="stop_unit"):
            FaultSchedule(start_unit=5, stop_unit=5)

    def test_bad_stride(self):
        with pytest.raises(ConfigurationError, match="every"):
            FaultSchedule(every=0)

    def test_empty_time_window(self):
        with pytest.raises(ConfigurationError, match="stop_time"):
            FaultSchedule(start_time=2.0, stop_time=1.0)
