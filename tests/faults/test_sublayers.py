"""Each fault kind, exercised in a live three-sublayer stack.

The harness builds ``top > fault > bottom`` passthrough stacks so the
fault sits mid-stack exactly as a campaign inserts it; litmus coverage
shows a transparent fault leaves T1/T2/T3 green at the full tier.
"""

import random

import pytest

from repro.core import (
    ConfigurationError,
    Field,
    HeaderFormat,
    PassthroughSublayer,
    Stack,
    Sublayer,
    unwrap,
)
from repro.core.bits import Bits
from repro.core.clock import ManualClock
from repro.core.litmus import WireTap, run_litmus
from repro.faults import (
    CorruptBitsFault,
    DelayFault,
    DropFault,
    DuplicateFault,
    FaultSchedule,
    NoOpFault,
    ReorderFault,
    StallFault,
    TruncateFault,
)
from repro.obs import MetricsRegistry


def make_chain(fault, clock=None, metrics=None):
    """``top > fault > bottom`` stack; returns (stack, wire, delivered)."""
    stack = Stack(
        "chain",
        [PassthroughSublayer("top"), fault, PassthroughSublayer("bot")],
        clock=clock or ManualClock(),
        metrics=metrics,
    )
    wire, delivered = [], []
    stack.on_transmit = lambda unit, **meta: wire.append(unit)
    stack.on_deliver = lambda unit, **meta: delivered.append(unit)
    return stack, wire, delivered


class TestBase:
    def test_bad_direction_rejected(self):
        with pytest.raises(ConfigurationError, match="direction"):
            DropFault("f", direction="sideways")

    def test_books_kept_and_metered(self):
        registry = MetricsRegistry()
        fault = DropFault("f", schedule=FaultSchedule.once(1))
        stack, wire, _ = make_chain(fault, metrics=registry)
        for i in range(4):
            stack.send(bytes([i]))
        assert fault.state.units_seen == 4
        assert fault.state.faults_injected == 1
        assert fault.state.dropped == 1
        counters = registry.snapshot()["counters"]
        assert counters["chain/f/faults_injected"] == 1
        assert counters["chain/f/units_seen"] == 4

    def test_direction_up_leaves_tx_path_alone(self):
        fault = DropFault("f", direction="up")
        stack, wire, delivered = make_chain(fault)
        stack.send(b"down")
        stack.receive(b"up")
        assert wire == [b"down"]
        assert delivered == []  # the receive-side unit was dropped
        assert fault.state.units_seen == 1  # only the up crossing counted

    def test_direction_both(self):
        fault = DropFault("f", direction="both")
        stack, wire, delivered = make_chain(fault)
        stack.send(b"down")
        stack.receive(b"up")
        assert wire == [] and delivered == []
        assert fault.state.dropped == 2


class TestNoOp:
    def test_pure_passthrough_no_bookkeeping(self):
        fault = NoOpFault("f")
        stack, wire, delivered = make_chain(fault)
        stack.send(b"a")
        stack.receive(b"b")
        assert wire == [b"a"] and delivered == [b"b"]
        assert fault.state.units_seen == 0
        assert fault.state.faults_injected == 0


class TestDrop:
    def test_drops_scheduled_units(self):
        fault = DropFault("f", schedule=FaultSchedule.every_nth(2))
        stack, wire, _ = make_chain(fault)
        for i in range(6):
            stack.send(bytes([i]))
        assert wire == [bytes([1]), bytes([3]), bytes([5])]
        assert fault.state.dropped == 3


class TestDuplicate:
    def test_forwards_twice(self):
        fault = DuplicateFault("f", schedule=FaultSchedule.once(0))
        stack, wire, _ = make_chain(fault)
        stack.send(b"a")
        stack.send(b"b")
        assert wire == [b"a", b"a", b"b"]
        assert fault.state.duplicated == 1


class TestReorder:
    def test_swaps_with_next_unit(self):
        fault = ReorderFault("f", schedule=FaultSchedule.once(0))
        stack, wire, _ = make_chain(fault)
        stack.send(b"a")
        assert wire == []  # held
        stack.send(b"b")
        assert wire == [b"b", b"a"]

    def test_tail_flushes_after_max_hold(self):
        clock = ManualClock()
        fault = ReorderFault(
            "f", schedule=FaultSchedule.once(0), max_hold=0.2
        )
        stack, wire, _ = make_chain(fault, clock=clock)
        stack.send(b"last")
        assert wire == []
        clock.advance(0.2)
        assert wire == [b"last"]

    def test_bad_max_hold(self):
        with pytest.raises(ConfigurationError, match="max_hold"):
            ReorderFault("f", max_hold=0.0)


class TestCorruptBits:
    def test_flips_bits_in_bytes(self):
        fault = CorruptBitsFault("f", rng=random.Random(3), flips=2)
        stack, wire, _ = make_chain(fault)
        stack.send(b"\x00" * 8)
        assert len(wire) == 1
        assert len(wire[0]) == 8
        assert sum(bin(b).count("1") for b in wire[0]) == 2
        assert fault.state.corrupted == 1

    def test_flips_bits_in_bits(self):
        fault = CorruptBitsFault("f", rng=random.Random(3), flips=1)
        stack, wire, _ = make_chain(fault)
        stack.send(Bits([0] * 16))
        assert isinstance(wire[0], Bits)
        assert sum(wire[0]) == 1

    def test_structured_units_pass_unchanged(self):
        fault = CorruptBitsFault("f")
        stack, wire, _ = make_chain(fault)
        unit = {"not": "serialized"}
        stack.send(unit)
        assert wire == [unit]
        assert fault.state.corrupted == 0

    def test_bad_flips(self):
        with pytest.raises(ConfigurationError, match="flips"):
            CorruptBitsFault("f", flips=0)


class TestTruncate:
    def test_cuts_to_keep_fraction(self):
        fault = TruncateFault("f", keep=0.5)
        stack, wire, _ = make_chain(fault)
        stack.send(b"0123456789")
        assert wire == [b"01234"]
        assert fault.state.truncated == 1

    def test_keep_zero_empties_unit(self):
        fault = TruncateFault("f", keep=0.0)
        stack, wire, _ = make_chain(fault)
        stack.send(b"abcd")
        assert wire == [b""]

    def test_bad_keep(self):
        with pytest.raises(ConfigurationError, match="keep"):
            TruncateFault("f", keep=1.0)


class TestDelay:
    def test_holds_for_delay(self):
        clock = ManualClock()
        fault = DelayFault("f", delay=0.5)
        stack, wire, _ = make_chain(fault, clock=clock)
        stack.send(b"slow")
        assert wire == []
        clock.advance(0.49)
        assert wire == []
        clock.advance(0.01)
        assert wire == [b"slow"]
        assert fault.state.delayed == 1

    def test_jitter_bounded(self):
        clock = ManualClock()
        fault = DelayFault("f", rng=random.Random(1), delay=0.1, jitter=0.2)
        stack, wire, _ = make_chain(fault, clock=clock)
        stack.send(b"x")
        clock.advance(0.3)  # delay + max jitter
        assert wire == [b"x"]

    def test_bad_delay(self):
        with pytest.raises(ConfigurationError, match="delay"):
            DelayFault("f", delay=-1.0)


class TestStall:
    def test_buffers_then_releases_in_order(self):
        fault = StallFault("f", schedule=FaultSchedule.unit_window(0, 2))
        stack, wire, _ = make_chain(fault)
        stack.send(b"a")
        stack.send(b"b")
        assert wire == []
        stack.send(b"c")  # first post-window unit flushes the buffer
        assert wire == [b"a", b"b", b"c"]
        assert fault.state.stalled == 2

    def test_timer_flush_at_declared_stop_time(self):
        clock = ManualClock()
        fault = StallFault("f", schedule=FaultSchedule.time_window(0.0, 1.0))
        stack, wire, _ = make_chain(fault, clock=clock)
        stack.send(b"a")
        stack.send(b"b")
        assert wire == []
        clock.advance(1.0)
        assert wire == [b"a", b"b"]

    def test_blackhole_discards(self):
        fault = StallFault(
            "f", schedule=FaultSchedule.unit_window(0, 2), blackhole=True
        )
        stack, wire, _ = make_chain(fault)
        for unit in (b"a", b"b", b"c"):
            stack.send(unit)
        assert wire == [b"c"]
        assert fault.state.blackholed == 2


# ----------------------------------------------------------------------
# Transparency: litmus tests stay green around an inserted fault
# ----------------------------------------------------------------------
class Upper(Sublayer):
    HEADER = HeaderFormat("up", [Field("n", 8)], owner="up")

    def on_attach(self):
        self.state.sent = 0

    def from_above(self, sdu, **meta):
        self.state.sent = self.state.sent + 1
        self.send_down(self.wrap({"n": self.state.sent % 256}, sdu))

    def from_below(self, pdu, **meta):
        values, inner = unwrap(pdu, "up")
        self.deliver_up(inner, n=values["n"])


class LowerWithHeader(Sublayer):
    HEADER = HeaderFormat("low", [Field("k", 8)], owner="low")

    def from_above(self, sdu, **meta):
        self.send_down(self.wrap({"k": 9}, sdu))

    def from_below(self, pdu, **meta):
        values, inner = unwrap(pdu, "low")
        self.deliver_up(inner)


class TestTransparency:
    def make_pair(self, tx_extra=None):
        tx_layers = [Upper("up"), LowerWithHeader("low")]
        if tx_extra is not None:
            tx_layers.insert(1, tx_extra)
        tx = Stack("tx", tx_layers)
        rx = Stack("rx", [Upper("up"), LowerWithHeader("low")])
        delivered = []
        rx.on_deliver = lambda d, **m: delivered.append(d)
        tx.on_transmit = lambda p, **m: rx.receive(p)
        return tx, rx, delivered

    def test_litmus_green_with_fault_on_one_endpoint(self):
        fault = NoOpFault("fault")
        tx, rx, delivered = self.make_pair(tx_extra=fault)
        wire = WireTap(tx, rx)
        tx.send(b"payload")
        assert delivered == [b"payload"]
        report = run_litmus(tx, rx, wire)
        report.require()  # raises LitmusFailure on any red test

    def test_litmus_red_with_opaque_extra_on_one_endpoint(self):
        tx, rx, delivered = self.make_pair(
            tx_extra=PassthroughSublayer("extra")
        )
        wire = WireTap(tx, rx)
        tx.send(b"payload")
        report = run_litmus(tx, rx, wire)
        t1 = next(r for r in report.results if r.name == "T1")
        assert not t1.passed  # opaque orders differ between endpoints

    def test_active_fault_keeps_control_plane_intact(self):
        """A fault that actually fires still leaves T2 adjacency green."""
        fault = DropFault("fault", schedule=FaultSchedule.every_nth(2))
        tx, rx, delivered = self.make_pair(tx_extra=fault)
        wire = WireTap(tx, rx)
        for i in range(4):
            tx.send(bytes([i]))
        assert delivered == [bytes([1]), bytes([3])]
        run_litmus(tx, rx, wire).require()
