"""Tests for the symbolic flow-analysis engine."""
