"""Shared paths for the flow-analysis tests."""

from pathlib import Path

import pytest

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture
def fixtures() -> Path:
    return FIXTURES
