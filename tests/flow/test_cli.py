"""The ``python -m repro.flow`` entry point."""

import json

from repro.flow.__main__ import main


def test_default_run_proves_all_examples(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "all properties hold" in out
    for name in ("mesh6", "star9", "ring8", "grid4x4"):
        assert f"{name:<12} PROVED" in out


def test_single_topology_selection(capsys):
    assert main(["--topology", "mesh6"]) == 0
    out = capsys.readouterr().out
    assert "mesh6" in out and "star9" not in out


def test_violating_spec_exits_one(fixtures, capsys):
    assert main(["--spec", str(fixtures / "loop.json")]) == 1
    out = capsys.readouterr().out
    assert "REFUTED" in out and "[loop-freedom]" in out


def test_json_format(fixtures, capsys):
    assert main(["--format", "json", "--spec", str(fixtures / "escape.json")]) == 1
    data = json.loads(capsys.readouterr().out)
    assert data["passed"] is False
    assert data["specs"]["escape"]["violations"][0]["property"] == "no-escape"


def test_out_writes_the_report(tmp_path, capsys):
    out_file = tmp_path / "flow.json"
    assert main(["--format", "json", "--topology", "ring8", "--out", str(out_file)]) == 0
    data = json.loads(out_file.read_text())
    assert data["passed"] is True


def test_cache_cold_then_warm(tmp_path, capsys):
    cache_args = ["--cache", "--cache-dir", str(tmp_path)]
    assert main(cache_args) == 0
    cold = capsys.readouterr().out
    assert "0 hits, 4 misses" in cold
    assert main(cache_args) == 0
    warm = capsys.readouterr().out
    assert "4 hits, 0 misses" in warm


def test_list_names_the_examples(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in ("mesh6", "star9", "ring8", "grid4"):
        assert name in out


def test_unknown_topology_is_usage_error(capsys):
    assert main(["--topology", "nope"]) == 2
    assert "error:" in capsys.readouterr().err


def test_bad_spec_file_is_usage_error(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert main(["--spec", str(bad)]) == 2
    assert "error:" in capsys.readouterr().err
