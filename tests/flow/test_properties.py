"""Property checks: each violating fixture refutes exactly its property."""

import pytest

from repro.flow.properties import analyze, analyze_all
from repro.flow.spec import FlowSpec
from repro.par.cache import ProofCache


def load(fixtures, name: str) -> FlowSpec:
    return FlowSpec.from_file(fixtures / f"{name}.json")


class TestFixtureCorpus:
    def test_clean_fixture_proves_everything(self, fixtures):
        report = analyze(load(fixtures, "clean"))
        assert report.passed
        assert report.violations == []
        assert all(r.passed for r in report.results)

    def test_escape_fixture_refutes_only_no_escape(self, fixtures):
        report = analyze(load(fixtures, "escape"))
        assert not report.passed
        assert {v.property for v in report.violations} == {"no-escape"}
        [violation] = report.violations
        assert violation.node == 3  # zone traffic transits the outsider
        assert violation.witness  # symbolic evidence attached

    def test_loop_fixture_refutes_only_loop_freedom(self, fixtures):
        report = analyze(load(fixtures, "loop"))
        assert not report.passed
        assert {v.property for v in report.violations} == {"loop-freedom"}
        [violation] = report.violations
        assert "1 -> 2" in violation.message
        assert violation.witness["destinations"] == [[3, 3]]

    def test_blackhole_fixture_refutes_only_blackhole_freedom(self, fixtures):
        report = analyze(load(fixtures, "blackhole"))
        assert not report.passed
        assert {v.property for v in report.violations} == {"blackhole-freedom"}
        # node 2 has no route to 3; node 3's hop for 1 resolves nowhere
        assert {v.node for v in report.violations} == {2, 3}

    def test_overlap_fixture_refutes_only_isolation(self, fixtures):
        report = analyze(load(fixtures, "overlap"))
        assert not report.passed
        assert {v.property for v in report.violations} == {"isolation"}
        [violation] = report.violations
        assert violation.node is None  # spec-wide: overlapping spaces
        assert "overlapping address space" in violation.message

    def test_per_property_results_carry_litmus_labels(self, fixtures):
        report = analyze(load(fixtures, "clean"))
        labels = {r.name: r.metrics["litmus"] for r in report.results}
        assert labels == {
            "no-escape": "T4",
            "blackhole-freedom": "T4",
            "loop-freedom": "T4",
            "isolation": "T5",
        }


class TestTenantMeet:
    def test_intra_tenant_traffic_at_foreign_node_is_flagged(self):
        # alpha's 1<->3 traffic must transit node 2, which beta owns.
        spec = FlowSpec.from_dict(
            {
                "name": "meet",
                "nodes": [1, 2, 3],
                "edges": [[1, 2], [2, 3]],
                "fibs": {
                    "1": {"2": 2, "3": 2},
                    "2": {"1": 1, "3": 3},
                    "3": {"1": 2, "2": 2},
                },
                "tenants": [
                    {"name": "alpha", "nodes": [1, 3]},
                    {"name": "beta", "nodes": [2]},
                ],
            }
        )
        report = analyze(spec)
        assert {v.property for v in report.violations} == {"isolation"}
        [violation] = report.violations
        assert violation.node == 2
        assert "alpha" in violation.message and "beta" in violation.message


class TestCaching:
    def test_second_run_hits_and_reproduces_the_report(self, fixtures, tmp_path):
        cache = ProofCache(root=tmp_path, domain="flow")
        spec = load(fixtures, "escape")
        first = analyze(spec, cache=cache)
        assert cache.stats()["misses"] == 1
        second = analyze(spec, cache=cache)
        assert cache.stats()["hits"] == 1
        assert second.as_dict() == first.as_dict()  # witness replayed too

    def test_fib_change_invalidates_the_entry(self, fixtures, tmp_path):
        cache = ProofCache(root=tmp_path, domain="flow")
        spec = load(fixtures, "clean")
        analyze(spec, cache=cache)
        changed = dict(spec.as_dict())
        changed["fibs"] = dict(changed["fibs"])
        changed["fibs"]["1"] = {"2": 2}  # drop a route
        analyze(FlowSpec.from_dict(changed), cache=cache)
        assert cache.stats()["hits"] == 0
        assert cache.stats()["misses"] == 2

    def test_analyze_all_keys_reports_by_spec_name(self, fixtures):
        reports = analyze_all(
            [load(fixtures, "clean"), load(fixtures, "loop")]
        )
        assert list(reports) == ["clean", "loop"]
        assert reports["clean"].passed and not reports["loop"].passed


class TestReportShape:
    def test_as_dict_is_json_canonical(self, fixtures):
        report = analyze(load(fixtures, "escape"))
        data = report.as_dict()
        assert data["spec"] == "escape"
        assert data["passed"] is False
        assert [r["name"] for r in data["results"]] == [
            "no-escape",
            "blackhole-freedom",
            "loop-freedom",
            "isolation",
        ]
        assert data["stats"]["nodes"] == 3

    def test_text_rendering_names_the_property(self, fixtures):
        text = analyze(load(fixtures, "loop")).text()
        assert "[loop-freedom]" in text


@pytest.mark.parametrize("name", ["clean", "escape", "loop", "blackhole", "overlap"])
def test_analysis_is_deterministic(fixtures, name):
    spec = load(fixtures, name)
    assert analyze(spec).as_dict() == analyze(spec).as_dict()
