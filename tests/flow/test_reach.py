"""The fixed point: seen/delivered/drop sets, classes, loop detection."""

from repro.flow.reach import (
    default_injections,
    destination_classes,
    find_loops,
    reachability,
)
from repro.flow.sets import IntervalSet, cube
from repro.flow.spec import FlowSpec
from repro.flow.transfer import DROP_TTL


def line3() -> FlowSpec:
    return FlowSpec.from_dict(
        {
            "name": "line",
            "nodes": [1, 2, 3],
            "edges": [[1, 2], [2, 3]],
            "fibs": {
                "1": {"2": 2, "3": 2},
                "2": {"1": 1, "3": 3},
                "3": {"1": 2, "2": 2},
            },
        }
    )


def looped() -> FlowSpec:
    return FlowSpec.from_dict(
        {
            "name": "loop",
            "nodes": [1, 2, 3],
            "edges": [[1, 2], [2, 3]],
            "fibs": {
                "1": {"2": 2, "3": 2},
                "2": {"1": 1, "3": 1},  # dst 3 bounces between 1 and 2
                "3": {"1": 2, "2": 2},
            },
        }
    )


class TestReachability:
    def test_every_node_delivers_everyone_elses_traffic(self):
        reach = reachability(line3())
        for node in (1, 2, 3):
            # each node consumes packets addressed to it from every
            # source, including the set it originated itself
            srcs = set(reach.delivered[node].project("src"))
            assert srcs == {1, 2, 3}

    def test_transit_traffic_is_seen_at_the_middle(self):
        reach = reachability(line3())
        crossing = reach.seen[2].intersect(cube(src=1, dst=3))
        assert not crossing.is_empty

    def test_flows_follow_the_line(self):
        reach = reachability(line3())
        assert (1, 2) in reach.flows and (2, 3) in reach.flows
        assert (1, 3) not in reach.flows  # no such link

    def test_custom_injection_restricts_the_analysis(self):
        spec = line3()
        reach = reachability(spec, {1: cube(src=1, dst=3, ttl=spec.ttl)})
        assert reach.delivered[3].count() == 1
        assert reach.delivered[2].is_empty

    def test_loopy_fib_terminates_via_ttl(self):
        reach = reachability(looped())
        expired = reach.dropped_total(DROP_TTL)
        assert not expired.intersect(cube(dst=3)).is_empty
        # bounded by TTL: strictly more iterations than the clean line
        assert reach.iterations > reachability(line3()).iterations


class TestDestinationClasses:
    def test_partition_covers_and_separates(self):
        classes = destination_classes(line3())
        total = IntervalSet.empty()
        for cls in classes:
            assert total.intersect(cls).is_empty
            total = total.union(cls)
        assert total.intervals == ((0, 0xFFFF),)

    def test_each_node_address_is_a_singleton_class(self):
        classes = destination_classes(line3())
        singletons = [c.intervals for c in classes if len(c) == 1]
        for node in (1, 2, 3):
            assert ((node, node),) in singletons


class TestFindLoops:
    def test_clean_spec_has_no_loops(self):
        assert find_loops(line3()) == []

    def test_two_node_bounce_is_found_with_its_destinations(self):
        loops = find_loops(looped())
        assert len(loops) == 1
        assert loops[0].cycle == (1, 2)
        assert 3 in loops[0].destinations

    def test_default_injections_pin_src_and_ttl(self):
        spec = line3()
        injections = default_injections(spec)
        sample = injections[2].sample()
        assert sample["src"] == 2 and sample["ttl"] == spec.ttl
