"""Symbolic verdicts against the live data plane.

The analyzer claims to predict the runtime: a packet the symbolic
engine puts in a drop set must bump the matching
``forwarding/<addr>/...`` counter when actually sent, and the counter
names must equal the symbolic drop kinds (the satellite's dual-count
contract).
"""

from repro.flow.sets import cube
from repro.flow.spec import FlowSpec
from repro.flow.transfer import DROP_NO_ROUTE, DROP_TTL, NodeTransfer
from repro.network.forwarding import NO_ROUTE, TTL_EXPIRED
from repro.network.packets import DataPacket
from repro.network.topology import Topology
from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import Simulator


def converged_line(metrics: MetricsRegistry | None = None) -> Topology:
    sim = Simulator()
    kwargs = {"metrics": metrics} if metrics is not None else {}
    topo = Topology.build(sim, [(1, 2), (2, 3)], **kwargs)
    topo.start()
    assert topo.converge() is not None
    return topo


def test_drop_kind_names_match_the_runtime_metric_names():
    assert DROP_TTL == TTL_EXPIRED == "ttl_expired"
    assert DROP_NO_ROUTE == NO_ROUTE == "no_route"


def test_predicted_no_route_drop_bumps_the_counter():
    registry = MetricsRegistry()
    topo = converged_line(registry)
    spec = FlowSpec.from_topology(topo)
    packet = DataPacket.make(src=2, dst=999, payload=b"")

    step = NodeTransfer(spec, 1).apply(
        cube(src=packet.src, dst=packet.dst, ttl=packet.ttl)
    )
    assert not step.dropped[DROP_NO_ROUTE].is_empty  # the prediction

    before = registry.counter("forwarding/1/no_route")
    topo.routers[1].forwarding.forward(packet)
    assert registry.counter("forwarding/1/no_route") == before + 1
    # the pre-existing counter moves in lockstep
    assert registry.counter("forwarding/1/dropped_no_route") == before + 1


def test_predicted_ttl_expiry_bumps_the_counter():
    registry = MetricsRegistry()
    topo = converged_line(registry)
    spec = FlowSpec.from_topology(topo)
    packet = DataPacket.make(src=1, dst=3, payload=b"", ttl=1)

    step = NodeTransfer(spec, 2).apply(
        cube(src=packet.src, dst=packet.dst, ttl=packet.ttl)
    )
    assert not step.dropped[DROP_TTL].is_empty  # the prediction

    topo.routers[2].forwarding.forward(packet)
    assert registry.counter("forwarding/2/ttl_expired") == 1
    assert registry.counter("forwarding/2/dropped_ttl") == 1


def test_forwarded_traffic_does_not_touch_drop_counters():
    registry = MetricsRegistry()
    topo = converged_line(registry)
    topo.routers[2].forwarding.forward(
        DataPacket.make(src=1, dst=3, payload=b"")
    )
    assert registry.counter("forwarding/2/forwarded") == 1
    assert registry.counter("forwarding/2/ttl_expired") == 0
    assert registry.counter("forwarding/2/no_route") == 0


def test_unmetered_sublayer_still_forwards():
    topo = converged_line(None)
    topo.routers[1].forwarding.forward(
        DataPacket.make(src=3, dst=99, payload=b"")
    )
    assert topo.routers[1].forwarding.state.dropped_no_route == 1
