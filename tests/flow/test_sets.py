"""The symbolic packet-set algebra: intervals, ternary patterns, cubes."""

import pytest

from repro.core.errors import ConfigurationError
from repro.flow.sets import (
    FIELDS,
    IntervalSet,
    PacketSet,
    cube,
    ternary_intervals,
)


class TestIntervalSet:
    def test_of_merges_adjacent_and_duplicate_values(self):
        s = IntervalSet.of(3, 1, 2, 2, 7)
        assert s.intervals == ((1, 3), (7, 7))
        assert len(s) == 4

    def test_union_intersect_subtract(self):
        a = IntervalSet.from_intervals([(0, 10), (20, 30)])
        b = IntervalSet.from_intervals([(5, 25)])
        assert a.union(b).intervals == ((0, 30),)
        assert a.intersect(b).intervals == ((5, 10), (20, 25))
        assert a.subtract(b).intervals == ((0, 4), (26, 30))

    def test_complement_within_universe(self):
        s = IntervalSet.from_intervals([(2, 3), (8, 9)])
        assert s.complement(0, 9).intervals == ((0, 1), (4, 7))
        assert IntervalSet.empty().complement(0, 3).intervals == ((0, 3),)

    def test_shift_clips_to_bounds(self):
        s = IntervalSet.from_intervals([(0, 2), (250, 255)])
        shifted = s.shift(-1, 0, 255)
        assert shifted.intervals == ((0, 1), (249, 254))

    def test_membership_and_min(self):
        s = IntervalSet.from_intervals([(4, 6)])
        assert 5 in s and 7 not in s
        assert s.min() == 4

    def test_empty_set_behaviour(self):
        assert IntervalSet.empty().is_empty
        assert len(IntervalSet.empty()) == 0
        assert IntervalSet.of().is_empty


class TestTernary:
    def test_exact_pattern(self):
        assert ternary_intervals("0101").intervals == ((5, 5),)

    def test_wildcard_suffix_is_one_interval(self):
        assert ternary_intervals("01xx").intervals == ((4, 7),)

    def test_wildcard_in_the_middle_splits(self):
        # 1x0 -> {100, 110} = {4, 6}
        assert ternary_intervals("1x0").intervals == ((4, 4), (6, 6))

    def test_all_wildcards_cover_the_space(self):
        assert ternary_intervals("xxxx").intervals == ((0, 15),)

    def test_rejects_bad_characters(self):
        with pytest.raises(ConfigurationError):
            ternary_intervals("01z")


class TestPacketSet:
    def test_cube_accepts_ints_pairs_and_sets(self):
        ps = cube(src=3, dst=(10, 20), ttl=IntervalSet.of(32))
        sample = ps.sample()
        assert sample["src"] == 3 and sample["ttl"] == 32
        assert 10 <= sample["dst"] <= 20

    def test_count_is_exact_over_unions(self):
        a = cube(dst=(0, 9), src=1, ttl=1)
        b = cube(dst=(5, 14), src=1, ttl=1)
        assert a.union(b).count() == 15  # not 10 + 10

    def test_union_keeps_cubes_disjoint(self):
        a = cube(dst=(0, 9))
        u = a.union(a)
        assert u.count() == a.count()

    def test_subtract_and_negate_partition_the_universe(self):
        a = cube(dst=(100, 200), ttl=(1, 10))
        everything = PacketSet.all()
        assert a.union(a.negate()).count() == everything.count()
        assert a.intersect(a.negate()).is_empty
        assert everything.subtract(a).count() == (
            everything.count() - a.count()
        )

    def test_constrain_and_project(self):
        ps = cube(dst=(0, 50)).constrain("dst", IntervalSet.of(7, 99))
        assert ps.project("dst").intervals == ((7, 7),)

    def test_shift_field_models_ttl_decrement(self):
        ps = cube(ttl=(1, 3)).shift_field("ttl", -1)
        assert ps.project("ttl").intervals == ((0, 2),)

    def test_contains_concrete_packet(self):
        ps = cube(src=1, dst=(4, 6))
        assert ps.contains({"src": 1, "dst": 5, "ttl": 0})
        assert not ps.contains({"src": 2, "dst": 5, "ttl": 0})

    def test_as_dict_is_canonical_across_cube_order(self):
        a = cube(dst=(0, 4)).union(cube(dst=(10, 14)))
        b = cube(dst=(10, 14)).union(cube(dst=(0, 4)))
        assert a.as_dict() == b.as_dict()

    def test_fields_registry_shape(self):
        assert set(FIELDS) == {"src", "dst", "ttl"}
        assert FIELDS["ttl"] == 8
