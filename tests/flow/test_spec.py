"""FlowSpec loading, validation, topology snapshot, fingerprinting."""

import pytest

from repro.core.errors import ConfigurationError
from repro.flow.spec import DEFAULT_TTL, FlowSpec, spec_fingerprint
from repro.network.topology import Topology
from repro.sim.engine import Simulator


def line3() -> dict:
    return {
        "name": "line",
        "nodes": [1, 2, 3],
        "edges": [[1, 2], [2, 3]],
        "fibs": {
            "1": {"2": 2, "3": 2},
            "2": {"1": 1, "3": 3},
            "3": {"1": 2, "2": 2},
        },
    }


class TestFromDict:
    def test_roundtrip_through_as_dict(self):
        spec = FlowSpec.from_dict(line3())
        again = FlowSpec.from_dict(spec.as_dict())
        assert again == spec

    def test_edges_expand_both_directions(self):
        spec = FlowSpec.from_dict(line3())
        assert (1, 2) in spec.edges and (2, 1) in spec.edges
        assert spec.neighbors(2) == frozenset({1, 3})

    def test_zone_space_defaults_to_member_addresses(self):
        data = line3()
        data["zones"] = [{"name": "z", "nodes": [1, 3]}]
        spec = FlowSpec.from_dict(data)
        assert spec.zones[0].space.intervals == ((1, 1), (3, 3))

    def test_tenant_space_override(self):
        data = line3()
        data["tenants"] = [{"name": "t", "nodes": [1], "space": [[5, 9]]}]
        spec = FlowSpec.from_dict(data)
        assert spec.tenants[0].space.intervals == ((5, 9),)

    def test_default_ttl(self):
        assert FlowSpec.from_dict(line3()).ttl == DEFAULT_TTL

    def test_unknown_edge_node_rejected(self):
        data = line3()
        data["edges"].append([3, 9])
        with pytest.raises(ConfigurationError):
            FlowSpec.from_dict(data)

    def test_unknown_fib_node_rejected(self):
        data = line3()
        data["fibs"]["9"] = {"1": 2}
        with pytest.raises(ConfigurationError):
            FlowSpec.from_dict(data)

    def test_unknown_zone_node_rejected(self):
        data = line3()
        data["zones"] = [{"name": "z", "nodes": [42]}]
        with pytest.raises(ConfigurationError):
            FlowSpec.from_dict(data)


class TestFixtures:
    def test_every_fixture_loads(self, fixtures):
        for path in sorted(fixtures.glob("*.json")):
            spec = FlowSpec.from_file(path)
            assert spec.name == path.stem
            assert spec.nodes

    def test_missing_file_raises(self, fixtures):
        with pytest.raises(ConfigurationError):
            FlowSpec.from_file(fixtures / "nope.json")


class TestFingerprint:
    def test_stable_across_declaration_order(self):
        a = FlowSpec.from_dict(line3())
        data = line3()
        data["nodes"] = [3, 1, 2]
        data["edges"] = [[2, 3], [1, 2]]
        b = FlowSpec.from_dict(data)
        assert spec_fingerprint(a) == spec_fingerprint(b)

    def test_changes_when_a_route_changes(self):
        a = FlowSpec.from_dict(line3())
        data = line3()
        data["fibs"]["1"]["3"] = 3  # reroute via a different next hop
        b = FlowSpec.from_dict(data)
        assert spec_fingerprint(a) != spec_fingerprint(b)


class TestFromTopology:
    def test_snapshot_matches_installed_fibs(self):
        sim = Simulator()
        topo = Topology.build(sim, [(1, 2), (2, 3)])
        topo.start()
        assert topo.converge() is not None
        spec = FlowSpec.from_topology(topo, name="snap")
        assert spec.name == "snap"
        assert set(spec.nodes) == {1, 2, 3}
        assert spec.fib_of(1) == topo.routers[1].forwarding.fib()

    def test_failed_links_are_absent_from_edges(self):
        sim = Simulator()
        topo = Topology.build(sim, [(1, 2), (2, 3)])
        topo.start()
        assert topo.converge() is not None
        topo.fail_link(2, 3)
        spec = FlowSpec.from_topology(topo)
        assert (2, 3) not in spec.edges and (3, 2) not in spec.edges

    def test_annotations_pass_through(self):
        sim = Simulator()
        topo = Topology.build(sim, [(1, 2)])
        topo.start()
        assert topo.converge() is not None
        spec = FlowSpec.from_topology(
            topo, zones=[{"name": "z", "nodes": [1]}], ttl=8
        )
        assert spec.zones[0].name == "z"
        assert spec.ttl == 8
