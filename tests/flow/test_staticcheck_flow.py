"""The staticcheck bridge: flow properties as T4/T5 rules."""

import json
from pathlib import Path

from repro.staticcheck import run_staticcheck
from repro.staticcheck.__main__ import main
from repro.staticcheck.flowcheck import check_flow_properties
from repro.staticcheck.report import ALL_RULES, FLOW_RULES

SRC_REPRO = str(Path(__file__).parents[2] / "src" / "repro")


def test_flow_rules_absent_without_the_flag():
    report = run_staticcheck(SRC_REPRO)
    assert [r.name for r in report.results] == [rule for rule, _ in ALL_RULES]


def test_flow_flag_appends_the_two_rules():
    report = run_staticcheck(SRC_REPRO, flow=True)
    names = [r.name for r in report.results]
    assert names == [rule for rule, _ in ALL_RULES + FLOW_RULES]
    assert report.passed  # the shipped examples prove everything


def test_flow_spec_findings_become_violations(fixtures):
    report = run_staticcheck(
        SRC_REPRO, flow_specs=[fixtures / "loop.json"]
    )
    assert not report.passed
    flow_violations = [
        v for v in report.violations if v.rule == "flow-reachability"
    ]
    assert len(flow_violations) == 1
    assert "[loop-freedom]" in flow_violations[0].message
    assert flow_violations[0].path.endswith("loop.json")


def test_isolation_findings_use_the_t5_rule(fixtures):
    violations = check_flow_properties(
        topologies=[], spec_files=[fixtures / "overlap.json"]
    )
    assert [v.rule for v in violations] == ["flow-isolation"]


def test_example_topologies_are_clean():
    assert check_flow_properties() == []


def test_cli_flow_spec_json_format(fixtures, capsys):
    exit_code = main(
        [
            "--format",
            "json",
            "--flow-spec",
            str(fixtures / "escape.json"),
            SRC_REPRO,
        ]
    )
    assert exit_code == 1
    data = json.loads(capsys.readouterr().out)
    rules = {r["name"]: r["passed"] for r in data["results"]}
    assert rules["flow-reachability"] is False
    assert rules["flow-isolation"] is True


def test_cli_flow_github_annotations(fixtures, capsys):
    exit_code = main(
        [
            "--format",
            "github",
            "--flow-spec",
            str(fixtures / "blackhole.json"),
            SRC_REPRO,
        ]
    )
    assert exit_code == 1
    out = capsys.readouterr().out
    assert "title=staticcheck flow-reachability" in out
    assert "[blackhole-freedom]" in out
