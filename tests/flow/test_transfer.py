"""NodeTransfer mirrors ForwardingSublayer.forward branch-for-branch.

The cross-validation harness drives both the concrete sublayer and the
symbolic transfer with the same packets and asserts identical fates —
the guarantee that lets a static verdict speak for the runtime.
"""

import pytest

from repro.flow.sets import cube
from repro.flow.spec import FlowSpec
from repro.flow.transfer import (
    DROP_NO_INTERFACE,
    DROP_NO_ROUTE,
    DROP_TTL,
    NodeTransfer,
    build_transfers,
)
from repro.network.forwarding import ForwardingSublayer
from repro.network.packets import DataPacket

SPEC = FlowSpec.from_dict(
    {
        "name": "xval",
        "nodes": [1, 2, 3, 4],
        "edges": [[1, 2], [1, 3]],
        # 4 is routed but unreachable (no live edge), 9 is no node at all.
        "fibs": {"1": {"2": 2, "3": 3, "4": 4}},
    }
)


def concrete_fate(packet: DataPacket) -> tuple[str, int | None, int | None]:
    """(fate, next_hop, out_ttl) from a real ForwardingSublayer."""
    sent: list[tuple[int, DataPacket]] = []
    interfaces = {2: 0, 3: 1}  # next_hop -> interface, 4 unresolvable
    sublayer = ForwardingSublayer(
        address=1,
        send_on_interface=lambda i, p: sent.append((i, p)),
        resolve_interface=lambda nh: interfaces.get(nh),
    )
    sublayer.install({2: 2, 3: 3, 4: 4})
    delivered: list[DataPacket] = []
    sublayer.on_deliver = delivered.append
    sublayer.forward(packet)
    if delivered:
        return ("delivered", None, None)
    if sent:
        interface, out = sent[0]
        next_hop = {0: 2, 1: 3}[interface]
        return ("forwarded", next_hop, out.ttl)
    state = sublayer.state
    for fate, counter in (
        (DROP_NO_ROUTE, state.dropped_no_route),
        (DROP_TTL, state.dropped_ttl),
        (DROP_NO_INTERFACE, state.dropped_no_interface),
    ):
        if counter:
            return (fate, None, None)
    raise AssertionError("packet vanished")


def symbolic_fate(packet: DataPacket) -> tuple[str, int | None, int | None]:
    """The same classification from the symbolic transfer function."""
    transfer = NodeTransfer(SPEC, 1)
    one = cube(src=packet.src, dst=packet.dst, ttl=packet.ttl)
    step = transfer.apply(one, originate=False)
    if not step.delivered.is_empty:
        return ("delivered", None, None)
    for next_hop, out in step.forwarded.items():
        if not out.is_empty:
            return ("forwarded", next_hop, out.sample()["ttl"])
    for kind, dropped in step.dropped.items():
        if not dropped.is_empty:
            return (kind, None, None)
    raise AssertionError("packet set vanished")


CASES = [
    DataPacket.make(src=2, dst=1, payload=b""),  # delivered (dst == self)
    DataPacket.make(src=2, dst=3, payload=b""),  # forwarded to 3
    DataPacket.make(src=3, dst=2, payload=b"", ttl=2),  # forwarded, ttl 2->1
    DataPacket.make(src=2, dst=99, payload=b""),  # no route
    DataPacket.make(src=2, dst=3, payload=b"", ttl=1),  # ttl expiry
    DataPacket.make(src=2, dst=4, payload=b""),  # no interface for hop 4
    DataPacket.make(src=2, dst=1, payload=b"", ttl=1),  # deliver beats ttl
]


@pytest.mark.parametrize("packet", CASES, ids=lambda p: f"dst{p.dst}ttl{p.ttl}")
def test_symbolic_matches_concrete(packet):
    assert symbolic_fate(packet) == concrete_fate(packet)


def test_originate_skips_ttl_check_and_decrement():
    transfer = NodeTransfer(SPEC, 1)
    one = cube(src=1, dst=3, ttl=1)
    step = transfer.apply(one, originate=True)
    out = step.forwarded[3]
    assert out.sample()["ttl"] == 1  # not decremented, not expired
    assert all(d.is_empty for d in step.dropped.values())


def test_exhaustive_sweep_over_small_universe():
    """Every (dst, ttl) pair in a reduced universe agrees end to end."""
    for dst in [1, 2, 3, 4, 50]:
        for ttl in [1, 2, 31]:
            packet = DataPacket.make(src=2, dst=dst, payload=b"", ttl=ttl)
            assert symbolic_fate(packet) == concrete_fate(packet), (dst, ttl)


def test_transfer_graph_covers_every_node():
    graph = build_transfers(SPEC)
    for node in SPEC.nodes:
        assert graph.at(node).address == node
