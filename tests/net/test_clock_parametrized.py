"""The same ARQ/CM timer logic on the sim clock and a fake wall clock.

The live runtime's whole premise is that sublayer timers only know the
``core`` Clock protocol.  These tests run the identical sublayered TCP
stack over (a) the simulator's event-heap clock and (b) a ManualClock
standing in for the asyncio loop — same handshake, same retransmission
recovery, no sim import anywhere in the stack's path.
"""

import pytest

from repro.core.clock import ManualClock
from repro.sim import Simulator
from repro.transport import SublayeredTcpHost, TcpConfig

from ..transport.helpers import pattern


class World:
    """One clock implementation plus a way to pass time on it."""

    def __init__(self, kind):
        self.kind = kind
        if kind == "sim":
            self.sim = Simulator()
            self.clock = self.sim.clock()
        else:
            self.sim = None
            self.clock = ManualClock()

    def pump(self, duration):
        """Advance time by ``duration`` seconds, firing due timers."""
        if self.sim is not None:
            self.sim.run(until=self.sim.now + duration)
        else:
            self.clock.advance(duration)


@pytest.fixture(params=["sim", "manual"])
def world(request):
    return World(request.param)


def wire_pair(world):
    """Two hosts joined by a zero-delay wire scheduled on the clock.

    Delivery goes through ``clock.call_later(0, ...)`` rather than a
    direct call — like a real wire (and the asyncio loop), a unit never
    arrives re-entrantly inside the send that produced it.
    """
    config = TcpConfig(mss=500)
    a = SublayeredTcpHost("a", world.clock, config)
    b = SublayeredTcpHost("b", world.clock, config)
    clock = world.clock
    a.on_transmit = lambda unit, **meta: clock.call_later(
        0.0, lambda: b.receive(unit)
    )
    b.on_transmit = lambda unit, **meta: clock.call_later(
        0.0, lambda: a.receive(unit)
    )
    return a, b


def start_transfer(a, b, payload):
    """Listen on b, connect from a, send payload; returns the chunks."""
    received = []
    b.listen(80)
    b.on_accept = lambda s: setattr(s, "on_data", received.append)
    sock = a.connect(1234, 80)
    sock.on_connect = lambda: (sock.send(payload), sock.close())
    return received


def test_clean_transfer_runs_on_either_clock(world):
    a, b = wire_pair(world)
    payload = pattern(8_000)
    received = start_transfer(a, b, payload)
    world.pump(5.0)
    assert b"".join(received) == payload


def test_arq_retransmit_timer_fires_on_either_clock(world):
    a, b = wire_pair(world)
    # Drop the first data-bearing unit a transmits: delivery then
    # depends entirely on the RD retransmission timer going off.
    forward = a.on_transmit
    dropped = []

    def lossy(unit, **meta):
        inner = list(unit.header_chain())[-1].inner
        if not dropped and isinstance(inner, bytes) and inner:
            dropped.append(unit)
            return
        forward(unit, **meta)

    a.on_transmit = lossy
    payload = pattern(3_000)
    received = start_transfer(a, b, payload)
    world.pump(10.0)
    assert len(dropped) == 1
    assert b"".join(received) == payload


def test_cm_connect_retry_timer_fires_on_either_clock(world):
    a, b = wire_pair(world)
    # Drop the very first unit (the SYN): the handshake only completes
    # if the CM connect-retry timer re-sends it.
    forward = a.on_transmit
    dropped = []

    def lossy(unit, **meta):
        if not dropped:
            dropped.append(unit)
            return
        forward(unit, **meta)

    a.on_transmit = lossy
    payload = pattern(1_000)
    received = start_transfer(a, b, payload)
    world.pump(10.0)
    assert len(dropped) == 1
    assert b"".join(received) == payload


def test_timer_handles_cancel_on_either_clock(world):
    fired = []
    live = world.clock.call_later(1.0, lambda: fired.append("live"))
    dead = world.clock.call_later(1.0, lambda: fired.append("dead"))
    dead.cancel()
    assert dead.cancelled and not live.cancelled
    world.pump(2.0)
    assert fired == ["live"]
