"""WireCodec: structured PDU trees to datagrams and back, bit-exactly."""

import pytest

from repro.core.header import Field, HeaderFormat
from repro.core.pdu import Pdu
from repro.net import CodecError, WireCodec, codec_for_profile, tcp_codec

from ..transport.helpers import make_pair, pattern


def captured_wire_units(payload_bytes: int = 12_000):
    """Every unit both hosts of a clean sim transfer put on the wire."""
    sim, a, b, _link = make_pair()
    units = []
    for host in (a, b):
        forward = host.on_transmit

        def tap(unit, _forward=forward, **meta):
            units.append(unit)
            _forward(unit, **meta)

        host.on_transmit = tap
    b.listen(80)
    payload = pattern(payload_bytes)
    received = []
    sock = a.connect(1234, 80)
    sock.on_connect = lambda: (sock.send(payload), sock.close())
    b.on_accept = lambda s: setattr(s, "on_data", received.append)
    sim.run(until=30)
    assert b"".join(received) == payload
    return units


def test_every_wire_shape_round_trips():
    codec = tcp_codec()
    units = captured_wire_units()
    # The transfer exercises all three shapes: handshake (dm|cm),
    # pure ack (dm|cm|rd), data (dm|cm|rd|osr + payload).
    depths = {len(list(u.header_chain())) for u in units}
    assert depths == {2, 3, 4}
    for unit in units:
        wire = codec.encode(unit)
        back = codec.decode(wire)
        assert [p.owner for p in back.header_chain()] == [
            p.owner for p in unit.header_chain()
        ]
        # Unpacking materializes declared padding fields the native
        # stack leaves implicit, so compare field-by-field on the
        # fields the sender actually set …
        for sent, got in zip(unit.header_chain(), back.header_chain()):
            for field, value in sent.header.items():
                assert got.header[field] == value
        assert list(back.header_chain())[-1].inner == (
            list(unit.header_chain())[-1].inner
        )
        # … and prove nothing was lost: re-encoding the rebuilt
        # structure is byte-identical.
        assert codec.encode(back) == wire


def test_empty_payload_distinct_from_absent():
    codec = tcp_codec()
    units = captured_wire_units()
    data_unit = next(
        u for u in units if isinstance(list(u.header_chain())[-1].inner, bytes)
    )
    # Rebuild the same header chain around an *empty* SDU (an OSR
    # control unit) and around an absent one; the payload flag must
    # keep them distinct through the round trip.
    for inner in (b"", None):
        unit = inner
        for pdu in reversed(list(data_unit.header_chain())):
            unit = Pdu(pdu.owner, pdu.format, dict(pdu.header), unit)
        back = codec.decode(codec.encode(unit))
        assert list(back.header_chain())[-1].inner == inner


def test_decode_rejects_garbage():
    codec = tcp_codec()
    with pytest.raises(CodecError):
        codec.decode(b"")
    with pytest.raises(CodecError):
        codec.decode(b"\x00\x01\x00")  # wrong magic
    with pytest.raises(CodecError):
        codec.decode(bytes((codec.magic, 9, 0)))  # too many headers
    with pytest.raises(CodecError):
        codec.decode(bytes((codec.magic, 1, 2)))  # bad payload flag
    with pytest.raises(CodecError):
        codec.decode(bytes((codec.magic, 1, 0)) + b"\x00")  # truncated/trailing


def test_decode_rejects_truncated_real_datagram():
    codec = tcp_codec()
    unit = captured_wire_units()[0]
    wire = codec.encode(unit)
    with pytest.raises(CodecError):
        codec.decode(wire[: len(wire) - 1 - (0 if len(wire) > 4 else 0)][:4])


def test_encode_rejects_foreign_units():
    codec = tcp_codec()
    with pytest.raises(CodecError):
        codec.encode(b"raw bytes are not a wire unit")
    fmt = HeaderFormat("x", [Field("f", 8)])
    with pytest.raises(CodecError):
        codec.encode(Pdu("stranger", fmt, {"f": 1}, None))


def test_declaration_validates_magic_and_layers():
    fmt = HeaderFormat("x", [Field("f", 8)])
    with pytest.raises(CodecError):
        WireCodec("bad", magic=300, layers=(("x", fmt),))
    with pytest.raises(CodecError):
        WireCodec("bad", magic=1, layers=())


def test_codec_for_profile():
    assert codec_for_profile("tcp").name == "tcp"
    with pytest.raises(CodecError):
        codec_for_profile("hdlc")
