"""UDPEndpoint: real datagram sockets bridging stack hooks."""

import asyncio

from repro.net import UDPEndpoint, tcp_codec
from repro.net.endpoint import open_endpoint
from repro.obs import MetricsRegistry

from .test_codec import captured_wire_units


class FakeHost:
    """The minimal host surface an endpoint bridges: receive + transmit."""

    def __init__(self):
        self.received = []
        self.on_transmit = None

    def receive(self, unit):
        self.received.append(unit)


def first_toward(units, dport):
    """The first captured wire unit addressed to stack port ``dport``."""
    return next(u for u in units if u.header["dport"] == dport)


def test_connected_client_to_bound_server_and_back():
    units = captured_wire_units()
    client_syn = first_toward(units, 80)  # dm|cm handshake, sport=1234

    async def scenario():
        codec = tcp_codec()
        server_host, client_host = FakeHost(), FakeHost()
        server = UDPEndpoint(server_host, codec, name="server")
        await open_endpoint(server, local_addr=("127.0.0.1", 0))
        client = UDPEndpoint(client_host, codec, name="client")
        await open_endpoint(client, remote_addr=server.local_address)

        # Client -> server: the server learns which UDP address the
        # stack port 1234 lives at from the outermost sport field.
        client_host.on_transmit(client_syn)
        await asyncio.sleep(0.05)
        assert len(server_host.received) == 1
        sport = client_syn.header["sport"]
        assert sport in server.peers

        # Server -> client: routed by dport through the learned table.
        reply = first_toward(units, sport)
        assert reply.header["dport"] == sport
        server_host.on_transmit(reply)
        await asyncio.sleep(0.05)
        assert len(client_host.received) == 1
        assert client.stats()["datagrams_in"] == 1
        assert server.stats()["datagrams_in"] == 1
        assert server.stats()["datagrams_out"] == 1
        client.close()
        server.close()

    asyncio.run(scenario())


def test_malformed_datagrams_are_counted_and_dropped():
    async def scenario():
        codec = tcp_codec()
        host = FakeHost()
        registry = MetricsRegistry()
        server = UDPEndpoint(host, codec, name="server", metrics=registry)
        await open_endpoint(server, local_addr=("127.0.0.1", 0))

        loop = asyncio.get_running_loop()
        transport, _ = await loop.create_datagram_endpoint(
            asyncio.DatagramProtocol, remote_addr=server.local_address
        )
        transport.sendto(b"\xffgarbage that is no wire unit")
        await asyncio.sleep(0.05)
        assert host.received == []
        assert server.stats()["decode_errors"] == 1
        assert registry.counter("net/server/decode_errors") == 1
        transport.close()
        server.close()

    asyncio.run(scenario())


def test_transmit_to_unknown_peer_is_unroutable():
    reply = first_toward(captured_wire_units(), 1234)

    async def scenario():
        host = FakeHost()
        server = UDPEndpoint(host, tcp_codec(), name="server")
        await open_endpoint(server, local_addr=("127.0.0.1", 0))
        # No datagram has arrived, so no peer address is known for the
        # reply's destination port: counted, not raised.
        host.on_transmit(reply)
        assert server.stats()["unroutable"] == 1
        assert server.stats()["datagrams_out"] == 0
        server.close()
        # After close the endpoint has no transport at all.
        host.on_transmit(reply)
        assert server.stats()["unroutable"] == 2

    asyncio.run(scenario())


def test_close_is_idempotent():
    async def scenario():
        host = FakeHost()
        endpoint = UDPEndpoint(host, tcp_codec())
        await open_endpoint(endpoint, local_addr=("127.0.0.1", 0))
        endpoint.close()
        endpoint.close()
        assert "closed" in repr(endpoint)

    asyncio.run(scenario())
