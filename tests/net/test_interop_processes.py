"""Two OS processes interoperating over localhost UDP via the CLI.

This is the acceptance test for the live runtime: one ``serve``
process and one ``load`` process, each hosting full sublayered TCP
stacks built from the unmodified profile, exchanging file-sized
payloads losslessly over a real socket.
"""

import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).parents[2]


def spawn_server(*extra):
    """Start ``python -m repro.net serve`` and scrape its bound port."""
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.net",
            "serve",
            "--udp-port",
            "0",
            "--duration",
            "60",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=REPO,
    )
    line = process.stdout.readline()
    match = re.match(r"listening (\S+):(\d+) tcp-port (\d+)", line)
    if match is None:
        process.kill()
        pytest.fail(f"serve did not announce its address: {line!r}")
    return process, (match.group(1), int(match.group(2)))


def run_cli(*args, timeout=120):
    """Run one repro.net CLI invocation to completion."""
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro.net", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
        timeout=timeout,
    )


def test_two_processes_exchange_file_sized_payload(tmp_path):
    server, (host, port) = spawn_server()
    report_path = tmp_path / "report.json"
    try:
        # 2 clients x 8 messages x 4 KiB = 64 KiB echoed back through
        # a separate OS process, every byte verified.
        result = run_cli(
            "load",
            "--server",
            f"{host}:{port}",
            "--clients",
            "2",
            "--messages",
            "8",
            "--size",
            "4096",
            "--out",
            str(report_path),
        )
    finally:
        server.kill()
        server.wait()
    assert result.returncode == 0, result.stdout + result.stderr
    report = json.loads(report_path.read_text())
    assert report["ok"] is True
    assert report["lossless"] is True
    assert report["bytes_sent"] == report["bytes_echoed"] == 2 * 8 * 4096
    assert report["latency"]["count"] == 2 * 8
    assert report["latency"]["p99"] > 0
    assert report["throughput_bps"] > 0
    assert report["errors"] == []


def test_load_against_dead_server_fails_cleanly():
    # Nothing listens on this port: the load run must time out per
    # client and exit non-zero, not hang or crash.
    result = run_cli(
        "load",
        "--server",
        "127.0.0.1:1",
        "--clients",
        "1",
        "--messages",
        "1",
        "--size",
        "64",
        "--timeout",
        "3",
        "--json",
    )
    assert result.returncode == 1
    report = json.loads(result.stdout)
    assert report["ok"] is False
    assert report["errors"]


def test_twin_cli_reports_parity():
    result = run_cli(
        "twin", "--payload-bytes", "8000", "--time-limit", "20", "--json"
    )
    assert result.returncode == 0, result.stdout + result.stderr
    document = json.loads(result.stdout)
    assert document["ok"] is True
    backends = {r["backend"]: r for r in document["results"]}
    assert set(backends) == {"sim", "net"}
    for report in backends.values():
        assert report["ok"] is True
        assert report["bytes_received"] == 8000
