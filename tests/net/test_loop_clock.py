"""LoopClock: the core Clock protocol backed by a live asyncio loop."""

import asyncio

import pytest

from repro.core.clock import Clock
from repro.net import LoopClock


def test_loop_clock_satisfies_the_core_protocol():
    async def check():
        clock = LoopClock(asyncio.get_running_loop())
        assert isinstance(clock, Clock)

    asyncio.run(check())


def test_now_tracks_loop_time():
    async def check():
        loop = asyncio.get_running_loop()
        clock = LoopClock(loop)
        before = clock.now()
        await asyncio.sleep(0.02)
        after = clock.now()
        assert after > before
        assert abs(after - loop.time()) < 0.05

    asyncio.run(check())


def test_call_later_fires_on_the_loop():
    async def check():
        clock = LoopClock(asyncio.get_running_loop())
        fired = []
        handle = clock.call_later(0.01, lambda: fired.append(clock.now()))
        assert not handle.cancelled
        await asyncio.sleep(0.05)
        assert len(fired) == 1
        assert fired[0] >= handle.when - 0.01

    asyncio.run(check())


def test_cancel_prevents_the_callback():
    async def check():
        clock = LoopClock(asyncio.get_running_loop())
        fired = []
        handle = clock.call_later(0.01, lambda: fired.append(True))
        handle.cancel()
        assert handle.cancelled
        handle.cancel()  # idempotent
        await asyncio.sleep(0.03)
        assert fired == []

    asyncio.run(check())


def test_negative_delay_rejected():
    async def check():
        clock = LoopClock(asyncio.get_running_loop())
        with pytest.raises(ValueError):
            clock.call_later(-0.5, lambda: None)

    asyncio.run(check())
