"""Two-runtime parity: one TransferSpec, same delivery on sim and net."""

import pytest

from repro.compose import (
    TransferSpec,
    available_backends,
    get_backend,
    run_transfer,
)
from repro.core.errors import ConfigurationError


def test_both_backends_are_discoverable():
    names = available_backends()
    assert "sim" in names and "net" in names
    assert "simulator" in get_backend("sim").description
    assert "asyncio" in get_backend("net").description


def test_unknown_backend_is_a_configuration_error():
    with pytest.raises(ConfigurationError):
        run_transfer(TransferSpec(), backend="quantum")


def test_non_tcp_profiles_are_rejected_on_both_backends():
    for backend in ("sim", "net"):
        with pytest.raises(ConfigurationError):
            run_transfer(TransferSpec(profile="hdlc"), backend=backend)


def test_same_spec_delivers_identical_bytes_on_both_runtimes():
    spec = TransferSpec(payload_bytes=25_000, mss=1000, time_limit=20.0)
    sim_result = run_transfer(spec, backend="sim")
    net_result = run_transfer(spec, backend="net")
    assert sim_result.ok, sim_result.as_dict()
    assert net_result.ok, net_result.as_dict()
    # Matching delivery semantics: byte-identical payloads delivered
    # losslessly on the virtual wire and the real one.
    assert sim_result.received == net_result.received == sim_result.sent
    assert sim_result.backend == "sim" and net_result.backend == "net"
    # The sim twin reports virtual time and event counts; the live
    # runtime reports wall time and datagram counts.
    assert sim_result.details["events_processed"] > 0
    assert net_result.details["client_endpoint"]["datagrams_out"] > 0
    assert net_result.details["server_endpoint"]["decode_errors"] == 0


def test_result_dict_shape_is_backend_agnostic():
    spec = TransferSpec(payload_bytes=4_000, time_limit=10.0)
    for backend in ("sim", "net"):
        doc = run_transfer(spec, backend=backend).as_dict()
        assert doc["ok"] is True
        assert doc["bytes_sent"] == doc["bytes_received"] == 4_000
        assert set(doc) == {
            "backend",
            "ok",
            "bytes_sent",
            "bytes_received",
            "duration_s",
            "details",
        }
