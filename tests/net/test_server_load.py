"""NetServer + LoadGenerator: live echo traffic measured end to end."""

import asyncio

import pytest

from repro.core.errors import ConfigurationError
from repro.net import LoadGenerator, NetServer
from repro.net.load import RTT_HIST, pattern


def run_load(server, **kwargs):
    """One in-process server + load run on a single loop."""

    async def scenario():
        endpoint = await server.start()
        generator = LoadGenerator(endpoint.local_address, **kwargs)
        try:
            return generator, await generator.run()
        finally:
            server.close()

    return asyncio.run(scenario())


def test_echo_load_is_lossless_with_latency_histogram():
    server = NetServer(tcp_port=80, mode="echo")
    generator, report = run_load(
        server, clients=3, messages=5, size=512, timeout=30.0
    )
    assert report.ok, report.as_dict()
    assert report.lossless
    assert report.bytes_sent == report.bytes_echoed == 3 * 5 * 512
    # One RTT sample per message, from the shared obs histogram.
    assert report.latency["count"] == 3 * 5
    assert report.latency["p50"] > 0
    assert report.latency["p50"] <= report.latency["p95"]
    assert report.latency["p95"] <= report.latency["p99"]
    assert generator.registry.hist(RTT_HIST).count == 3 * 5
    # Each client connected on its own stack port and came back intact.
    assert [c["port"] for c in report.per_client] == [40000, 40001, 40002]
    assert all(c["intact"] for c in report.per_client)
    assert server.accepted == 3
    assert server.bytes_echoed == report.bytes_echoed


def test_report_dict_is_json_shaped():
    import json

    server = NetServer(tcp_port=80, mode="echo")
    _, report = run_load(server, clients=1, messages=2, size=128)
    doc = report.as_dict()
    json.dumps(doc)  # must not raise
    assert doc["ok"] is True
    assert doc["latency"]["count"] == 2
    assert doc["endpoint"]["decode_errors"] == 0
    # The full obs snapshot rides along by default (CI artifact).
    assert RTT_HIST in doc["metrics"]["hists"]


def test_metrics_snapshot_can_be_omitted():
    server = NetServer(tcp_port=80, mode="echo")
    _, report = run_load(
        server, clients=1, messages=1, size=64, include_metrics=False
    )
    assert report.ok
    assert report.metrics == {}


def test_sink_mode_counts_without_echoing():
    server = NetServer(tcp_port=80, mode="sink")

    async def scenario():
        endpoint = await server.start()
        from repro.net.clock import LoopClock
        from repro.net.codec import codec_for_profile
        from repro.net.endpoint import UDPEndpoint, open_endpoint
        from repro.transport.sublayered.host import SublayeredTcpHost

        loop = asyncio.get_running_loop()
        host = SublayeredTcpHost("client", LoopClock(loop), None)
        client = UDPEndpoint(host, codec_for_profile("tcp"), name="client")
        await open_endpoint(client, remote_addr=endpoint.local_address)
        connected = loop.create_future()
        closed = loop.create_future()
        sock = host.connect(2000, 80)
        sock.on_connect = lambda: connected.set_result(True)
        sock.on_close = lambda: closed.set_result(True)
        await asyncio.wait_for(connected, timeout=10)
        sock.send(pattern(4096))
        sock.close()
        await asyncio.wait_for(closed, timeout=10)
        client.close()
        server.close()

    asyncio.run(scenario())
    assert server.bytes_sunk == 4096
    assert server.bytes_echoed == 0


def test_unknown_serve_mode_rejected():
    with pytest.raises(ConfigurationError):
        NetServer(mode="mirror")


def test_server_stats_shape():
    server = NetServer(tcp_port=80, mode="echo")
    _, report = run_load(server, clients=2, messages=2, size=256)
    stats = server.stats()
    assert stats["accepted"] == 2
    assert stats["closed"] == 2
    assert stats["mode"] == "echo"
    assert stats["endpoint"]["datagrams_in"] > 0
    assert report.ok
