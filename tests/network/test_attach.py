"""Integration: transport over the routed network (layers composing)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.network import LinkState, Topology
from repro.network.attach import attach_transport
from repro.sim import Simulator
from repro.transport import MonolithicTcpHost, SublayeredTcpHost, TcpConfig

MESH = [(1, 2), (2, 3), (3, 4), (4, 1), (2, 5), (5, 6), (6, 3)]


def build_network(routing_cls=LinkState):
    sim = Simulator()
    topo = Topology.build(sim, MESH, routing_cls=routing_cls)
    topo.start()
    assert topo.converge(timeout=30) is not None
    return sim, topo


def pattern(nbytes):
    return bytes(i % 251 for i in range(nbytes))


class TestAttachment:
    def test_sublayered_tcp_over_mesh(self):
        sim, topo = build_network()
        cfg = TcpConfig(mss=800, rto_initial=0.3)
        client = SublayeredTcpHost("c", sim.clock(), cfg)
        server = SublayeredTcpHost("s", sim.clock(), cfg)
        attach_transport(client, topo.routers[1], peer=6)
        attach_transport(server, topo.routers[6], peer=1)
        server.listen(80)
        data = pattern(40_000)
        sock = client.connect(1000, 80)
        sock.on_connect = lambda: (sock.send(data), sock.close())
        sim.run(until=60)
        assert server.socket_for(80, 1000).bytes_received() == data

    def test_monolithic_tcp_over_mesh(self):
        sim, topo = build_network()
        cfg = TcpConfig(mss=800, rto_initial=0.3)
        client = MonolithicTcpHost("c", sim.clock(), cfg)
        server = MonolithicTcpHost("s", sim.clock(), cfg)
        attach_transport(client, topo.routers[1], peer=6)
        attach_transport(server, topo.routers[6], peer=1)
        server.listen(80)
        data = pattern(40_000)
        sock = client.connect(1000, 80)
        sock.on_connect = lambda: (sock.send(data), sock.close())
        sim.run(until=60)
        assert server.socket_for(80, 1000).bytes_received() == data

    def test_transfer_survives_link_failure_on_path(self):
        """A mid-transfer failure stalls the stream until routing
        reconverges; RD's retransmissions then repair the gap — every
        layer doing its own job."""
        sim, topo = build_network()
        cfg = TcpConfig(mss=800, rto_initial=0.3, rto_max=2.0)
        client = SublayeredTcpHost("c", sim.clock(), cfg)
        server = SublayeredTcpHost("s", sim.clock(), cfg)
        attach_transport(client, topo.routers[1], peer=6)
        attach_transport(server, topo.routers[6], peer=1)
        server.listen(80)
        data = pattern(120_000)
        sock = client.connect(1000, 80)
        sock.on_connect = lambda: (sock.send(data), sock.close())

        def cut_the_path():
            # fail whichever first hop router 1 is using toward 6
            hop = topo.routers[1].forwarding.fib().get(6)
            if hop is not None:
                topo.fail_link(1, hop)

        sim.schedule(0.2, cut_the_path)
        sim.run(until=180)
        assert server.socket_for(80, 1000).bytes_received() == data
        # the repair really went through RD
        assert client.stack.sublayer("rd").state.snapshot()["retransmitted"] > 0

    def test_two_attachments_share_a_router(self):
        sim, topo = build_network()
        cfg = TcpConfig(mss=800, rto_initial=0.3)
        hub_to_5 = SublayeredTcpHost("h5", sim.clock(), cfg)
        hub_to_6 = SublayeredTcpHost("h6", sim.clock(), cfg)
        host5 = SublayeredTcpHost("p5", sim.clock(), cfg)
        host6 = SublayeredTcpHost("p6", sim.clock(), cfg)
        attach_transport(hub_to_5, topo.routers[1], peer=5)
        attach_transport(hub_to_6, topo.routers[1], peer=6)
        attach_transport(host5, topo.routers[5], peer=1)
        attach_transport(host6, topo.routers[6], peer=1)
        host5.listen(80)
        host6.listen(80)
        s5 = hub_to_5.connect(1000, 80)
        s6 = hub_to_6.connect(1000, 80)
        s5.on_connect = lambda: s5.send(b"to five")
        s6.on_connect = lambda: s6.send(b"to six")
        sim.run(until=30)
        assert host5.socket_for(80, 1000).bytes_received() == b"to five"
        assert host6.socket_for(80, 1000).bytes_received() == b"to six"

    def test_duplicate_attachment_rejected(self):
        sim, topo = build_network()
        cfg = TcpConfig()
        h1 = SublayeredTcpHost("x", sim.clock(), cfg)
        h2 = SublayeredTcpHost("y", sim.clock(), cfg)
        attach_transport(h1, topo.routers[1], peer=6)
        with pytest.raises(ConfigurationError):
            attach_transport(h2, topo.routers[1], peer=6)


class TestQuicOverNetwork:
    def test_quic_over_mesh(self):
        """The Section 5 stack rides the Fig 3/4 network unchanged —
        record-sealed packets are just datagram payloads to forwarding."""
        from repro.transport.quic import QuicHost

        sim, topo = build_network()
        a = QuicHost("a", sim.clock())
        b = QuicHost("b", sim.clock())
        attach_transport(a, topo.routers[1], peer=6)
        attach_transport(b, topo.routers[6], peer=1)
        b.listen(443)
        data = pattern(30_000)
        conn = a.connect(5000, 443)
        conn.on_connect = lambda: conn.send(1, data, fin=True)
        sim.run(until=60)
        peer = b.connection_for(443, 5000)
        assert peer.stream_bytes(1) == data
        assert 1 in peer.finished_streams
