"""Tests for forwarding, router dispatch, and packet types."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.instrument import AccessLog
from repro.network import DataPacket, DistanceVector, Router, Topology
from repro.network.forwarding import ForwardingSublayer
from repro.network.packets import DvUpdate, Hello, IP_HEADER, Lsp
from repro.sim import Simulator


def make_forwarding(address=1, fib=None, interfaces=None):
    sent = []
    interfaces = interfaces or {2: 0, 3: 1}
    fwd = ForwardingSublayer(
        address,
        send_on_interface=lambda i, p: sent.append((i, p)),
        resolve_interface=lambda hop: interfaces.get(hop),
    )
    fwd.install(fib or {})
    delivered = []
    fwd.on_deliver = delivered.append
    return fwd, sent, delivered


class TestDataPacket:
    def test_make_defaults(self):
        p = DataPacket.make(1, 2, b"x")
        assert p.src == 1 and p.dst == 2 and p.ttl == 32

    def test_decremented_copies(self):
        p = DataPacket.make(1, 2, b"x", ttl=5)
        q = p.decremented()
        assert q.ttl == 4 and p.ttl == 5

    def test_header_bits(self):
        assert DataPacket.make(1, 2, b"").header_bits() == IP_HEADER.bit_width

    def test_kinds(self):
        assert Hello(1).kind == "hello"
        assert DvUpdate(1, {}).kind == "dv"
        assert Lsp(1, 1, {}).kind == "lsp"
        assert DataPacket.make(1, 2, b"").kind == "data"


class TestForwarding:
    def test_local_delivery(self):
        fwd, sent, delivered = make_forwarding()
        fwd.forward(DataPacket.make(9, 1, b"mine"))
        assert len(delivered) == 1
        assert sent == []

    def test_forwards_with_ttl_decrement(self):
        fwd, sent, _ = make_forwarding(fib={5: 2})
        fwd.forward(DataPacket.make(9, 5, b"x", ttl=8))
        assert len(sent) == 1
        interface, packet = sent[0]
        assert interface == 0
        assert packet.ttl == 7

    def test_no_route_dropped(self):
        fwd, sent, _ = make_forwarding(fib={})
        fwd.forward(DataPacket.make(9, 5, b"x"))
        assert sent == []
        assert fwd.state.snapshot()["dropped_no_route"] == 1

    def test_ttl_expiry_dropped(self):
        fwd, sent, _ = make_forwarding(fib={5: 2})
        fwd.forward(DataPacket.make(9, 5, b"x", ttl=1))
        assert sent == []
        assert fwd.state.snapshot()["dropped_ttl"] == 1

    def test_unresolvable_next_hop_dropped(self):
        fwd, sent, _ = make_forwarding(fib={5: 77})
        fwd.forward(DataPacket.make(9, 5, b"x"))
        assert fwd.state.snapshot()["dropped_no_interface"] == 1

    def test_originate_no_ttl_decrement(self):
        fwd, sent, _ = make_forwarding(fib={5: 2})
        fwd.originate(DataPacket.make(1, 5, b"x", ttl=8))
        assert sent[0][1].ttl == 8

    def test_originate_local(self):
        fwd, _, delivered = make_forwarding()
        fwd.originate(DataPacket.make(1, 1, b"self"))
        assert len(delivered) == 1

    def test_install_replaces_fib(self):
        fwd, _, _ = make_forwarding(fib={5: 2})
        fwd.install({6: 3})
        assert fwd.fib() == {6: 3}


class TestRouterDispatch:
    def test_control_from_unknown_neighbor_dropped(self):
        sim = Simulator()
        router = Router(1, sim.clock(), routing_cls=DistanceVector)
        router.add_interface()
        # no hello seen on interface 0 yet: update must be ignored
        router.receive(DvUpdate(src=9, distances={9: 0}), interface=0)
        assert router.routes() == {}

    def test_ttl_loop_protection_in_topology(self):
        """A packet addressed to a never-existent node dies by TTL or
        no-route instead of looping forever."""
        sim = Simulator()
        topo = Topology.build(sim, [(1, 2), (2, 3)])
        topo.start()
        topo.converge(timeout=30)
        topo.routers[1].send_data(99, b"void")
        sim.run(until=sim.now + 5)
        assert all(p.dst != 99 for p in topo.delivered)

    def test_duplicate_router_rejected(self):
        sim = Simulator()
        topo = Topology(sim)
        topo.add_router(1)
        with pytest.raises(ConfigurationError):
            topo.add_router(1)

    def test_duplicate_link_rejected(self):
        sim = Simulator()
        topo = Topology(sim)
        topo.add_router(1)
        topo.add_router(2)
        topo.connect(1, 2)
        with pytest.raises(ConfigurationError):
            topo.connect(2, 1)


class TestT3StateSeparation:
    def test_sublayers_touch_only_own_state(self):
        """The router-level T3 check: every instrumented access has
        actor == target across a full converge-fail-reconverge run."""
        sim = Simulator()
        log = AccessLog()
        topo = Topology.build(
            sim, [(1, 2), (2, 3), (3, 1)], access_log=log
        )
        topo.start()
        topo.converge(timeout=30)
        topo.send_data(1, 3, b"x")
        topo.fail_link(1, 3)
        topo.converge(timeout=90)
        for router in topo.routers.values():
            for record in router.access_log.records:
                if record.actor is None:
                    continue
                assert record.actor == record.target, record

    def test_narrow_interfaces_logged(self):
        sim = Simulator()
        topo = Topology.build(sim, [(1, 2)])
        topo.start()
        topo.converge(timeout=30)
        router = topo.routers[1]
        pairs = router.interface_log.pairs()
        assert ("neighbor", "routing") in pairs
        assert ("routing", "forwarding") in pairs
        # no interface skips a sublayer
        assert ("neighbor", "forwarding") not in pairs
