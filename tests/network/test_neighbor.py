"""Tests for the neighbor-determination sublayer."""

from repro.core.clock import ManualClock
from repro.network.neighbor import NeighborSublayer
from repro.network.packets import Hello


def make_neighbor(interfaces=2, hello=1.0, dead=3.5):
    clock = ManualClock()
    sent = []
    sub = NeighborSublayer(
        address=1,
        clock=clock,
        send_on_interface=lambda i, h: sent.append((i, h)),
        interface_count=interfaces,
        hello_interval=hello,
        dead_interval=dead,
    )
    events = []
    sub.on_neighbor_up = lambda a, i, c: events.append(("up", a, i))
    sub.on_neighbor_down = lambda a: events.append(("down", a))
    return clock, sub, sent, events


class TestHellos:
    def test_start_sends_hello_on_every_interface(self):
        clock, sub, sent, _ = make_neighbor(interfaces=3)
        sub.start()
        assert [i for i, _ in sent] == [0, 1, 2]
        assert all(h.src == 1 for _, h in sent)

    def test_periodic_hellos(self):
        clock, sub, sent, _ = make_neighbor(interfaces=1)
        sub.start()
        clock.advance(3.0)
        assert len(sent) == 4  # t=0,1,2,3

    def test_start_idempotent(self):
        clock, sub, sent, _ = make_neighbor(interfaces=1)
        sub.start()
        sub.start()
        assert len(sent) == 1


class TestDiscovery:
    def test_hello_creates_neighbor(self):
        clock, sub, _, events = make_neighbor()
        sub.on_hello(0, Hello(src=7))
        assert sub.neighbors() == {7: 1}
        assert events == [("up", 7, 0)]

    def test_repeat_hello_no_duplicate_event(self):
        clock, sub, _, events = make_neighbor()
        sub.on_hello(0, Hello(src=7))
        sub.on_hello(0, Hello(src=7))
        assert events == [("up", 7, 0)]

    def test_interface_lookup(self):
        clock, sub, _, _ = make_neighbor()
        sub.on_hello(1, Hello(src=9))
        assert sub.interface_for(9) == 1
        assert sub.interface_for(99) is None

    def test_multiple_neighbors(self):
        clock, sub, _, _ = make_neighbor()
        sub.on_hello(0, Hello(src=7))
        sub.on_hello(1, Hello(src=8))
        assert sub.neighbors() == {7: 1, 8: 1}


class TestExpiry:
    def test_silent_neighbor_expires(self):
        clock, sub, _, events = make_neighbor(hello=1.0, dead=3.5)
        sub.start()
        sub.on_hello(0, Hello(src=7))
        clock.advance(5.0)  # well past dead interval, no refresh
        assert sub.neighbors() == {}
        assert ("down", 7) in events

    def test_refreshed_neighbor_survives(self):
        clock, sub, _, events = make_neighbor(hello=1.0, dead=3.5)
        sub.start()
        sub.on_hello(0, Hello(src=7))
        for _ in range(6):
            clock.advance(1.0)
            sub.on_hello(0, Hello(src=7))
        assert sub.neighbors() == {7: 1}
        assert ("down", 7) not in events

    def test_last_heard_tracked(self):
        clock, sub, _, _ = make_neighbor()
        sub.on_hello(0, Hello(src=7))
        clock.advance(2.0)
        sub.on_hello(0, Hello(src=7))
        entry = sub.state.snapshot()["entries"][7]
        assert entry.last_heard == 2.0
