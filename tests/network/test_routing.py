"""Tests for route computation: distance vector and link state.

Route correctness is checked against networkx shortest paths as an
independent oracle.
"""

import networkx as nx
import pytest

from repro.network import DistanceVector, LinkState, Topology
from repro.network.packets import DV_INFINITY
from repro.sim import Simulator

RING = [(1, 2), (2, 3), (3, 4), (4, 1)]
MESH = [(1, 2), (2, 3), (3, 4), (4, 1), (1, 3), (2, 5), (5, 6), (6, 3)]
LINE = [(1, 2), (2, 3), (3, 4), (4, 5)]


def build(edges, routing_cls, seed=0):
    sim = Simulator()
    topo = Topology.build(sim, edges, routing_cls=routing_cls, seed=seed)
    topo.start()
    return sim, topo


def oracle_first_hops(edges, source):
    graph = nx.Graph(edges)
    paths = nx.single_source_shortest_path(graph, source)
    return {
        dst: path[1] for dst, path in paths.items() if dst != source
    }


@pytest.mark.parametrize("routing_cls", [DistanceVector, LinkState])
class TestConvergence:
    @pytest.mark.parametrize("edges", [RING, MESH, LINE])
    def test_converges_to_shortest_paths(self, routing_cls, edges):
        sim, topo = build(edges, routing_cls)
        assert topo.converge(timeout=30) is not None
        graph = nx.Graph(edges)
        for source, router in topo.routers.items():
            fib = router.forwarding.fib()
            lengths = nx.single_source_shortest_path_length(graph, source)
            for dst, dist in lengths.items():
                if dst == source:
                    continue
                hop = fib[dst]
                # the chosen next hop must lie on *a* shortest path
                assert (
                    nx.shortest_path_length(graph, hop, dst) == dist - 1
                ), (source, dst, hop)

    def test_data_follows_routes(self, routing_cls):
        sim, topo = build(MESH, routing_cls)
        topo.converge(timeout=30)
        topo.send_data(1, 6, b"payload")
        sim.run(until=sim.now + 2)
        assert [(p.src, p.dst) for p in topo.delivered] == [(1, 6)]

    def test_reconverges_after_link_failure(self, routing_cls):
        sim, topo = build(MESH, routing_cls)
        topo.converge(timeout=30)
        topo.fail_link(2, 5)
        assert topo.converge(timeout=90) is not None
        topo.send_data(1, 5, b"rerouted")
        sim.run(until=sim.now + 2)
        assert any(p.payload == b"rerouted" for p in topo.delivered)

    def test_reconverges_after_link_restore(self, routing_cls):
        sim, topo = build(RING, routing_cls)
        topo.converge(timeout=30)
        topo.fail_link(1, 2)
        assert topo.converge(timeout=90) is not None
        topo.restore_link(1, 2)
        assert topo.converge(timeout=90) is not None

    def test_partition_detected(self, routing_cls):
        sim, topo = build(LINE, routing_cls)
        topo.converge(timeout=30)
        topo.fail_link(2, 3)
        assert topo.converge(timeout=90) is not None
        # nodes beyond the cut have no route
        assert 5 not in topo.routers[1].forwarding.fib()
        assert 1 not in topo.routers[5].forwarding.fib()


class TestDistanceVectorSpecific:
    def test_infinity_capped(self):
        sim, topo = build(LINE, DistanceVector)
        topo.converge(timeout=30)
        table = topo.routers[1].routing.state.snapshot()["table"]
        assert all(cost <= DV_INFINITY for cost, _ in table.values())

    def test_poisoned_reverse_advertised(self):
        sim, topo = build([(1, 2)], DistanceVector)
        topo.converge(timeout=30)
        # router 1 learned nothing beyond 2; its advertisement to 2
        # must poison the route *via* 2 — captured by checking the
        # update count grows without route flapping
        routes_before = topo.routers[1].routes()
        sim.run(until=sim.now + 5)
        assert topo.routers[1].routes() == routes_before


class TestLinkStateSpecific:
    def test_lsdb_has_all_origins(self):
        sim, topo = build(MESH, LinkState)
        topo.converge(timeout=30)
        lsdb = topo.routers[1].routing.state.snapshot()["lsdb"]
        assert set(lsdb) == set(topo.routers)

    def test_stale_lsp_not_accepted(self):
        sim, topo = build(RING, LinkState)
        topo.converge(timeout=30)
        routing = topo.routers[1].routing
        lsdb = routing.state.snapshot()["lsdb"]
        current = lsdb[3]
        from repro.network.packets import Lsp

        stale = Lsp(origin=3, seq=current.seq - 1, neighbors={})
        routing.on_control(stale, from_neighbor=2)
        assert routing.state.snapshot()["lsdb"][3].seq == current.seq

    def test_two_way_check_excludes_one_sided_claims(self):
        sim, topo = build(RING, LinkState)
        topo.converge(timeout=30)
        routing = topo.routers[1].routing
        from repro.network.packets import Lsp

        # a forged LSP claiming a link to a node that never confirms it
        forged = Lsp(origin=99, seq=1, neighbors={1: 1})
        routing.on_control(forged, from_neighbor=2)
        assert 99 not in routing.routes()


class TestSwapExperiment:
    def test_forwarding_identical_after_swap(self):
        """The Fig 3 fungibility claim: DV -> LS swap leaves the
        forwarding sublayer's FIB contents identical (same shortest
        paths) and its code untouched (same class, same counters
        semantics)."""
        fibs = {}
        for cls in (DistanceVector, LinkState):
            sim, topo = build(LINE, cls, seed=3)
            assert topo.converge(timeout=30) is not None
            fibs[cls.name] = {
                a: r.forwarding.fib() for a, r in topo.routers.items()
            }
        assert fibs["distance-vector"] == fibs["link-state"]

    def test_control_packet_kinds_disjoint(self):
        """T3: the two algorithms use different packets; neither kind
        overlaps the other's or the data plane's."""
        assert set(DistanceVector.CONTROL_KINDS) == {"dv"}
        assert set(LinkState.CONTROL_KINDS) == {"lsp"}
        assert not set(DistanceVector.CONTROL_KINDS) & set(LinkState.CONTROL_KINDS)
