"""Golden values for ManagedLink's named rng streams.

``ManagedLink`` historically seeded its two directions with bare
``random.Random(seed)`` / ``random.Random(seed + 1)``, outside the
repo-wide ``derive_seed`` discipline — so adding a link could perturb
the draws of an unrelated one.  It now draws one named stream per
direction (``link:{a}->{b}``) from the topology's ``RngFactory``.
These goldens pin that mapping; if they fail, recorded convergence
and loss numbers for routed topologies no longer replay.
"""

import random

from repro.network.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.link import LinkConfig
from repro.sim.rng import derive_seed

#: (root_seed, stream label) -> derived 64-bit seed.  Computed once
#: from sha256(f"{root}:{label}") and pinned.
GOLDEN = {
    (0, "link:1->2"): 7787878192436224164,
    (0, "link:2->1"): 6852961718097099281,
    (7, "link:1->2"): 3271609444875987948,
    (7, "link:2->1"): 16109239353021707754,
}


def test_managed_link_seed_golden_values():
    for (root, label), expected in GOLDEN.items():
        assert derive_seed(root, label) == expected, (
            f"derive_seed({root}, {label!r}) changed — recorded routed-"
            "topology results no longer replay"
        )


def test_managed_link_draws_named_streams():
    sim = Simulator()
    topo = Topology.build(sim, [(1, 2)], seed=7, link_config=LinkConfig(delay=0.001))
    link = topo.links[(1, 2)]
    fwd_ref = random.Random(GOLDEN[(7, "link:1->2")])
    rev_ref = random.Random(GOLDEN[(7, "link:2->1")])
    assert [link.forward.rng.random() for _ in range(5)] == [
        fwd_ref.random() for _ in range(5)
    ]
    assert [link.reverse.rng.random() for _ in range(5)] == [
        rev_ref.random() for _ in range(5)
    ]


def test_link_streams_independent_of_other_links():
    """Adding an unrelated link must not perturb an existing one's draws."""

    def first_draws(edges):
        sim = Simulator()
        topo = Topology.build(sim, edges, seed=3, link_config=LinkConfig(delay=0.001))
        link = topo.links[(1, 2)]
        return [link.forward.rng.random() for _ in range(3)]

    assert first_draws([(1, 2)]) == first_draws([(1, 2), (2, 3), (3, 4)])
