#!/usr/bin/env python3
"""Regenerate the golden Chrome trace after an intentional schema change.

Run from the repo root:  PYTHONPATH=src:. python tests/obs/regen_golden.py
"""

from pathlib import Path

from repro.obs import write_chrome_trace

from tests.obs.test_export import GOLDEN, fixed_spans

if __name__ == "__main__":
    GOLDEN.parent.mkdir(exist_ok=True)
    write_chrome_trace(fixed_spans(), GOLDEN, clock="virtual")
    print(f"wrote {GOLDEN}")
