"""Trace analysis against a hand-computed golden three-hop trace.

The trace is one activation crossing a three-sublayer stack ``s``:

    sid 1  _app -> x     wall [0, 10]   virtual [0.0, 0.9]
    sid 2    x  -> y     wall [1, 9]    virtual [0.1, 0.8]
    sid 3    y  -> _wire wall [2, 5]    virtual [0.2, 0.3]

Hand-computed (wall clock):
    durations: 10, 8, 3        self: 10-8=2, 8-3=5, 3
    critical path: 1 -> 2 -> 3
    breakdown by self: y (5), _wire (3), x (2)
    folded: s:x 2s, s:x;s:y 5s, s:x;s:y;s:_wire 3s  (in integer us)
"""

import pytest

from repro.obs import (
    SpanTracer,
    breakdown,
    critical_path,
    diff_breakdowns,
    folded_stacks,
    self_times,
)
from repro.obs.analyze import render_diff, render_report, span_duration
from tests.transport.helpers import make_pair, transfer


def golden_spans():
    def span(sid, parent, caller, actor, w0, w1, t0, t1):
        return {
            "sid": sid,
            "parent": parent,
            "stack": "s",
            "direction": "down",
            "caller": caller,
            "actor": actor,
            "pdu": "bytes[1]",
            "pdu_id": 1,
            "w0": w0,
            "w1": w1,
            "t0": t0,
            "t1": t1,
        }

    return [
        span(3, 2, "y", "_wire", 2.0, 5.0, 0.2, 0.3),
        span(2, 1, "x", "y", 1.0, 9.0, 0.1, 0.8),
        span(1, None, "_app", "x", 0.0, 10.0, 0.0, 0.9),
    ]


class TestSelfTimes:
    def test_hand_computed_wall(self):
        selfs = self_times(golden_spans(), clock="wall")
        assert selfs == {1: 2.0, 2: 5.0, 3: 3.0}

    def test_hand_computed_virtual(self):
        selfs = self_times(golden_spans(), clock="virtual")
        assert selfs[1] == pytest.approx(0.2)  # 0.9 - 0.7
        assert selfs[2] == pytest.approx(0.6)  # 0.7 - 0.1
        assert selfs[3] == pytest.approx(0.1)

    def test_clock_granularity_clamps_at_zero(self):
        spans = golden_spans()
        spans[0]["w1"] = 12.0  # child (sid 3) now "longer" than its parent
        selfs = self_times(spans, clock="wall")
        assert selfs[2] == 0.0

    def test_orphan_children_become_roots(self):
        spans = [s for s in golden_spans() if s["sid"] != 2]
        selfs = self_times(spans, clock="wall")
        assert selfs == {1: 10.0, 3: 3.0}  # sid 3 kept, not lost


class TestCriticalPath:
    def test_hand_computed_chain(self):
        path = critical_path(golden_spans(), clock="wall")
        assert [s["sid"] for s in path] == [1, 2, 3]

    def test_picks_heaviest_child(self):
        spans = golden_spans() + [
            {**golden_spans()[0], "sid": 4, "parent": 2, "w0": 5.0, "w1": 5.5}
        ]
        path = critical_path(spans, clock="wall")
        assert [s["sid"] for s in path] == [1, 2, 3]  # 3.0s beats 0.5s

    def test_picks_heaviest_root(self):
        extra_root = {**golden_spans()[2], "sid": 9, "w0": 0.0, "w1": 20.0}
        path = critical_path(golden_spans() + [extra_root], clock="wall")
        assert path[0]["sid"] == 9

    def test_empty(self):
        assert critical_path([]) == []


class TestBreakdown:
    def test_hand_computed_rows(self):
        rows = breakdown(golden_spans(), clock="wall")
        assert [(r["actor"], r["self_s"]) for r in rows] == [
            ("y", 5.0),
            ("_wire", 3.0),
            ("x", 2.0),
        ]
        by_actor = {r["actor"]: r for r in rows}
        assert by_actor["x"]["total_s"] == 10.0
        assert by_actor["x"]["hops"] == 1
        # single observation: quantiles clamp to the exact sample
        assert by_actor["y"]["p50_s"] == 5.0
        assert by_actor["y"]["p99_s"] == 5.0
        assert by_actor["y"]["max_s"] == 5.0

    def test_folded_stacks_hand_computed(self):
        lines = folded_stacks(golden_spans(), clock="wall")
        assert lines == [
            "s:x 2000000",
            "s:x;s:y 5000000",
            "s:x;s:y;s:_wire 3000000",
        ]

    def test_diff_sorts_regressions_first(self):
        base = breakdown(golden_spans(), clock="wall")
        slower = golden_spans()
        slower[0]["w1"] = 8.0  # _wire: 3s -> 6s; y self: 5 -> 2
        rows = diff_breakdowns(base, breakdown(slower, clock="wall"))
        assert rows[0]["actor"] == "_wire"
        assert rows[0]["delta_s"] == pytest.approx(3.0)
        assert rows[-1]["actor"] == "y"
        assert rows[-1]["delta_s"] == pytest.approx(-3.0)

    def test_diff_handles_new_and_removed_actors(self):
        base = breakdown(golden_spans(), clock="wall")
        current = [r for r in base if r["actor"] != "y"]
        rows = diff_breakdowns(base, current)
        y = [r for r in rows if r["actor"] == "y"][0]
        assert y["delta_s"] == -5.0
        assert y["hops"] == 0


class TestRendering:
    def test_report_contains_hand_computed_numbers(self):
        text = render_report(golden_spans(), clock="wall")
        assert "critical path (10000000.0us" in text
        assert "3 spans, 1 activations" in text
        lines = text.splitlines()
        y_row = next(line for line in lines if line.startswith("s ") and " y " in line)
        assert "5000000.0" in y_row  # self time us

    def test_report_empty(self):
        assert render_report([]) == "(no spans recorded)"

    def test_diff_report_renders(self):
        text = render_diff(golden_spans(), golden_spans(), clock="wall")
        assert "delta" in text
        assert "+0.0" in text


class TestOnRealTraffic:
    def test_full_transfer_analysis_is_consistent(self):
        sim, a, b, _link = make_pair()
        tracer = SpanTracer().attach(a.stack).attach(b.stack)
        transfer(sim, a, b, nbytes=2000)
        spans = tracer.spans()
        selfs = self_times(spans, clock="wall")
        # conservation: self times sum to the roots' total duration
        roots_total = sum(
            span_duration(s, "wall") for s in spans if s["parent"] is None
        )
        assert sum(selfs.values()) == pytest.approx(roots_total, rel=1e-6)
        # the critical path starts at a root and is properly nested
        path = critical_path(spans, clock="wall")
        assert path[0]["parent"] is None
        for parent, child in zip(path, path[1:]):
            assert child["parent"] == parent["sid"]
        # breakdown covers every (stack, actor) pair exactly once
        rows = breakdown(spans, clock="wall")
        assert len({(r["stack"], r["actor"]) for r in rows}) == len(rows)
        assert sum(r["hops"] for r in rows) == len(spans)
