"""The ``python -m repro.obs`` command line."""

import json

from repro.obs.__main__ import main
from tests.obs.test_export import fixed_spans
from repro.obs import spans_to_jsonl


def jsonl(tmp_path):
    path = tmp_path / "spans.jsonl"
    spans_to_jsonl(fixed_spans(), path)
    return str(path)


class TestSummarize:
    def test_prints_table(self, tmp_path, capsys):
        assert main(["summarize", jsonl(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "3 spans" in out
        assert "tcp:a" in out

    def test_reports_dropped_events(self, tmp_path, capsys):
        path = tmp_path / "truncated.jsonl"
        spans_to_jsonl(fixed_spans(), path, dropped=9)
        assert main(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "3 spans" in out
        assert "(9 dropped)" in out

    def test_missing_file_fails(self, tmp_path, capsys):
        assert main(["summarize", str(tmp_path / "absent.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_malformed_file_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json\n")
        assert main(["summarize", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err


class TestConvert:
    def test_writes_chrome_trace(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        code = main(["convert", jsonl(tmp_path), "-o", str(out_path)])
        assert code == 0
        assert "wall clock" in capsys.readouterr().out
        obj = json.loads(out_path.read_text())
        assert any(e["ph"] == "X" for e in obj["traceEvents"])

    def test_virtual_clock_option(self, tmp_path):
        out_path = tmp_path / "trace.json"
        code = main(
            ["convert", jsonl(tmp_path), "-o", str(out_path), "--clock",
             "virtual"]
        )
        assert code == 0
        xs = [
            e
            for e in json.loads(out_path.read_text())["traceEvents"]
            if e["ph"] == "X"
        ]
        assert xs[2]["ts"] == 250_000.0


class TestValidate:
    def test_accepts_converter_output(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        main(["convert", jsonl(tmp_path), "-o", str(out_path)])
        assert main(["validate", str(out_path)]) == 0
        assert "valid Chrome trace" in capsys.readouterr().out

    def test_rejects_bad_schema(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "Z"}]}))
        assert main(["validate", str(bad)]) == 1
        assert "bad or missing ph" in capsys.readouterr().err

    def test_rejects_non_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all")
        assert main(["validate", str(bad)]) == 1
        assert "unreadable" in capsys.readouterr().err
