"""Exporters: JSONL round-trips, Chrome trace schema, golden file."""

import json
from pathlib import Path

import pytest

from repro.obs import (
    ExportError,
    SpanTracer,
    load_jsonl,
    spans_to_jsonl,
    summarize,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from tests.transport.helpers import make_pair, transfer

GOLDEN = Path(__file__).parent / "golden" / "chrome_trace_virtual.json"


def fixed_spans():
    """A hand-built two-stack span set with deterministic times."""
    return [
        {
            "sid": 1, "parent": None, "stack": "tcp:a", "direction": "down",
            "caller": "rd", "actor": "cm", "pdu": "pdu[rd+osr]",
            "pdu_id": 1001, "t0": 0.0, "t1": 0.0, "w0": 10.0, "w1": 10.003,
        },
        {
            "sid": 2, "parent": 1, "stack": "tcp:a", "direction": "down",
            "caller": "cm", "actor": "dm", "pdu": "pdu[cm+rd+osr]",
            "pdu_id": 1001, "t0": 0.0, "t1": 0.0, "w0": 10.001, "w1": 10.002,
        },
        {
            "sid": 3, "parent": None, "stack": "tcp:b", "direction": "up",
            "caller": "_wire", "actor": "dm", "pdu": "pdu[dm+cm+rd+osr]",
            "pdu_id": 2002, "t0": 0.25, "t1": 0.25, "w0": 11.0, "w1": 11.005,
        },
    ]


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        assert spans_to_jsonl(fixed_spans(), path) == 3
        assert load_jsonl(path) == fixed_spans()

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        lines = [json.dumps(s) for s in fixed_spans()]
        path.write_text(lines[0] + "\n\n" + lines[1] + "\n")
        assert len(load_jsonl(path)) == 2

    def test_not_json_rejected_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(fixed_spans()[0]) + "\n{oops\n")
        with pytest.raises(ExportError, match=r":2:"):
            load_jsonl(path)

    def test_missing_fields_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"sid": 1, "stack": "s"}\n')
        with pytest.raises(ExportError, match="missing fields"):
            load_jsonl(path)

    def test_tracer_write_jsonl_round_trips(self, tmp_path):
        sim, a, b, _link = make_pair()
        tracer = SpanTracer().attach(a.stack).attach(b.stack)
        transfer(sim, a, b, nbytes=100)
        path = tmp_path / "run.jsonl"
        count = tracer.write_jsonl(path)
        assert count == len(tracer)
        assert load_jsonl(path) == tracer.spans()


class TestDroppedMeta:
    def test_meta_record_written_when_dropped(self, tmp_path):
        from repro.obs import load_jsonl_with_meta

        path = tmp_path / "spans.jsonl"
        spans_to_jsonl(fixed_spans(), path, dropped=5)
        first = json.loads(path.read_text().splitlines()[0])
        assert first == {"_meta": {"dropped_events": 5}}
        spans, meta = load_jsonl_with_meta(path)
        assert spans == fixed_spans()
        assert meta == {"dropped_events": 5}

    def test_no_meta_record_without_drops(self, tmp_path):
        from repro.obs import load_jsonl_with_meta

        path = tmp_path / "spans.jsonl"
        spans_to_jsonl(fixed_spans(), path, dropped=0)
        assert len(path.read_text().splitlines()) == 3
        _, meta = load_jsonl_with_meta(path)
        assert meta == {}

    def test_load_jsonl_skips_meta(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        spans_to_jsonl(fixed_spans(), path, dropped=7)
        assert load_jsonl(path) == fixed_spans()

    def test_ring_buffer_tracer_writes_meta(self, tmp_path):
        sim, a, b, _link = make_pair()
        tracer = SpanTracer(max_spans=4).attach(a.stack).attach(b.stack)
        transfer(sim, a, b, nbytes=100)
        assert tracer.dropped_spans > 0
        path = tmp_path / "run.jsonl"
        tracer.write_jsonl(path)
        from repro.obs import load_jsonl_with_meta

        spans, meta = load_jsonl_with_meta(path)
        assert len(spans) == 4
        assert meta["dropped_events"] == tracer.dropped_spans

    def test_summarize_reports_drops(self):
        text = summarize(fixed_spans(), dropped=12)
        assert "(12 dropped)" in text
        assert "dropped" not in summarize(fixed_spans())


class TestChromeTrace:
    def test_structure(self):
        trace = to_chrome_trace(fixed_spans())
        assert validate_chrome_trace(trace) == []
        events = trace["traceEvents"]
        # (2 process + 3 thread) x (name + sort_index) metadata events
        assert [e["ph"] for e in events].count("M") == 10
        # all metadata precedes the first complete event
        first_x = [e["ph"] for e in events].index("X")
        assert all(e["ph"] == "M" for e in events[:first_x])
        sort_events = [e for e in events if e["name"].endswith("_sort_index")]
        assert len(sort_events) == 5
        assert all("sort_index" in e["args"] for e in sort_events)
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 3
        assert xs[0]["name"] == "down:rd->cm"
        # stacks become processes, (stack, actor) become threads
        pids = {e["pid"] for e in xs}
        assert len(pids) == 2

    def test_wall_clock_rebased_to_epoch(self):
        xs = [
            e
            for e in to_chrome_trace(fixed_spans(), clock="wall")["traceEvents"]
            if e["ph"] == "X"
        ]
        assert xs[0]["ts"] == 0.0  # earliest w0 is the epoch
        assert xs[0]["dur"] == pytest.approx(3000.0)  # 3 ms in us

    def test_virtual_clock_uses_sim_time(self):
        xs = [
            e
            for e in to_chrome_trace(fixed_spans(), clock="virtual")[
                "traceEvents"
            ]
            if e["ph"] == "X"
        ]
        assert xs[2]["ts"] == pytest.approx(250_000.0)  # 0.25 s in us
        assert {"virtual_t0", "virtual_t1"} <= set(xs[0]["args"])

    def test_unknown_clock_rejected(self):
        with pytest.raises(ExportError, match="clock"):
            to_chrome_trace(fixed_spans(), clock="atomic")

    def test_validator_catches_malformed_events(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) == ["missing traceEvents array"]
        bad = {
            "traceEvents": [
                "not-an-object",
                {"ph": "Q", "name": "x", "pid": 1, "tid": 1},
                {"ph": "X", "pid": "one", "tid": 1, "ts": -5, "dur": 1},
            ]
        }
        problems = validate_chrome_trace(bad)
        assert any("not an object" in p for p in problems)
        assert any("bad or missing ph" in p for p in problems)
        assert any("pid must be an int" in p for p in problems)
        assert any("ts must be a non-negative number" in p for p in problems)

    def test_golden_virtual_export(self, tmp_path):
        """The virtual-clock Chrome export is deterministic; pin it.

        Regenerate after an intentional schema change with:
        ``python tests/obs/regen_golden.py``
        """
        produced = write_chrome_trace(
            fixed_spans(), tmp_path / "trace.json", clock="virtual"
        )
        golden = json.loads(GOLDEN.read_text())
        assert produced == golden
        # and the on-disk bytes match too (stable key order/indent)
        assert (tmp_path / "trace.json").read_text() == GOLDEN.read_text()


class TestSummary:
    def test_empty(self):
        assert summarize([]) == "(no spans recorded)"

    def test_groups_by_stack_and_actor(self):
        text = summarize(fixed_spans(), dropped=2)
        assert "3 spans" in text
        assert "(2 dropped)" in text
        lines = text.splitlines()
        assert any("tcp:a" in line and "cm" in line for line in lines)
        assert any("tcp:b" in line and "dm" in line for line in lines)
