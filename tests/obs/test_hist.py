"""The mergeable log-bucket Histogram: accuracy, merging, registry path."""

import json
import math
import random

import pytest

from repro.obs import Histogram, MetricsRegistry
from repro.obs.hist import ZERO_BUCKET, bucket_bounds, bucket_index, bucket_mid


class TestBucketing:
    def test_bounds_contain_their_values(self):
        for value in (1e-9, 0.001, 0.5, 1.0, 3.7, 1e6):
            lo, hi = bucket_bounds(bucket_index(value))
            assert lo <= value < hi

    def test_mid_lies_within_bounds(self):
        for value in (0.002, 1.5, 42.0):
            index = bucket_index(value)
            lo, hi = bucket_bounds(index)
            assert lo < bucket_mid(index) < hi

    def test_buckets_are_narrow(self):
        """8 sub-buckets per octave: width under 12.5% of the value."""
        for value in (0.001, 0.37, 12.0, 9000.0):
            lo, hi = bucket_bounds(bucket_index(value))
            assert (hi - lo) / lo <= 0.125 + 1e-12

    def test_nonpositive_goes_to_zero_bucket(self):
        assert bucket_index(0.0) == ZERO_BUCKET
        assert bucket_index(-1.5) == ZERO_BUCKET


class TestHistogram:
    def test_empty(self):
        hist = Histogram()
        assert hist.count == 0
        assert hist.quantile(0.5) is None
        assert hist.as_dict()["min"] is None

    def test_count_sum_min_max_exact(self):
        hist = Histogram()
        for value in (0.5, 1.5, 2.5):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == pytest.approx(4.5)
        assert hist.minimum == 0.5
        assert hist.maximum == 2.5
        assert hist.mean == pytest.approx(1.5)

    def test_quantiles_within_bucket_error(self):
        """Quantile error is bounded by the ~6% bucket half-width."""
        rng = random.Random(7)
        values = sorted(rng.uniform(0.001, 1.0) for _ in range(5000))
        hist = Histogram()
        for value in values:
            hist.observe(value)
        for q in (0.5, 0.9, 0.99):
            exact = values[math.ceil(q * len(values)) - 1]
            assert hist.quantile(q) == pytest.approx(exact, rel=0.07)

    def test_quantile_clamped_to_observed_range(self):
        hist = Histogram()
        hist.observe(1.0)
        assert hist.quantile(0.5) == 1.0  # mid would overshoot; clamp
        assert hist.quantile(0.99) == 1.0

    def test_merge_is_exact(self):
        """Integer bucket counts: merge == observing everything in one."""
        rng = random.Random(3)
        values = [rng.expovariate(10.0) for _ in range(2000)]
        whole = Histogram()
        left, right = Histogram(), Histogram()
        for index, value in enumerate(values):
            whole.observe(value)
            (left if index % 2 else right).observe(value)
        left.merge(right)
        assert left.as_dict() == whole.as_dict()

    def test_roundtrip_through_dict(self):
        hist = Histogram()
        for value in (0.1, 0.0, 2.0, 2.0):
            hist.observe(value)
        clone = Histogram.from_dict(json.loads(json.dumps(hist.as_dict())))
        assert clone.as_dict() == hist.as_dict()

    def test_zero_values_counted(self):
        hist = Histogram()
        hist.observe(0.0)
        hist.observe(1.0)
        assert hist.count == 2
        assert hist.quantile(0.5) == 0.0


class TestWeightedObserve:
    """observe(value, count=n): how a batched hop pays its metrics bill."""

    def test_counted_equals_repeated(self):
        weighted, repeated = Histogram(), Histogram()
        weighted.observe(0.25, count=5)
        weighted.observe(0.75, count=3)
        for _ in range(5):
            repeated.observe(0.25)
        for _ in range(3):
            repeated.observe(0.75)
        assert weighted.as_dict() == repeated.as_dict()

    def test_count_survives_flush_boundary(self):
        from repro.obs.hist import _FLUSH_AT

        hist = Histogram()
        hist.observe(0.1, count=_FLUSH_AT - 1)
        hist.observe(0.2, count=4)  # crosses the deferred-flush threshold
        hist.observe(0.3)
        assert hist.count == _FLUSH_AT + 4
        assert hist.minimum == 0.1
        assert hist.maximum == 0.3

    def test_registry_forwards_count(self):
        weighted, repeated = MetricsRegistry(), MetricsRegistry()
        weighted.observe_hist("hop", 0.01, count=64)
        for _ in range(64):
            repeated.observe_hist("hop", 0.01)
        assert weighted.snapshot() == repeated.snapshot()


class TestRegistryHists:
    def test_observe_hist_and_query(self):
        reg = MetricsRegistry()
        for value in (0.01, 0.02, 0.03):
            reg.observe_hist("arq/rtt", value)
        assert reg.hist("arq/rtt").count == 3
        assert "arq/rtt" in reg.names()

    def test_snapshot_merge_order_independent_of_jobs(self):
        """The campaign property: merging the same per-trial snapshots
        in the same order gives byte-identical results however the
        trials were scheduled — and buckets/quantiles match a single
        registry exactly (sums agree to float addition order)."""
        rng = random.Random(11)
        values = [rng.uniform(0.001, 0.1) for _ in range(500)]
        whole = MetricsRegistry()
        workers = [MetricsRegistry(), MetricsRegistry()]
        for index, value in enumerate(values):
            whole.observe_hist("rtt", value)
            workers[index % 2].observe_hist("rtt", value)
        snapshots = [worker.snapshot() for worker in workers]
        serial, parallel = MetricsRegistry(), MetricsRegistry()
        for snapshot in snapshots:  # "serial" run merges trial order
            serial.merge_snapshot(snapshot)
        for snapshot in snapshots:  # "parallel" run reassembles same order
            parallel.merge_snapshot(json.loads(json.dumps(snapshot)))
        assert json.dumps(serial.snapshot()["hists"], sort_keys=True) == (
            json.dumps(parallel.snapshot()["hists"], sort_keys=True)
        )
        merged_rtt = serial.snapshot()["hists"]["rtt"]
        whole_rtt = whole.snapshot()["hists"]["rtt"]
        for key in ("count", "buckets", "min", "max", "p50", "p90", "p99"):
            assert merged_rtt[key] == whole_rtt[key]
        assert merged_rtt["sum"] == pytest.approx(whole_rtt["sum"])

    def test_summary_mentions_hists(self):
        reg = MetricsRegistry()
        reg.observe_hist("cm/handshake_latency", 0.2)
        assert "handshake_latency" in reg.summary()

    def test_clear_drops_hists(self):
        reg = MetricsRegistry()
        reg.observe_hist("x", 1.0)
        reg.clear()
        assert reg.hist("x").count == 0
