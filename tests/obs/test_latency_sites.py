"""The dual-write latency sites feed real distributions.

Each site that previously only counted now also observes a histogram:
ARQ round-trip time and retransmission delay (datalink), connection
handshake latency (CM), send-queue residency (OSR), per-traversal hop
latency (wiring, tier=metrics), and event-loop lag (simulator).
"""

import random

import pytest

from repro.datalink.stacks import build_hdlc_stack, collect_bytes, send_bytes
from repro.obs import Histogram, MetricsRegistry
from repro.sim import DuplexLink, LinkConfig, Simulator
from tests.transport.helpers import make_pair, transfer


def hdlc_transfer(loss=0.0, messages=6):
    sim = Simulator()
    registry = MetricsRegistry()
    stacks = [
        build_hdlc_stack(
            f"dl-{end}",
            sim.clock(),
            retransmit_timeout=0.1,
            metrics=registry,
        )
        for end in ("a", "b")
    ]
    link = DuplexLink(
        sim,
        LinkConfig(delay=0.01, loss=loss),
        rng_forward=random.Random(1),
        rng_reverse=random.Random(2),
        name="hdlc",
        metrics=registry,
    )
    link.attach(stacks[0], stacks[1])
    inbox = collect_bytes(stacks[1])
    for index in range(messages):
        send_bytes(stacks[0], f"m{index}".encode())
    sim.run(until=60.0)
    assert len(inbox) == messages
    return registry


class TestArqSites:
    def test_clean_link_populates_rtt_only(self):
        registry = hdlc_transfer(loss=0.0)
        rtt = registry.hist("dl-a/recovery/rtt")
        assert rtt.count > 0
        # RTT ~ 2 * link delay in virtual time
        assert rtt.minimum >= 0.02
        assert registry.hist("dl-a/recovery/retransmit_delay").count == 0

    def test_lossy_link_populates_retransmit_delay(self):
        registry = hdlc_transfer(loss=0.3)
        assert registry.hist("dl-a/recovery/retransmit_delay").count > 0

    def test_karns_rule_excludes_retransmitted_frames(self):
        """Retransmitted frames never contribute RTT samples: every
        recorded RTT stays near the true two-way delay instead of
        absorbing timeout-length ambiguities."""
        registry = hdlc_transfer(loss=0.3)
        rtt = registry.hist("dl-a/recovery/rtt")
        if rtt.count:  # heavy loss may leave no clean samples at all
            assert rtt.maximum < 0.1  # well under the 0.1s timeout ambiguity


class TestTransportSites:
    def test_handshake_and_queue_residency(self):
        registry = MetricsRegistry()
        sim, a, b, _link = make_pair(metrics=registry)
        transfer(sim, a, b, nbytes=4000)
        hs_a = registry.hist("tcp:a/cm/handshake_latency")
        hs_b = registry.hist("tcp:b/cm/handshake_latency")
        assert hs_a.count == 1  # one connection, each side measures once
        assert hs_b.count == 1
        # active opener needs a full round trip (2 * 0.02s link delay)
        assert hs_a.minimum >= 0.04
        residency = registry.hist("tcp:a/osr/queue_residency")
        assert residency.count > 0
        assert residency.minimum >= 0.0


class TestHopLatency:
    def test_metrics_tier_observes_per_traversal_wall_time(self):
        registry = MetricsRegistry()
        sim, a, b, _link = make_pair(metrics=registry, tier="metrics")
        hist = Histogram()
        a.stack.hop_latency = hist
        transfer(sim, a, b, nbytes=2000)
        assert hist.count > 0
        assert hist.minimum > 0.0  # wall clock: strictly positive

    def test_full_tier_ignores_hop_latency(self):
        sim, a, b, _link = make_pair()
        hist = Histogram()
        a.stack.hop_latency = hist
        transfer(sim, a, b, nbytes=1000)
        assert hist.count == 0  # the clock pair compiles in at metrics only


class TestEventLoopLag:
    def test_lag_hist_observes_every_callback(self):
        sim = Simulator()
        sim.lag_hist = Histogram()
        for index in range(5):
            sim.schedule(0.1 * index, lambda: None)
        sim.run_until_idle()
        assert sim.lag_hist.count == 5
        assert sim.lag_hist.minimum > 0.0

    def test_no_hist_no_cost_path(self):
        sim = Simulator()
        sim.schedule(0.0, lambda: None)
        sim.run_until_idle()  # lag_hist None: nothing observed, no error
        assert sim.events_processed == 1


class TestTrialDeterminism:
    def test_virtual_time_hists_identical_across_runs(self):
        """The campaign prerequisite: latency hists are virtual-time
        only, so identical seeds give identical snapshots."""
        first = hdlc_transfer(loss=0.2).snapshot()["hists"]
        second = hdlc_transfer(loss=0.2).snapshot()["hists"]
        assert first == second
