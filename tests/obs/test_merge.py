"""Tests for per-worker telemetry merging (spans and metric snapshots)."""

import pytest

from repro.obs import MetricsRegistry, merge_jsonl
from repro.obs.export import load_jsonl_with_meta, spans_to_jsonl


def span(sid, parent=None, actor="dm"):
    return {
        "sid": sid,
        "parent": parent,
        "stack": "dl",
        "direction": "down",
        "caller": "test",
        "actor": actor,
        "t0": 0.0,
        "t1": 1.0,
        "w0": 0.0,
        "w1": 1.0,
    }


class TestMergeJsonl:
    def test_sids_rebased_past_previous_inputs(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        spans_to_jsonl([span(0), span(1, parent=0)], a)
        spans_to_jsonl([span(0), span(1, parent=0)], b)
        out = tmp_path / "merged.jsonl"
        assert merge_jsonl([a, b], out) == 4
        merged, _ = load_jsonl_with_meta(out)
        assert [s["sid"] for s in merged] == [0, 1, 2, 3]
        # Relative structure survives: each file's child still points
        # at its own root.
        assert [s["parent"] for s in merged] == [None, 0, None, 2]

    def test_dropped_counts_summed(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        spans_to_jsonl([span(0)], a, dropped=3)
        spans_to_jsonl([span(0)], b, dropped=4)
        out = tmp_path / "merged.jsonl"
        merge_jsonl([a, b], out)
        _, meta = load_jsonl_with_meta(out)
        assert meta["dropped_events"] == 7

    def test_merge_is_deterministic(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        spans_to_jsonl([span(0), span(1, parent=0)], a)
        spans_to_jsonl([span(0)], b)
        one = tmp_path / "one.jsonl"
        two = tmp_path / "two.jsonl"
        merge_jsonl([a, b], one)
        merge_jsonl([a, b], two)
        assert one.read_bytes() == two.read_bytes()


class TestMergeSnapshot:
    def test_counters_add_gauges_last_write_wins(self):
        worker1, worker2 = MetricsRegistry(), MetricsRegistry()
        worker1.inc("dl/hops", 3)
        worker1.gauge("dl/cwnd", 10.0)
        worker2.inc("dl/hops", 4)
        worker2.gauge("dl/cwnd", 20.0)
        parent = MetricsRegistry()
        parent.merge_snapshot(worker1.snapshot())
        parent.merge_snapshot(worker2.snapshot())
        assert parent.counter("dl/hops") == 7
        assert parent.gauges["dl/cwnd"] == 20.0

    def test_histograms_merge_like_one_stream(self):
        whole, worker1, worker2 = (
            MetricsRegistry(), MetricsRegistry(), MetricsRegistry(),
        )
        values = [1.0, 2.0, 4.0, 8.0, 16.0]
        for value in values:
            whole.observe("rtt", value)
        for value in values[:2]:
            worker1.observe("rtt", value)
        for value in values[2:]:
            worker2.observe("rtt", value)
        parent = MetricsRegistry()
        parent.merge_snapshot(worker1.snapshot())
        parent.merge_snapshot(worker2.snapshot())
        direct = whole.histograms["rtt"]
        merged = parent.histograms["rtt"]
        assert merged.count == direct.count
        assert merged.mean == pytest.approx(direct.mean)
        assert merged.stddev == pytest.approx(direct.stddev)

    def test_merge_same_snapshots_is_deterministic(self):
        worker = MetricsRegistry()
        worker.inc("n", 2)
        worker.observe("h", 1.5)
        snapshots = [worker.snapshot() for _ in range(2)]
        one, two = MetricsRegistry(), MetricsRegistry()
        for snapshot in snapshots:
            one.merge_snapshot(snapshot)
            two.merge_snapshot(snapshot)
        assert one.snapshot() == two.snapshot()
