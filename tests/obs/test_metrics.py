"""The metrics registry and the narrow MetricsSink surface in core."""

import json

from repro.core.metrics import NULL_METRICS, ScopedMetrics, scoped
from repro.obs import MetricsRegistry
from tests.transport.helpers import make_pair, transfer


class TestRegistryBasics:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.inc("a/x")
        reg.inc("a/x", 3)
        assert reg.counter("a/x") == 4

    def test_missing_counter_reads_zero(self):
        assert MetricsRegistry().counter("nope") == 0

    def test_gauges_overwrite(self):
        reg = MetricsRegistry()
        reg.gauge("g", 1.0)
        reg.gauge("g", 7.5)
        assert reg.gauges["g"] == 7.5

    def test_histograms_stream(self):
        reg = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            reg.observe("h", value)
        stats = reg.histograms["h"]
        assert stats.count == 3
        assert stats.mean == 2.0

    def test_names_glob(self):
        reg = MetricsRegistry()
        reg.inc("a/x")
        reg.gauge("a/y", 1)
        reg.observe("b/z", 1)
        assert reg.names() == ["a/x", "a/y", "b/z"]
        assert reg.names("a/*") == ["a/x", "a/y"]

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.gauge("g", 1.5)
        reg.observe("h", 3.0)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_clear(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.gauge("g", 1)
        reg.observe("h", 1)
        reg.clear()
        assert reg.names() == []

    def test_summary_mentions_each_kind(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.gauge("g", 2)
        reg.observe("h", 3)
        text = reg.summary()
        assert "counter  c" in text
        assert "gauge    g" in text
        assert "histo    h" in text
        assert MetricsRegistry().summary() == "(no metrics recorded)"


class TestScoping:
    def test_scoped_view_prefixes(self):
        reg = MetricsRegistry()
        view = reg.scoped("stack/arq")
        view.inc("data_sent")
        view.gauge("window", 4)
        view.observe("rtt", 0.1)
        assert reg.counter("stack/arq/data_sent") == 1
        assert reg.gauges["stack/arq/window"] == 4
        assert "stack/arq/rtt" in reg.histograms

    def test_scoped_views_nest(self):
        reg = MetricsRegistry()
        reg.scoped("a").scoped("b").inc("x")
        assert reg.counter("a/b/x") == 1

    def test_module_scoped_of_none_is_null(self):
        assert scoped(None, "anything") is NULL_METRICS

    def test_null_metrics_swallows_everything(self):
        NULL_METRICS.inc("x")
        NULL_METRICS.gauge("y", 1)
        NULL_METRICS.observe("z", 2)
        assert NULL_METRICS.scoped("deeper") is NULL_METRICS

    def test_scoped_metrics_type(self):
        reg = MetricsRegistry()
        assert isinstance(reg.scoped("p"), ScopedMetrics)


class TestProtocolIntegration:
    def test_sublayer_counters_land_in_the_registry(self):
        reg = MetricsRegistry()
        sim, a, b, _link = make_pair(loss=0.05, metrics=reg)
        data, received, _s, _p = transfer(sim, a, b, nbytes=20_000)
        assert received == data

        sent = reg.counter("tcp:a/rd/segments_sent")
        assert sent > 0
        # dual-write invariant: the registry and the T3-owned state
        # field are the same number — one bookkeeping site feeds both
        assert sent == a.stack.sublayer("rd").state.snapshot()["segments_sent"]
        assert reg.counter("tcp:a/rd/retransmitted") > 0  # lossy link
        assert reg.counter("tcp:a/cm/syns_sent") >= 1
        assert reg.counter("tcp:b/rd/acks_sent") > 0

    def test_cwnd_gauge_tracks_congestion_control(self):
        reg = MetricsRegistry()
        sim, a, b, _link = make_pair(metrics=reg)
        transfer(sim, a, b, nbytes=20_000)
        assert reg.gauges["tcp:a/osr/cwnd"] >= 1

    def test_unmetered_hosts_pay_nothing(self):
        sim, a, b, _link = make_pair()
        assert a.stack.sublayer("rd").metrics is NULL_METRICS

    def test_collect_stack_pulls_state_into_gauges(self):
        reg = MetricsRegistry()
        sim, a, b, _link = make_pair()
        transfer(sim, a, b, nbytes=5_000)
        collected = reg.collect_stack(a.stack)
        assert collected > 0
        key = "tcp:a/rd/state/segments_sent"
        assert reg.gauges[key] > 0
        # pull collection must not pollute the actor-tagged access log
        # (it reads via snapshot())
        assert reg.gauges[key] == (
            a.stack.sublayer("rd").state.snapshot()["segments_sent"]
        )
