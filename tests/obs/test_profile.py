"""Callback profiling keyed by the scheduling actor."""

from repro.core.instrument import acting_as
from repro.obs import CallbackProfiler, UNATTRIBUTED
from repro.sim import Simulator
from tests.transport.helpers import make_pair, transfer


class TestRecording:
    def test_totals_and_counts(self):
        prof = CallbackProfiler()
        prof.record("rd", 0.010)
        prof.record("rd", 0.020)
        prof.record("cm", 0.005)
        assert abs(prof.total_seconds("rd") - 0.030) < 1e-12
        assert abs(prof.total_seconds() - 0.035) < 1e-12
        assert prof.callbacks("rd") == 2
        assert prof.callbacks("never") == 0

    def test_none_actor_becomes_unattributed(self):
        prof = CallbackProfiler()
        prof.record(None, 0.001)
        assert prof.total_seconds(UNATTRIBUTED) == 0.001

    def test_hottest_ranks_by_total(self):
        prof = CallbackProfiler()
        prof.record("cold", 0.001)
        prof.record("hot", 0.100)
        assert [actor for actor, _ in prof.hottest()] == ["hot", "cold"]
        assert prof.hottest(1) == [("hot", 0.100)]

    def test_as_dict_and_summary(self):
        prof = CallbackProfiler()
        prof.record("rd", 0.010)
        profile = prof.as_dict()
        assert profile["rd"]["total_s"] == 0.010
        assert profile["rd"]["count"] == 1
        assert "rd" in prof.summary()
        assert "(no callbacks profiled)" in CallbackProfiler().summary()


class TestSimulatorIntegration:
    def test_install_hooks_the_engine(self):
        sim = Simulator()
        prof = CallbackProfiler().install(sim)
        assert sim.profiler is prof

    def test_actor_captured_at_schedule_time(self):
        sim = Simulator()
        prof = CallbackProfiler().install(sim)
        with acting_as("arq"):
            sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)  # outside any actor context
        sim.run()
        assert prof.callbacks("arq") == 1
        assert prof.callbacks(UNATTRIBUTED) == 1

    def test_no_profiler_means_no_attribution_cost(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        assert handle.actor is None

    def test_profiles_a_real_transfer(self):
        sim, a, b, _link = make_pair()
        prof = CallbackProfiler().install(sim)
        data, received, _s, _p = transfer(sim, a, b, nbytes=10_000)
        assert received == data
        assert prof.total_seconds() > 0
        # the transfer's callbacks were scheduled by protocol actors
        # (retransmit timers, link deliveries under acting_as)
        assert set(prof.stats) & {"rd", "cm", "dm", "osr"} or (
            prof.callbacks(UNATTRIBUTED) > 0
        )
