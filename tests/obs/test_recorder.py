"""FlightRecorder: bounded capture, checkpoint history, bundle dumps."""

import json

import pytest

from repro.core.errors import ConfigurationError
from repro.obs import FlightRecorder, MetricsRegistry, load_jsonl_with_meta
from repro.obs.recorder import METRICS_FILE, SPANS_FILE, TRIGGER_FILE
from tests.transport.helpers import make_pair, transfer


def recorded_transfer(tmp_path, **recorder_kwargs):
    registry = MetricsRegistry()
    sim, a, b, _link = make_pair(metrics=registry)
    recorder = FlightRecorder(directory=tmp_path, **recorder_kwargs)
    recorder.observe(registry, a, b)  # hosts: recorder finds .stack
    data, received, _sock, _peer = transfer(sim, a, b, nbytes=2000)
    assert received == data
    return recorder, registry


class TestCapture:
    def test_observe_accepts_hosts_and_stacks(self, tmp_path):
        registry = MetricsRegistry()
        sim, a, b, _link = make_pair(metrics=registry)
        recorder = FlightRecorder()
        recorder.observe(registry, a, b.stack)
        transfer(sim, a, b, nbytes=500)
        stacks = {s["stack"] for s in recorder.tracer.spans()}
        assert stacks == {"tcp:a", "tcp:b"}

    def test_capacity_bounds_the_ring(self, tmp_path):
        recorder, _ = recorded_transfer(tmp_path, capacity=8)
        assert len(recorder.tracer) == 8
        assert recorder.tracer.dropped_spans > 0

    def test_detach_stops_recording(self, tmp_path):
        registry = MetricsRegistry()
        sim, a, b, _link = make_pair(metrics=registry)
        recorder = FlightRecorder()
        recorder.observe(registry, a, b)
        recorder.detach()
        transfer(sim, a, b, nbytes=500)
        assert len(recorder.tracer) == 0

    def test_snapshots_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            FlightRecorder(snapshots=0)


class TestCheckpoints:
    def test_bounded_history(self, tmp_path):
        recorder, registry = recorded_transfer(tmp_path, snapshots=3)
        for index in range(5):
            registry.inc("ticks")
            recorder.checkpoint(f"t{index}", time=float(index))
        recorder.dump({"why": "test"})
        metrics = json.loads((tmp_path / METRICS_FILE).read_text())
        labels = [c["label"] for c in metrics["checkpoints"]]
        assert labels == ["t2", "t3", "t4"]  # oldest evicted
        assert metrics["checkpoints"][-1]["snapshot"]["counters"]["ticks"] == 5

    def test_checkpoint_without_registry_is_noop(self):
        recorder = FlightRecorder()
        recorder.checkpoint("early")  # must not raise


class TestDump:
    def test_bundle_contents(self, tmp_path):
        recorder, registry = recorded_transfer(tmp_path)
        trigger = {"scenario": "test", "seed": 3, "violations": ["v"]}
        bundle = recorder.dump(trigger)
        assert bundle == tmp_path
        assert recorder.dumped == tmp_path

        spans, meta = load_jsonl_with_meta(tmp_path / SPANS_FILE)
        assert spans and all("actor" in s for s in spans)

        metrics = json.loads((tmp_path / METRICS_FILE).read_text())
        assert "final" in metrics
        assert metrics["final"]["counters"]  # the transfer counted things

        assert json.loads((tmp_path / TRIGGER_FILE).read_text()) == trigger

    def test_dump_directory_override(self, tmp_path):
        recorder, _ = recorded_transfer(tmp_path / "default")
        bundle = recorder.dump({"why": "x"}, directory=tmp_path / "override")
        assert bundle == tmp_path / "override"
        assert (bundle / TRIGGER_FILE).exists()

    def test_dump_without_directory_raises(self):
        recorder = FlightRecorder()
        with pytest.raises(ConfigurationError, match="directory"):
            recorder.dump({"why": "x"})

    def test_sampled_recorder_declares_rate_in_bundle(self, tmp_path):
        recorder, _ = recorded_transfer(tmp_path, sample=0.5)
        recorder.dump({"why": "x"})
        _, meta = load_jsonl_with_meta(tmp_path / SPANS_FILE)
        assert meta["sample_rate"] == 0.5
