"""Sampled tracing: head decisions, tree atomicity, tail retention,
determinism, and survival across live stack surgery (set_tier/replace/
insert recompiles)."""

import random

import pytest

from repro.core.errors import ConfigurationError
from repro.obs import MetricsRegistry, SpanTracer, watch_counters
from repro.obs.sample import default_sample_rng
from tests.transport.helpers import make_pair, transfer


def sampled_pair(sample, rng=None, **tracer_kwargs):
    sim, a, b, _link = make_pair()
    tracer = SpanTracer(sample=sample, rng=rng, **tracer_kwargs)
    tracer.attach(a.stack).attach(b.stack)
    return sim, a, b, tracer


class TestConstruction:
    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError, match="sample"):
            SpanTracer(sample=1.5)
        with pytest.raises(ConfigurationError, match="sample"):
            SpanTracer(sample=-0.1)

    def test_rejects_bad_tail_mode(self):
        with pytest.raises(ConfigurationError, match="tail"):
            SpanTracer(sample=0.5, tail="branch")

    def test_default_rng_is_deterministic(self):
        assert [default_sample_rng().random() for _ in range(3)] == [
            default_sample_rng().random() for _ in range(3)
        ]


class TestHeadSampling:
    def test_sample_zero_records_nothing_but_counts(self):
        sim, a, b, tracer = sampled_pair(sample=0.0)
        transfer(sim, a, b, nbytes=2000)
        assert len(tracer) == 0
        assert tracer.sampled_out > 0

    def test_sample_one_records_everything(self):
        sim, a, b, tracer = sampled_pair(sample=1.0)
        transfer(sim, a, b, nbytes=2000)
        assert len(tracer) > 0
        assert tracer.sampled_out == 0

    def test_trees_kept_or_dropped_atomically(self):
        """No orphans: every recorded span's parent is recorded too."""
        sim, a, b, tracer = sampled_pair(sample=0.4)
        transfer(sim, a, b, nbytes=8000)
        spans = tracer.spans()
        assert spans, "a 0.4 sample of a transfer should keep something"
        assert tracer.sampled_out > 0, "and drop something"
        sids = {s["sid"] for s in spans}
        for span in spans:
            if span["parent"] is not None:
                assert span["parent"] in sids

    def test_same_rng_seed_samples_identically(self):
        def run():
            sim, a, b, tracer = sampled_pair(
                sample=0.3, rng=random.Random(42)
            )
            transfer(sim, a, b, nbytes=5000)
            return [
                (s["stack"], s["direction"], s["caller"], s["actor"])
                for s in tracer.spans()
            ]

        assert run() == run()

    def test_different_seeds_sample_differently(self):
        def run(seed):
            sim, a, b, tracer = sampled_pair(
                sample=0.5, rng=random.Random(seed)
            )
            transfer(sim, a, b, nbytes=5000)
            return len(tracer)

        counts = {run(seed) for seed in (1, 2, 3, 4)}
        assert len(counts) > 1


class TestTailRetention:
    def test_error_retains_dropped_activation(self):
        """An exception escaping a sampled-out activation keeps it.

        Sending on a TCP stack with no open connection makes CM raise —
        a real protocol error travelling up through live spans.
        """
        sim, a, b, _link = make_pair()
        tracer = SpanTracer(sample=0.0)
        tracer.attach(a.stack)
        with pytest.raises(Exception) as excinfo:
            a.stack.send(b"x")
        spans = tracer.spans()
        assert spans, "the erroring activation must be retained"
        root = [s for s in spans if s["parent"] is None][0]
        assert root["retained"] == "error"
        assert root["error"] == type(excinfo.value).__name__
        assert tracer.retained["error"] == 1

    def test_tree_mode_keeps_whole_tree_root_mode_only_root(self):
        for tail, expect_children in (("tree", True), ("root", False)):
            sim, a, b, _link = make_pair()
            tracer = SpanTracer(sample=0.0, tail=tail)
            tracer.attach(a.stack)
            with pytest.raises(Exception):
                a.stack.send(b"x")
            spans = tracer.spans()
            children = [s for s in spans if s["parent"] is not None]
            assert bool(children) == expect_children
            assert any(s["parent"] is None for s in spans)

    def test_watched_counter_movement_retains(self):
        registry = MetricsRegistry()
        sim, a, b, _link = make_pair(metrics=registry)
        tracer = SpanTracer(
            sample=0.0, retain=watch_counters(registry, "*/segments_sent")
        )
        tracer.attach(a.stack)
        transfer(sim, a, b, nbytes=1000)
        assert tracer.retained["interest"] > 0
        roots = [s for s in tracer.spans() if s["parent"] is None]
        assert any(s.get("retained") == "interest" for s in roots)

    def test_watch_counters_needs_patterns(self):
        with pytest.raises(ValueError):
            watch_counters(MetricsRegistry())


class TestSamplingMeta:
    def test_write_jsonl_declares_sampling(self, tmp_path):
        sim, a, b, tracer = sampled_pair(sample=0.25)
        transfer(sim, a, b, nbytes=4000)
        path = tmp_path / "sampled.jsonl"
        tracer.write_jsonl(path)
        from repro.obs import load_jsonl_with_meta

        _, meta = load_jsonl_with_meta(path)
        assert meta["sample_rate"] == 0.25
        assert meta["sampled_out"] == tracer.sampled_out

    def test_unsampled_trace_has_no_sampling_meta(self, tmp_path):
        sim, a, b, tracer = sampled_pair(sample=1.0)
        transfer(sim, a, b, nbytes=1000)
        path = tmp_path / "full.jsonl"
        tracer.write_jsonl(path)
        from repro.obs import load_jsonl_with_meta

        _, meta = load_jsonl_with_meta(path)
        assert "sample_rate" not in meta


class TestStackSurgeryWhileTracing:
    """Satellite: the span hook must survive recompiling mutations."""

    def test_set_tier_after_attach_keeps_tracing(self):
        """Attach at tier full, then drop to metrics/off: the tier
        switch recompiles every hop and must carry the hook along."""
        sim, a, b, tracer = sampled_pair(sample=1.0)
        a.stack.set_tier("metrics")
        b.stack.set_tier("off")
        data, received, _sock, _peer = transfer(sim, a, b, nbytes=1000)
        assert received == data
        assert len(tracer) > 0, "hook must be recompiled into the new tier"
        assert {s["stack"] for s in tracer.spans()} == {"tcp:a", "tcp:b"}
        # and spans still nest correctly under the cheap tiers
        sids = {s["sid"] for s in tracer.spans()}
        assert all(
            s["parent"] in sids
            for s in tracer.spans()
            if s["parent"] is not None
        )

    def test_replace_carries_hook_to_twin(self):
        """stack.replace() builds a twin; the tracer must follow it."""
        sim, a, b, tracer = sampled_pair(sample=1.0)
        from repro.transport.sublayered.rd import RdSublayer

        twin = a.stack.replace("rd", RdSublayer("rd"))
        a.stack = twin  # hosts route through self.stack
        twin.on_transmit = a.stack.on_transmit
        assert twin.span_hook is not None

    def test_insert_recompiles_hook_into_new_hops(self):
        sim, a, b, tracer = sampled_pair(sample=1.0)
        from repro.core.sublayer import PassthroughSublayer

        class TransparentShim(PassthroughSublayer):
            TRANSPARENT = True  # control plane wires straight past it

        a.stack.insert("cm", TransparentShim("shim"), where="after")
        transfer(sim, a, b, nbytes=1000)
        assert "shim" in tracer.actors(), (
            "crossings into the inserted sublayer must be spanned"
        )


class TestSampledFastPath:
    def test_dropped_crossings_skip_span_objects(self):
        """At sample=0, tail='root', child hooks return None — the hop
        calls through without entering any context manager."""
        sim, a, b, _link = make_pair()
        tracer = SpanTracer(sample=0.0, tail="root")
        tracer.attach(a.stack)
        transfer(sim, a, b, nbytes=2000)
        # nothing recorded, but the skipped crossings were counted
        assert len(tracer) == 0
        assert tracer.sampled_out > 0
