"""Span tracing: tree shape, attachment, ring mode, full-stack e2e."""

from repro.obs import (
    SpanTracer,
    pdu_id,
    pdu_label,
    to_chrome_trace,
    validate_chrome_trace,
)
from tests.transport.helpers import make_pair, transfer


def traced_pair(**kwargs):
    sim, a, b, link = make_pair(**kwargs)
    tracer = SpanTracer()
    tracer.attach(a.stack)
    tracer.attach(b.stack)
    return sim, a, b, tracer


class TestPduHelpers:
    def test_bytes_label(self):
        assert pdu_label(b"hello") == "bytes[5]"

    def test_unsized_label(self):
        assert pdu_label(object()) == "object"

    def test_bytes_id_is_object_identity(self):
        blob = b"hello"
        assert pdu_id(blob) == id(blob)


class TestSpanTree:
    def test_single_pdu_covers_every_sublayer_crossing(self):
        """The acceptance run: one PDU through the Fig 5 TCP stack."""
        sim, a, b, tracer = traced_pair()
        data, received, _sock, _peer = transfer(sim, a, b, nbytes=100)
        assert received == data  # single segment, clean link

        # every sublayer of both stacks took part, plus the stack edges
        assert tracer.actors() >= {"osr", "rd", "cm", "dm", "_wire", "_app"}
        stacks = {s["stack"] for s in tracer.spans()}
        assert stacks == {"tcp:a", "tcp:b"}

    def test_parenting_yields_causal_chains(self):
        sim, a, b, tracer = traced_pair()
        transfer(sim, a, b, nbytes=100)
        spans = tracer.spans()
        by_sid = {s["sid"]: s for s in spans}

        # every non-root parent exists, and nesting is containment:
        # a child's wall interval lies inside its parent's
        for span in spans:
            parent = span["parent"]
            if parent is None:
                continue
            assert parent in by_sid
            outer = by_sid[parent]
            assert outer["w0"] <= span["w0"] <= span["w1"] <= outer["w1"]

        # the causal chains are the Fig 5 stack drawn from a live run:
        # data segments descend rd -> cm -> dm -> _wire and ascend
        # dm -> cm -> rd -> osr -> _app on the receiver
        paths = []

        def walk(node, prefix):
            prefix = prefix + [
                f"{node['direction']}:{node['caller']}->{node['actor']}"
            ]
            kids = tracer.children_of(node["sid"])
            if not kids:
                paths.append(prefix)
            for kid in kids:
                walk(kid, prefix)

        roots = tracer.roots()
        assert roots
        for root in roots:
            walk(root, [])

        def has_run(path, hops):
            return any(
                path[i : i + len(hops)] == hops
                for i in range(len(path) - len(hops) + 1)
            )

        assert any(
            has_run(p, ["down:rd->cm", "down:cm->dm", "down:dm->_wire"])
            for p in paths
        )
        assert any(
            has_run(
                p,
                [
                    "up:_wire->dm",
                    "up:dm->cm",
                    "up:cm->rd",
                    "up:rd->osr",
                    "up:osr->_app",
                ],
            )
            for p in paths
        )

    def test_tree_view_groups_by_parent(self):
        sim, a, b, tracer = traced_pair()
        transfer(sim, a, b, nbytes=100)
        tree = tracer.tree()
        assert tree[None] == tracer.roots()
        assert sum(len(kids) for kids in tree.values()) == len(tracer)

    def test_virtual_times_come_from_the_sim_clock(self):
        sim, a, b, tracer = traced_pair()
        transfer(sim, a, b, nbytes=100)
        for span in tracer.spans():
            assert 0.0 <= span["t0"] <= span["t1"] <= sim.now

    def test_chrome_export_of_e2e_run_is_valid(self):
        sim, a, b, tracer = traced_pair()
        transfer(sim, a, b, nbytes=100)
        for clock in ("wall", "virtual"):
            trace = to_chrome_trace(tracer.spans(), clock=clock)
            assert validate_chrome_trace(trace) == []


class TestAttachment:
    def test_detach_stops_recording(self):
        sim, a, b, tracer = traced_pair()
        transfer(sim, a, b, nbytes=100)
        before = len(tracer)
        assert before > 0
        tracer.detach_all()
        assert a.stack.span_hook is None and b.stack.span_hook is None

        sim2, a2, b2, _link = make_pair()
        transfer(sim2, a2, b2, nbytes=100)
        assert len(tracer) == before

    def test_attach_returns_self_for_chaining(self):
        sim, a, b, _link = make_pair()
        tracer = SpanTracer().attach(a.stack).attach(b.stack)
        assert a.stack.span_hook is not None
        assert tracer._attached == [a.stack, b.stack]

    def test_untraced_stack_has_no_hook(self):
        sim, a, b, _link = make_pair()
        assert a.stack.span_hook is None


class TestRingMode:
    def test_max_spans_bounds_memory_and_counts_drops(self):
        sim, a, b, link = make_pair(loss=0.05)
        tracer = SpanTracer(max_spans=16)
        tracer.attach(a.stack)
        tracer.attach(b.stack)
        transfer(sim, a, b, nbytes=20_000)
        assert len(tracer) == 16
        assert tracer.dropped_spans > 0
        assert tracer.dropped_spans + 16 > 100  # a real run happened

    def test_dropped_spans_zero_when_unbounded(self):
        sim, a, b, tracer = traced_pair()
        transfer(sim, a, b, nbytes=100)
        assert tracer.dropped_spans == 0
