"""Tests for the JSONL proof cache."""

import json

from repro.par import ProofCache


class TestProofCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ProofCache(root=tmp_path)
        assert cache.get("k", "fp") is None
        cache.put("k", "fp", {"proved": True})
        assert cache.get("k", "fp") == {"proved": True}
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_fingerprint_mismatch_is_miss(self, tmp_path):
        cache = ProofCache(root=tmp_path)
        cache.put("k", "old-fp", {"proved": True})
        assert cache.get("k", "new-fp") is None
        assert "k" in cache  # key still present, entry just stale

    def test_persists_across_instances(self, tmp_path):
        ProofCache(root=tmp_path).put("k", "fp", [1, 2])
        reopened = ProofCache(root=tmp_path)
        assert reopened.get("k", "fp") == [1, 2]

    def test_domains_are_independent_files(self, tmp_path):
        ProofCache(root=tmp_path, domain="proofs").put("k", "fp", 1)
        ProofCache(root=tmp_path, domain="trials").put("k", "fp", 2)
        assert (tmp_path / "proofs.jsonl").exists()
        assert (tmp_path / "trials.jsonl").exists()
        assert ProofCache(root=tmp_path, domain="proofs").get("k", "fp") == 1
        assert ProofCache(root=tmp_path, domain="trials").get("k", "fp") == 2

    def test_newest_record_wins(self, tmp_path):
        cache = ProofCache(root=tmp_path)
        cache.put("k", "fp", "old")
        cache.put("k", "fp", "new")
        assert ProofCache(root=tmp_path).get("k", "fp") == "new"

    def test_corrupt_line_skipped(self, tmp_path):
        cache = ProofCache(root=tmp_path)
        cache.put("good", "fp", True)
        with cache.path.open("a", encoding="utf-8") as fp:
            fp.write('{"key": "torn", "fingerprint": "fp", "resu\n')
            fp.write("not json at all\n")
        reopened = ProofCache(root=tmp_path)
        assert reopened.get("good", "fp") is True
        assert len(reopened) == 1

    def test_compaction_drops_superseded_records(self, tmp_path):
        cache = ProofCache(root=tmp_path, compact_factor=3)
        for round_ in range(10):
            cache.put("k", "fp", round_)
        lines = cache.path.read_text().strip().splitlines()
        assert len(lines) < 10  # auto-compacted along the way
        assert json.loads(lines[-1])["result"] == cache.get("k", "fp") == 9

    def test_clear(self, tmp_path):
        cache = ProofCache(root=tmp_path)
        cache.put("k", "fp", 1)
        cache.clear()
        assert len(cache) == 0
        assert not cache.path.exists()
        assert cache.get("k", "fp") is None
