"""Tests for content-hash fingerprints of work units."""

import importlib.util
import linecache
import subprocess
import sys
import textwrap

from repro.core.bits import Bits
from repro.datalink.framing.rules import HDLC_RULE, StuffingRule
from repro.par import callable_fingerprint, value_fingerprint


def rule(flag, trigger, stuff_bit):
    return StuffingRule(
        flag=Bits.from_string(flag),
        trigger=Bits.from_string(trigger),
        stuff_bit=stuff_bit,
    )


def _load_prop(path, body):
    """Write and import a module whose ``prop`` has ``body`` as its source."""
    path.write_text(
        textwrap.dedent(
            f"""
            def prop(x):
                return {body}
            """
        )
    )
    linecache.checkcache()
    spec = importlib.util.spec_from_file_location("fpmod", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.prop


class TestCallableFingerprint:
    def test_stable_across_calls(self):
        fn = lambda x: x + 1  # noqa: E731
        assert callable_fingerprint(fn) == callable_fingerprint(fn)

    def test_edited_body_changes_fingerprint(self, tmp_path):
        path = tmp_path / "fpmod.py"
        before = callable_fingerprint(_load_prop(path, "x >= 0"))
        unchanged = callable_fingerprint(_load_prop(path, "x >= 0"))
        after = callable_fingerprint(_load_prop(path, "x + 0 >= 0"))
        assert before == unchanged
        assert before != after

    def test_closure_value_matters(self):
        def make(rule):
            return lambda data: (data, rule)

        a = callable_fingerprint(make(HDLC_RULE))
        b = callable_fingerprint(make(HDLC_RULE))
        c = callable_fingerprint(make(rule("0110", "11", 0)))
        assert a == b
        assert a != c

    def test_default_argument_matters(self):
        def make(n):
            def fn(x, samples=n):
                return x < samples

            return fn

        assert callable_fingerprint(make(10)) != callable_fingerprint(make(20))

    def test_extra_parameters_matter(self):
        fn = lambda x: x  # noqa: E731
        assert callable_fingerprint(fn, 9) != callable_fingerprint(fn, 10)

    def test_stable_across_processes(self):
        # A fingerprint over real repo code must not depend on memory
        # addresses or PYTHONHASHSEED: recompute in a fresh interpreter.
        script = (
            "from repro.datalink.framing.rules import HDLC_RULE\n"
            "from repro.datalink.framing.stuffing import stuff\n"
            "from repro.par import callable_fingerprint\n"
            "print(callable_fingerprint(stuff, HDLC_RULE))\n"
        )
        runs = {
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed},
            ).stdout.strip()
            for seed in ("0", "424242")
        }
        from repro.datalink.framing.stuffing import stuff

        runs.add(callable_fingerprint(stuff, HDLC_RULE))
        assert len(runs) == 1


class TestValueFingerprint:
    def test_value_identity(self):
        assert value_fingerprint(1, "a") == value_fingerprint(1, "a")
        assert value_fingerprint(1, "a") != value_fingerprint(1, "b")

    def test_containers_walked_structurally(self):
        assert value_fingerprint([1, (2, 3)]) == value_fingerprint([1, (2, 3)])
        assert value_fingerprint([1, (2, 3)]) != value_fingerprint([1, (2, 4)])

    def test_rule_instances_key_by_content(self):
        same = rule("01111110", "11111", 0)
        assert value_fingerprint(HDLC_RULE) == value_fingerprint(same)
