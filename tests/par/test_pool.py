"""Tests for the fork-based deterministic process pool."""

import os

import pytest

from repro.core.errors import ConfigurationError
from repro.par import ForkPool, effective_jobs, fork_map

FORKING = os.name == "posix"


def square(x):
    return x * x


def close_over(offset):
    # Unpicklable work function (closure): the whole point of fork
    # inheritance is that this still runs on workers.
    return lambda x: x + offset


class TestEffectiveJobs:
    def test_none_and_one_are_serial(self):
        assert effective_jobs(None) == 1
        assert effective_jobs(1) == 1

    def test_zero_means_all_cpus(self):
        assert effective_jobs(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            effective_jobs(-2)

    def test_explicit_count_passes_through(self):
        if FORKING:
            assert effective_jobs(3) == 3


class TestForkPool:
    def test_serial_map_in_order(self):
        with ForkPool(square, jobs=1) as pool:
            assert pool.map(range(6)) == [0, 1, 4, 9, 16, 25]

    @pytest.mark.skipif(not FORKING, reason="fork-only")
    def test_parallel_map_in_item_order(self):
        with ForkPool(square, jobs=2) as pool:
            assert pool.map(range(20)) == [x * x for x in range(20)]

    @pytest.mark.skipif(not FORKING, reason="fork-only")
    def test_closure_work_function_inherited(self):
        fn = close_over(100)
        assert fork_map(fn, [1, 2, 3], jobs=2) == [101, 102, 103]

    @pytest.mark.skipif(not FORKING, reason="fork-only")
    def test_repeated_map_reuses_pool(self):
        with ForkPool(square, jobs=2) as pool:
            assert pool.map([2, 3]) == [4, 9]
            assert pool.map([4]) == [16]

    @pytest.mark.skipif(not FORKING, reason="fork-only")
    def test_nested_pools_rejected(self):
        with ForkPool(square, jobs=2):
            with pytest.raises(ConfigurationError, match="nested"):
                ForkPool(square, jobs=2).__enter__()

    @pytest.mark.skipif(not FORKING, reason="fork-only")
    def test_worker_exception_propagates(self):
        def boom(x):
            raise ValueError(f"bad item {x}")

        with pytest.raises(ValueError, match="bad item"):
            fork_map(boom, [1], jobs=2)

    def test_parallel_equals_serial(self):
        serial = fork_map(square, range(15), jobs=1)
        parallel = fork_map(square, range(15), jobs=2)
        assert serial == parallel
