"""Tests for repro.phys.encodings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bits import Bits, all_bitstrings
from repro.core.errors import FramingError
from repro.phys.encodings import LINE_CODES, FourBFiveB, Manchester, NRZ, NRZI

bit_lists = st.lists(st.integers(0, 1), max_size=64)
nibble_aligned = st.lists(st.integers(0, 1), max_size=64).filter(
    lambda bits: len(bits) % 4 == 0
)


class TestNRZ:
    def test_identity(self):
        data = Bits.from_string("0110")
        assert NRZ().encode(data) == data
        assert NRZ().decode(data) == data

    @given(bit_lists)
    def test_roundtrip(self, bits):
        code = NRZ()
        assert code.decode(code.encode(Bits(bits))) == Bits(bits)


class TestNRZI:
    def test_encode_toggles_on_one(self):
        assert NRZI().encode(Bits.from_string("1101")) == Bits.from_string("1001")

    def test_encode_holds_on_zero(self):
        assert NRZI().encode(Bits.from_string("000")) == Bits.from_string("000")

    @given(bit_lists)
    def test_roundtrip(self, bits):
        code = NRZI()
        assert code.decode(code.encode(Bits(bits))) == Bits(bits)

    def test_long_run_of_ones_alternates(self):
        symbols = NRZI().encode(Bits.ones(6))
        assert symbols == Bits.from_string("101010")


class TestManchester:
    def test_encoding_table(self):
        assert Manchester().encode(Bits.from_string("01")) == Bits.from_string("0110")

    def test_doubles_length(self):
        assert len(Manchester().encode(Bits.zeros(5))) == 10

    @given(bit_lists)
    def test_roundtrip(self, bits):
        code = Manchester()
        assert code.decode(code.encode(Bits(bits))) == Bits(bits)

    def test_odd_length_rejected(self):
        with pytest.raises(FramingError):
            Manchester().decode(Bits.from_string("011"))

    def test_invalid_pair_rejected(self):
        with pytest.raises(FramingError):
            Manchester().decode(Bits.from_string("0011"))


class TestFourBFiveB:
    def test_aligned_expands_by_quarter(self):
        assert len(FourBFiveB().encode_aligned(Bits.zeros(8))) == 10

    @given(nibble_aligned)
    def test_aligned_roundtrip(self, bits):
        code = FourBFiveB()
        assert code.decode_aligned(code.encode_aligned(Bits(bits))) == Bits(bits)

    @given(st.lists(st.integers(0, 1), max_size=64))
    def test_padded_roundtrip_any_length(self, bits):
        """The padded mode accepts any bit length (stuffed frames)."""
        code = FourBFiveB()
        assert code.decode(code.encode(Bits(bits))) == Bits(bits)

    def test_unaligned_encode_aligned_rejected(self):
        with pytest.raises(FramingError):
            FourBFiveB().encode_aligned(Bits.zeros(3))

    def test_unaligned_decode_rejected(self):
        with pytest.raises(FramingError):
            FourBFiveB().decode(Bits.zeros(7))

    def test_invalid_code_word_rejected(self):
        with pytest.raises(FramingError):
            FourBFiveB().decode(Bits.from_string("00000"))

    def test_bad_pad_field_rejected(self):
        # pad field claims 3 pad bits but only the field itself exists
        code = FourBFiveB()
        framed = code.encode_aligned(Bits.from_string("0110"))  # pad=3, no data
        with pytest.raises(FramingError):
            code.decode(framed)

    def test_run_length_property(self):
        """No encoded nibble stream contains more than 3 consecutive zeros."""
        code = FourBFiveB()
        for data in all_bitstrings(8):
            symbols = code.encode(data)
            assert not symbols.contains(Bits.zeros(4)), data

    def test_all_code_words_distinct(self):
        assert len(set(FourBFiveB._TABLE.values())) == 16


class TestRegistry:
    def test_all_codes_registered(self):
        assert set(LINE_CODES) == {"nrz", "nrzi", "manchester", "4b5b"}

    def test_registry_instantiable(self):
        for cls in LINE_CODES.values():
            code = cls()
            data = Bits.zeros(8)
            assert code.decode(code.encode(data)) == data
