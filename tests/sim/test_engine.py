"""Tests for repro.sim.engine."""

import pytest

from repro.core.clock import Clock
from repro.core.errors import SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.run_until_idle()
        assert order == ["early", "late"]

    def test_ties_run_in_schedule_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append(1))
        sim.schedule(1.0, lambda: order.append(2))
        sim.run_until_idle()
        assert order == [1, 2]

    def test_now_advances_during_callbacks(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.0, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [3.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(5.0, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [5.0]

    def test_cancel(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        sim.run_until_idle()
        assert fired == []

    def test_callbacks_can_schedule(self):
        sim = Simulator()
        seen = []

        def chain(n):
            seen.append(sim.now)
            if n > 0:
                sim.schedule(1.0, lambda: chain(n - 1))

        sim.schedule(0.0, lambda: chain(3))
        sim.run_until_idle()
        assert seen == [0.0, 1.0, 2.0, 3.0]


class TestRun:
    def test_run_until_stops_at_deadline(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        assert sim.pending_events == 1

    def test_run_returns_stop_time(self):
        sim = Simulator()
        sim.schedule(1.5, lambda: None)
        assert sim.run_until_idle() == 1.5

    def test_events_processed_counted(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run_until_idle()
        assert sim.events_processed == 4

    def test_runaway_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run_until_idle(max_events=100)

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError as e:
                errors.append(e)

        sim.schedule(0.0, reenter)
        sim.run_until_idle()
        assert len(errors) == 1


class TestSimClock:
    def test_satisfies_protocol(self):
        assert isinstance(Simulator().clock(), Clock)

    def test_now_tracks_simulator(self):
        sim = Simulator()
        clock = sim.clock()
        sim.schedule(2.0, lambda: None)
        sim.run_until_idle()
        assert clock.now() == 2.0

    def test_call_later_schedules(self):
        sim = Simulator()
        clock = sim.clock()
        fired = []
        clock.call_later(1.0, lambda: fired.append(clock.now()))
        sim.run_until_idle()
        assert fired == [1.0]
