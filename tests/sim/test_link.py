"""Tests for repro.sim.link."""

import random

import pytest

from repro.core.bits import Bits
from repro.core.errors import ConfigurationError, SimulationError
from repro.core.header import Field, HeaderFormat
from repro.core.pdu import Pdu
from repro.sim.engine import Simulator
from repro.sim.link import (
    DEFAULT_UNIT_BITS,
    DuplexLink,
    Link,
    LinkConfig,
    unit_size_bits,
)


def make_link(**kwargs):
    sim = Simulator()
    link = Link(sim, LinkConfig(**kwargs), rng=random.Random(7))
    received = []
    link.connect(lambda u, **m: received.append((sim.now, u)))
    return sim, link, received


class TestLinkConfig:
    def test_bad_loss_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkConfig(loss=1.5)

    def test_bad_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkConfig(delay=-1)

    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkConfig(rate_bps=0)

    def test_bad_ber_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkConfig(bit_error_rate=2.0)


class TestUnitSize:
    def test_bits(self):
        assert unit_size_bits(Bits.from_string("0101")) == 4

    def test_bytes(self):
        assert unit_size_bits(b"ab") == 16

    def test_pdu(self):
        fmt = HeaderFormat("h", [Field("x", 16)])
        assert unit_size_bits(Pdu("h", fmt, {}, b"ab")) == 32

    def test_opaque_object_default(self):
        assert unit_size_bits(object()) == DEFAULT_UNIT_BITS


class TestDelivery:
    def test_basic_delivery_after_delay(self):
        sim, link, received = make_link(delay=0.1)
        link.send(b"hello")
        sim.run_until_idle()
        assert received == [(0.1, b"hello")]

    def test_fifo_serialization_at_rate(self):
        # 80 bits at 800 bps = 0.1 s each; second frame queues behind first.
        sim, link, received = make_link(delay=0.0, rate_bps=800)
        link.send(b"0123456789")
        link.send(b"0123456789")
        sim.run_until_idle()
        times = [t for t, _ in received]
        assert times == pytest.approx([0.1, 0.2])

    def test_unconnected_send_raises(self):
        sim = Simulator()
        link = Link(sim)
        with pytest.raises(ConfigurationError):
            link.send(b"x")

    def test_meta_passed_through(self):
        sim = Simulator()
        link = Link(sim)
        seen = []
        link.connect(lambda u, **m: seen.append(m))
        link.send(b"x", channel=3)
        sim.run_until_idle()
        assert seen == [{"channel": 3}]

    def test_mtu_drop(self):
        sim, link, received = make_link(mtu_bits=8)
        link.send(b"toolong")
        sim.run_until_idle()
        assert received == []
        assert link.stats.dropped_mtu == 1


class TestImpairments:
    def test_total_loss(self):
        sim, link, received = make_link(loss=1.0)
        for _ in range(10):
            link.send(b"x")
        sim.run_until_idle()
        assert received == []
        assert link.stats.lost == 10

    def test_partial_loss_statistics(self):
        sim, link, received = make_link(loss=0.5)
        for _ in range(400):
            link.send(b"x")
        sim.run_until_idle()
        assert 120 < len(received) < 280  # ~200 expected

    def test_duplication(self):
        sim, link, received = make_link(duplicate=1.0)
        link.send(b"x")
        sim.run_until_idle()
        assert len(received) == 2
        assert link.stats.duplicated == 1

    def test_reordering_possible(self):
        sim, link, received = make_link(delay=0.01, reorder_jitter=1.0)
        for i in range(50):
            link.send(bytes([i]))
        sim.run_until_idle()
        order = [u[0] for _, u in received]
        assert order != sorted(order)  # jitter produced at least one swap
        assert sorted(order) == list(range(50))

    def test_bit_errors_on_bits(self):
        sim, link, received = make_link(bit_error_rate=0.5)
        link.send(Bits.zeros(64))
        sim.run_until_idle()
        assert received[0][1] != Bits.zeros(64)
        assert link.stats.corrupted == 1

    def test_bit_errors_on_bytes(self):
        sim, link, received = make_link(bit_error_rate=0.5)
        link.send(b"\x00" * 8)
        sim.run_until_idle()
        assert received[0][1] != b"\x00" * 8

    def test_no_bit_errors_without_ber(self):
        sim, link, received = make_link()
        payload = Bits.ones(32)
        link.send(payload)
        sim.run_until_idle()
        assert received[0][1] == payload
        assert link.stats.corrupted == 0

    def test_bit_errors_visible_in_metrics(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        sim = Simulator()
        link = Link(
            sim,
            LinkConfig(bit_error_rate=0.5),
            rng=random.Random(7),
            name="noisy",
            metrics=registry,
        )
        link.connect(lambda u, **m: None)
        for i in range(5):
            link.send(bytes([i]) * 8)
        sim.run_until_idle()
        assert link.stats.corrupted > 0
        counters = registry.snapshot()["counters"]
        assert counters["link/noisy/bit_errors"] == link.stats.corrupted

    def test_no_metrics_sink_still_counts_stats(self):
        sim, link, received = make_link(bit_error_rate=0.5)
        link.send(b"\x00" * 8)
        sim.run_until_idle()
        assert link.stats.corrupted == 1  # NULL_METRICS absorbed the inc

    def test_stats_dict(self):
        sim, link, _ = make_link()
        link.send(b"x")
        sim.run_until_idle()
        stats = link.stats.as_dict()
        assert stats["sent"] == 1
        assert stats["delivered"] == 1
        assert stats["bits_sent"] == 8


class FakeStack:
    def __init__(self):
        self.received = []
        self.on_transmit = None

    def receive(self, unit, **meta):
        self.received.append(unit)


class TestDuplexLink:
    def test_both_directions(self):
        sim = Simulator()
        a, b = FakeStack(), FakeStack()
        duplex = DuplexLink(sim, LinkConfig(delay=0.01))
        duplex.attach(a, b)
        a.on_transmit(b"to-b")
        b.on_transmit(b"to-a")
        sim.run_until_idle()
        assert b.received == [b"to-b"]
        assert a.received == [b"to-a"]

    def test_asymmetric_configs(self):
        sim = Simulator()
        a, b = FakeStack(), FakeStack()
        duplex = DuplexLink(
            sim,
            LinkConfig(delay=0.01),
            reverse_config=LinkConfig(loss=1.0),
            rng_reverse=random.Random(1),
        )
        duplex.attach(a, b)
        a.on_transmit(b"ok")
        b.on_transmit(b"dropped")
        sim.run_until_idle()
        assert b.received == [b"ok"]
        assert a.received == []

    def test_metrics_threaded_to_both_directions(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        sim = Simulator()
        a, b = FakeStack(), FakeStack()
        duplex = DuplexLink(
            sim,
            LinkConfig(bit_error_rate=0.5),
            rng_forward=random.Random(3),
            rng_reverse=random.Random(4),
            name="wan",
            metrics=registry,
        )
        duplex.attach(a, b)
        for i in range(5):
            a.on_transmit(bytes([i]) * 8)
            b.on_transmit(bytes([i]) * 8)
        sim.run_until_idle()
        counters = registry.snapshot()["counters"]
        assert counters["link/wan:fwd/bit_errors"] == duplex.forward.stats.corrupted
        assert counters["link/wan:rev/bit_errors"] == duplex.reverse.stats.corrupted
        assert duplex.forward.stats.corrupted > 0
        assert duplex.reverse.stats.corrupted > 0


class TestDropTailQueue:
    def test_no_drops_without_limit(self):
        sim, link, received = make_link(delay=0.0, rate_bps=800)
        for _ in range(20):
            link.send(b"0123456789")  # 0.1s airtime each
        sim.run_until_idle()
        assert len(received) == 20
        assert link.stats.queue_dropped == 0

    def test_drops_when_queue_exceeds_bound(self):
        # 0.1s per frame; bound 0.25s: about the first 3 fit, rest drop
        sim, link, received = make_link(
            delay=0.0, rate_bps=800, drop_tail_delay=0.25
        )
        for _ in range(20):
            link.send(b"0123456789")
        sim.run_until_idle()
        assert link.stats.queue_dropped > 0
        assert len(received) + link.stats.queue_dropped == 20
        # FIFO order preserved for the survivors
        assert len(received) <= 4

    def test_queue_drains_over_time(self):
        sim, link, received = make_link(
            delay=0.0, rate_bps=800, drop_tail_delay=0.25
        )
        link.send(b"0123456789")
        sim.run_until_idle()
        link.send(b"0123456789")  # queue empty again: accepted
        sim.run_until_idle()
        assert len(received) == 2
        assert link.stats.queue_dropped == 0

    def test_stats_dict_has_new_counters(self):
        sim, link, _ = make_link()
        stats = link.stats.as_dict()
        assert "queue_dropped" in stats and "ecn_marked" in stats


class TestDetachedSink:
    def test_sink_detached_mid_flight_raises(self):
        """A unit in flight with no sink is a simulation fault, not a
        silent drop (and must survive ``python -O``)."""
        sim, link, received = make_link(delay=0.01)
        link.send(Bits.from_bytes(b"x"))
        link._sink = None
        with pytest.raises(SimulationError, match="no\\s+connected sink"):
            sim.run_until_idle()
        assert received == []
