"""``Link.send_batch``: scalar-equivalent semantics, grouped delivery.

The contract: a seeded link treats ``send_batch(units)`` exactly like
``for u in units: send(u)`` — same stats, same rng draws, same arrival
times, same delivered payloads in the same order.  The only change is
event shape: consecutive same-instant arrivals become one simulator
event, handed to the batch sink (when connected) in one call.
"""

import random

from repro.sim.engine import Simulator
from repro.sim.link import DuplexLink, Link, LinkConfig

PAYLOADS = [bytes([i]) * 4 for i in range(16)]


def run_scalar(seed=7, **config):
    sim = Simulator()
    link = Link(sim, LinkConfig(**config), rng=random.Random(seed))
    received = []
    link.connect(lambda u, **m: received.append((sim.now, u)))
    for payload in PAYLOADS:
        link.send(payload)
    sim.run_until_idle()
    return received, link.stats


def run_batch(seed=7, batch_sink=True, **config):
    sim = Simulator()
    link = Link(sim, LinkConfig(**config), rng=random.Random(seed))
    received = []
    sink = lambda u, **m: received.append((sim.now, u))  # noqa: E731
    if batch_sink:
        link.connect(
            sink,
            lambda units, metas=None: received.extend(
                (sim.now, u) for u in units
            ),
        )
    else:
        link.connect(sink)
    link.send_batch(PAYLOADS)
    sim.run_until_idle()
    return received, link.stats


def assert_equivalent(scalar, batch):
    s_recv, s_stats = scalar
    b_recv, b_stats = batch
    assert b_recv == s_recv
    assert b_stats.__dict__ == s_stats.__dict__


def test_ideal_link_batch_matches_scalar():
    assert_equivalent(run_scalar(delay=0.1), run_batch(delay=0.1))


def test_batch_without_batch_sink_falls_back_to_scalar_sink():
    assert_equivalent(
        run_scalar(delay=0.1), run_batch(delay=0.1, batch_sink=False)
    )


def test_impaired_link_batch_matches_scalar():
    config = dict(
        delay=0.05,
        rate_bps=8000,
        loss=0.2,
        duplicate=0.1,
        reorder_jitter=0.01,
        bit_error_rate=0.001,
    )
    assert_equivalent(run_scalar(**config), run_batch(**config))


def test_mtu_and_queue_drops_match_scalar():
    config = dict(delay=0.01, rate_bps=800, mtu_bits=40, drop_tail_delay=0.1)
    assert_equivalent(run_scalar(**config), run_batch(**config))


def test_same_instant_arrivals_become_one_event():
    sim = Simulator()
    link = Link(sim, LinkConfig(delay=0.1), rng=random.Random(7))
    calls = []
    link.connect(
        lambda u, **m: calls.append([u]),
        lambda units, metas=None: calls.append(list(units)),
    )
    link.send_batch(PAYLOADS[:4])
    sim.run_until_idle()
    # no rate limit: every unit arrives at t=0.1, in one grouped event
    assert calls == [PAYLOADS[:4]]
    assert link.stats.delivered == 4


def test_rate_limited_batch_stays_scalar_events():
    sim = Simulator()
    link = Link(sim, LinkConfig(delay=0.1, rate_bps=320), rng=random.Random(7))
    calls = []
    link.connect(
        lambda u, **m: calls.append([u]),
        lambda units, metas=None: calls.append(list(units)),
    )
    link.send_batch(PAYLOADS[:3])
    sim.run_until_idle()
    # serialization staggers arrivals: three single-delivery events
    assert calls == [[PAYLOADS[0]], [PAYLOADS[1]], [PAYLOADS[2]]]


def test_batch_metas_arrive_with_their_units():
    sim = Simulator()
    link = Link(sim, LinkConfig(delay=0.1), rng=random.Random(7))
    got = []
    link.connect(
        lambda u, **m: got.append((u, m)),
        lambda units, metas=None: got.extend(
            (u, m) for u, m in zip(units, metas or [{}] * len(units))
        ),
    )
    link.send_batch([b"a", b"b"], metas=[{"conn": 1}, {"conn": 2}])
    sim.run_until_idle()
    assert got == [(b"a", {"conn": 1}), (b"b", {"conn": 2})]


def test_duplex_wires_batch_endpoints_when_present():
    class BatchHost:
        def __init__(self):
            self.on_transmit = None
            self.on_transmit_batch = None
            self.received = []

        def receive(self, unit, **meta):
            self.received.append([unit])

        def receive_batch(self, units, metas=None):
            self.received.append(list(units))

    sim = Simulator()
    a, b = BatchHost(), BatchHost()
    duplex = DuplexLink(sim, LinkConfig(delay=0.1))
    duplex.attach(a, b)
    a.on_transmit_batch([b"x", b"y"])
    sim.run_until_idle()
    assert b.received == [[b"x", b"y"]]
    b.on_transmit(b"z")
    sim.run_until_idle()
    assert a.received == [[b"z"]]
