"""Tests for repro.sim.medium."""

import pytest

from repro.core.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.medium import BroadcastMedium


def make_medium(stations=2, rate=1000.0):
    sim = Simulator()
    medium = BroadcastMedium(sim, rate_bps=rate)
    ports = [medium.attach(f"s{i}") for i in range(stations)]
    inboxes = [[] for _ in range(stations)]
    for port, inbox in zip(ports, inboxes):
        port.on_receive = inbox.append
    return sim, medium, ports, inboxes


class TestBroadcast:
    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            BroadcastMedium(Simulator(), rate_bps=0)

    def test_frame_reaches_all_other_stations(self):
        sim, medium, ports, inboxes = make_medium(3)
        ports[0].transmit("frame", size_bits=100)
        sim.run_until_idle()
        assert inboxes[0] == []  # sender doesn't hear itself
        assert inboxes[1] == ["frame"]
        assert inboxes[2] == ["frame"]
        assert medium.stats.delivered == 2

    def test_sequential_transmissions_do_not_collide(self):
        sim, medium, ports, inboxes = make_medium(2)
        ports[0].transmit("a", size_bits=100)  # 0.1s airtime
        sim.schedule(0.2, lambda: ports[1].transmit("b", size_bits=100))
        sim.run_until_idle()
        assert inboxes[1] == ["a"]
        assert inboxes[0] == ["b"]
        assert medium.stats.collisions == 0

    def test_overlapping_transmissions_collide(self):
        sim, medium, ports, inboxes = make_medium(2)
        collisions = []
        ports[1].on_collision = lambda: collisions.append(1)
        ports[0].transmit("a", size_bits=1000)  # 1s airtime
        sim.schedule(0.5, lambda: ports[1].transmit("b", size_bits=1000))
        sim.run_until_idle()
        assert inboxes[0] == [] and inboxes[1] == []
        assert medium.stats.collisions == 2

    def test_carrier_sense(self):
        sim, medium, ports, _ = make_medium(2)
        sensed = []
        ports[0].transmit("a", size_bits=1000)  # busy until t=1
        sim.schedule(0.5, lambda: sensed.append(ports[1].carrier_sense()))
        sim.schedule(1.5, lambda: sensed.append(ports[1].carrier_sense()))
        sim.run_until_idle()
        assert sensed == [True, False]

    def test_transmit_done_callback(self):
        sim, medium, ports, _ = make_medium(2)
        outcomes = []
        ports[0].on_transmit_done = outcomes.append
        ports[0].transmit("a", size_bits=10)
        sim.run_until_idle()
        assert outcomes == [False]

    def test_transmit_done_reports_collision(self):
        sim, medium, ports, _ = make_medium(2)
        outcomes = []
        ports[0].on_transmit_done = outcomes.append
        ports[0].transmit("a", size_bits=1000)
        sim.schedule(0.1, lambda: ports[1].transmit("b", size_bits=10))
        sim.run_until_idle()
        assert outcomes == [True]

    def test_three_way_collision(self):
        sim, medium, ports, inboxes = make_medium(3)
        for port in ports:
            port.transmit("x", size_bits=100)
        sim.run_until_idle()
        assert all(inbox == [] for inbox in inboxes)

    def test_prop_delay_shifts_arrival(self):
        sim = Simulator()
        medium = BroadcastMedium(sim, rate_bps=1000, prop_delay=0.5)
        a = medium.attach("a")
        b = medium.attach("b")
        arrivals = []
        b.on_receive = lambda f: arrivals.append(sim.now)
        a.transmit("f", size_bits=100)  # airtime 0.1
        sim.run_until_idle()
        assert arrivals == [pytest.approx(0.6)]
