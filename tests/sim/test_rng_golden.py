"""Golden values for the seed-derivation function.

``derive_seed`` defines every named rng stream in the repo; campaign
results (``python -m repro.faults``) replay bit-for-bit only while
these values stay fixed.  If this test fails, the derivation changed
and every recorded seed/result pair in benchmarks and reports is
invalidated — that is a breaking change, not a refactor.
"""

from repro.sim.rng import RngFactory, derive_seed

#: (root_seed, label) -> first 8 bytes, big-endian, of
#: sha256(f"{root_seed}:{label}").  Computed once and pinned.
GOLDEN = {
    (0, "link"): 2987595919447247027,
    (0, "mac:1"): 13720221149681381142,
    (1, "link"): 16018041945262248193,
    (42, "fault:a:drop"): 5273469679366998936,
    (7, "fork:child"): 13874204831551527475,
}


def test_derive_seed_golden_values():
    for (root, label), expected in GOLDEN.items():
        assert derive_seed(root, label) == expected, (
            f"derive_seed({root}, {label!r}) changed — this breaks "
            "replay of every recorded campaign"
        )


def test_factory_stream_uses_derived_seed():
    import random

    stream = RngFactory(42).stream("fault:a:drop")
    reference = random.Random(GOLDEN[(42, "fault:a:drop")])
    assert [stream.random() for _ in range(5)] == [
        reference.random() for _ in range(5)
    ]


def test_fork_uses_fork_prefixed_label():
    fork = RngFactory(7).fork("child")
    assert fork.root_seed == GOLDEN[(7, "fork:child")]
