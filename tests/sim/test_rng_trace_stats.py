"""Tests for repro.sim.rng, trace, and stats."""

import pytest

from repro.core.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory, derive_seed
from repro.sim.stats import Counter, RunningStats, ThroughputMeter
from repro.sim.trace import Trace


class TestRng:
    def test_derive_seed_deterministic(self):
        assert derive_seed(1, "loss") == derive_seed(1, "loss")

    def test_derive_seed_varies_by_label(self):
        assert derive_seed(1, "loss") != derive_seed(1, "backoff")

    def test_derive_seed_varies_by_root(self):
        assert derive_seed(1, "loss") != derive_seed(2, "loss")

    def test_streams_independent(self):
        factory = RngFactory(0)
        a = [factory.stream("a").random() for _ in range(5)]
        b = [factory.stream("b").random() for _ in range(5)]
        assert a != b

    def test_stream_reused(self):
        factory = RngFactory(0)
        assert factory.stream("a") is factory.stream("a")

    def test_same_label_same_sequence_across_factories(self):
        xs = [RngFactory(9).stream("link").random() for _ in range(3)]
        ys = [RngFactory(9).stream("link").random() for _ in range(3)]
        # fresh factory, fresh stream: first draws match
        assert xs[0] == ys[0]

    def test_fork_independent(self):
        factory = RngFactory(0)
        child = factory.fork("child")
        assert factory.stream("x").random() != child.stream("x").random()


class TestTrace:
    def test_log_uses_sim_time(self):
        sim = Simulator()
        trace = Trace(sim)
        sim.schedule(1.5, lambda: trace.log("tx", size=10))
        sim.run_until_idle()
        assert trace.events[0].time == 1.5

    def test_log_without_sim(self):
        trace = Trace()
        trace.log("x")
        assert trace.events[0].time == 0.0

    def test_event_getitem(self):
        trace = Trace()
        trace.log("tx", size=10)
        assert trace.events[0]["size"] == 10
        with pytest.raises(KeyError):
            trace.events[0]["nope"]

    def test_event_get_default(self):
        trace = Trace()
        trace.log("tx")
        assert trace.events[0].get("size", 0) == 0

    def test_filter_by_category(self):
        trace = Trace()
        trace.log("tx", n=1)
        trace.log("rx", n=2)
        trace.log("tx", n=3)
        assert [e["n"] for e in trace.filter("tx")] == [1, 3]

    def test_filter_by_predicate(self):
        trace = Trace()
        for n in range(5):
            trace.log("tx", n=n)
        big = trace.filter("tx", predicate=lambda e: e["n"] >= 3)
        assert [e["n"] for e in big] == [3, 4]

    def test_count_and_categories(self):
        trace = Trace()
        trace.log("a")
        trace.log("a")
        trace.log("b")
        assert trace.count("a") == 2
        assert trace.categories() == {"a", "b"}

    def test_between(self):
        sim = Simulator()
        trace = Trace(sim)
        for t in (0.5, 1.5, 2.5):
            sim.schedule(t, lambda: trace.log("x"))
        sim.run_until_idle()
        assert len(list(trace.between(1.0, 2.0))) == 1

    def test_clear_and_len(self):
        trace = Trace()
        trace.log("x")
        assert len(trace) == 1
        trace.clear()
        assert len(trace) == 0


class TestStats:
    def test_counter(self):
        c = Counter("drops")
        c.increment()
        c.increment(4)
        assert c.value == 5

    def test_running_stats_empty(self):
        stats = RunningStats()
        assert stats.mean == 0.0
        assert stats.variance == 0.0

    def test_running_stats_values(self):
        stats = RunningStats()
        for v in (1.0, 2.0, 3.0, 4.0):
            stats.add(v)
        assert stats.mean == pytest.approx(2.5)
        assert stats.variance == pytest.approx(5.0 / 3.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0

    def test_running_stats_dict(self):
        stats = RunningStats()
        stats.add(2.0)
        d = stats.as_dict()
        assert d["count"] == 1 and d["mean"] == 2.0

    def test_throughput_meter(self):
        meter = ThroughputMeter()
        meter.record(100, time=1.0)
        meter.record(100, time=2.0)
        assert meter.duration == 1.0
        assert meter.throughput_bps() == pytest.approx(1600.0)

    def test_throughput_meter_custom_end(self):
        meter = ThroughputMeter()
        meter.record(100, time=0.0)
        assert meter.throughput_bps(end_time=4.0) == pytest.approx(200.0)

    def test_throughput_meter_empty(self):
        assert ThroughputMeter().throughput_bps() == 0.0


class TestThroughputMeterCorruption:
    def test_first_without_last_raises(self):
        """A meter with a first delivery but no last is corrupt state,
        reported as SimulationError rather than an -O-stripped assert."""
        meter = ThroughputMeter(bytes_delivered=10, first_time=0.0)
        with pytest.raises(SimulationError, match="corrupt"):
            meter.throughput_bps()
