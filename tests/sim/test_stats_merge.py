"""Tests for parallel-merge support on RunningStats."""

import random

import pytest

from repro.sim.stats import RunningStats


def filled(values):
    stats = RunningStats()
    for value in values:
        stats.add(value)
    return stats


class TestMerge:
    def test_merge_equals_single_stream(self):
        rng = random.Random(7)
        values = [rng.gauss(10, 3) for _ in range(200)]
        whole = filled(values)
        merged = filled(values[:70]).merge(filled(values[70:]))
        assert merged.count == whole.count
        assert merged.mean == pytest.approx(whole.mean)
        assert merged.variance == pytest.approx(whole.variance)
        assert merged.minimum == whole.minimum
        assert merged.maximum == whole.maximum

    def test_merge_into_empty_and_from_empty(self):
        stats = filled([1.0, 2.0, 3.0])
        assert RunningStats().merge(stats).as_dict() == stats.as_dict()
        assert filled([1.0, 2.0, 3.0]).merge(RunningStats()).as_dict() == (
            stats.as_dict()
        )

    def test_merge_returns_self(self):
        stats = RunningStats()
        assert stats.merge(filled([5.0])) is stats


class TestFromDict:
    def test_roundtrip_preserves_moments(self):
        stats = filled([3.0, 5.0, 9.0, 1.5])
        rebuilt = RunningStats.from_dict(stats.as_dict())
        assert rebuilt.count == stats.count
        assert rebuilt.mean == pytest.approx(stats.mean)
        assert rebuilt.stddev == pytest.approx(stats.stddev)

    def test_roundtrip_then_merge_matches_direct_merge(self):
        left, right = filled([1.0, 2.0, 4.0]), filled([8.0, 16.0])
        direct = filled([1.0, 2.0, 4.0]).merge(filled([8.0, 16.0]))
        via_snapshot = RunningStats.from_dict(left.as_dict()).merge(
            RunningStats.from_dict(right.as_dict())
        )
        assert via_snapshot.count == direct.count
        assert via_snapshot.mean == pytest.approx(direct.mean)
        assert via_snapshot.stddev == pytest.approx(direct.stddev)

    def test_empty_roundtrip(self):
        rebuilt = RunningStats.from_dict(RunningStats().as_dict())
        assert rebuilt.count == 0
        assert rebuilt.mean == 0.0
