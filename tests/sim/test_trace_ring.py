"""Ring-buffer mode of the simulation flight recorder."""

import pytest

from repro.core.errors import ConfigurationError
from repro.sim import Simulator
from repro.sim.trace import Trace


class TestRingBuffer:
    def test_unbounded_by_default(self):
        trace = Trace()
        for i in range(100):
            trace.log("tick", n=i)
        assert len(trace) == 100
        assert trace.dropped_events == 0
        assert trace.max_events is None

    def test_bounded_keeps_most_recent(self):
        trace = Trace(max_events=3)
        for i in range(10):
            trace.log("tick", n=i)
        assert len(trace) == 3
        assert [e["n"] for e in trace.events] == [7, 8, 9]

    def test_dropped_events_counted(self):
        trace = Trace(max_events=3)
        for i in range(10):
            trace.log("tick", n=i)
        assert trace.dropped_events == 7

    def test_no_drops_until_full(self):
        trace = Trace(max_events=5)
        for i in range(5):
            trace.log("tick", n=i)
        assert trace.dropped_events == 0
        trace.log("tick", n=5)
        assert trace.dropped_events == 1

    def test_filtering_still_works_after_wrap(self):
        trace = Trace(max_events=4)
        for i in range(8):
            trace.log("even" if i % 2 == 0 else "odd", n=i)
        assert [e["n"] for e in trace.filter("even")] == [4, 6]
        assert trace.count("odd") == 2
        assert trace.categories() == {"even", "odd"}

    def test_clear_resets_drop_counter(self):
        trace = Trace(max_events=2)
        for i in range(5):
            trace.log("tick", n=i)
        assert trace.dropped_events == 3
        trace.clear()
        assert len(trace) == 0
        assert trace.dropped_events == 0
        trace.log("tick", n=0)
        assert trace.dropped_events == 0

    def test_clock_binding_preserved(self):
        sim = Simulator()
        trace = Trace(sim, max_events=2)
        sim.schedule(1.5, lambda: trace.log("tick", n=0))
        sim.schedule(2.5, lambda: trace.log("tick", n=1))
        sim.schedule(3.5, lambda: trace.log("tick", n=2))
        sim.run()
        assert [e.time for e in trace.events] == [2.5, 3.5]
        assert trace.dropped_events == 1

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_nonpositive_bound_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            Trace(max_events=bad)
