"""Shared paths and helpers for the static-checker tests."""

from pathlib import Path

import pytest

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"


@pytest.fixture
def fixtures() -> Path:
    return FIXTURES


@pytest.fixture
def src_repro() -> Path:
    return SRC_REPRO
