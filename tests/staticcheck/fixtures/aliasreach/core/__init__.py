"""Fixture core layer."""
