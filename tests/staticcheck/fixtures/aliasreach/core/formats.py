"""Header declaration for the alias-reach fixture."""

from repro.core.header import Field, HeaderFormat

TINY_HEADER = HeaderFormat(
    "tiny",
    [
        Field("seq", 16, owner="tiny"),
    ],
)
