"""Fixture transport layer."""
