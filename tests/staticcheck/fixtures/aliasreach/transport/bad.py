"""Deliberate T3 violations hidden behind aliases and dynamic access."""

from typing import Any

from repro.core.pdu import unwrap
from repro.core.sublayer import Sublayer

from ..core.formats import TINY_HEADER


class AliasedSublayer(Sublayer):
    """Reaches foreign state through rebound names, not `self` directly."""

    HEADER = TINY_HEADER

    def from_above(self, sdu: Any, **meta: Any) -> None:
        # `me` is just `self`; the reach is the same.
        me = self
        if me.below.state.window > 0:
            self.send_down(sdu)

    def from_below(self, pdu: Any, **meta: Any) -> None:
        # `port` is the below port; `.state` through it is still a reach.
        port = self.below
        port.state.flush()
        self.deliver_up(pdu)

    def chained(self) -> None:
        # Two rebindings deep: me = self, port = me.below.
        me = self
        port = me.below
        port._buffer.clear()

    def dynamic(self) -> None:
        # getattr with a literal name is statically the same access.
        getattr(self.below, "state").reset()

    def own_state_is_fine(self) -> None:
        # Aliased *own* state writes are not foreign (no violation).
        me = self
        me.state.count = 1


class AugmentedSublayer(Sublayer):
    """Header-field abuse via augmented assignment and .get reads."""

    HEADER = TINY_HEADER

    def from_below(self, pdu: Any, **meta: Any) -> None:
        values, inner = unwrap(pdu, self.name)
        # Augmented assignment to an undeclared field is still a touch.
        values["hops"] -= 1
        self.deliver_up(inner, seq=values.get("seq"))

    def poke_peer(self, peer: Any) -> None:
        # Foreign-state write via augmented assignment.
        peer.state.count += 1
