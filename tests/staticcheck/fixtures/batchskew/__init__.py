"""Static-checker fixture package (never imported, only parsed)."""
