"""Fixture datalink layer."""
