"""Deliberate T2 violation: a batch hook with no scalar partner.

``SkewedFraming`` re-implements the downward transform in
``from_above_batch`` while inheriting ``from_above`` from its base —
the two copies of the framing logic live in different classes and
nothing keeps them in sync.  ``HonestFraming`` shows the accepted
shape: whoever owns the batch transform owns the scalar one too.
"""

from typing import Any, Sequence

from repro.core.sublayer import Sublayer


class HonestFraming(Sublayer):
    """Overrides both sides: the pair stays in one class body."""

    def from_above(self, sdu: Any, **meta: Any) -> None:
        self.send_down(sdu + b"\x7e", **meta)

    def from_above_batch(
        self, sdus: Sequence[Any], metas: Sequence[dict] | None = None
    ) -> None:
        self.send_down_batch([sdu + b"\x7e" for sdu in sdus], metas)


class SkewedFraming(HonestFraming):
    """Overrides only the batch side: the scalar path can drift."""

    def from_above_batch(
        self, sdus: Sequence[Any], metas: Sequence[dict] | None = None
    ) -> None:
        self.send_down_batch([sdu + b"\x7f" for sdu in sdus], metas)

    def from_below_batch(
        self, pdus: Sequence[Any], metas: Sequence[dict] | None = None
    ) -> None:
        self.deliver_up_batch([pdu[:-1] for pdu in pdus], metas)
