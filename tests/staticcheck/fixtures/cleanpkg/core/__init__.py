"""Fixture core layer."""
