"""A well-behaved core layer: declarations the transport fixture uses."""

from repro.core.header import Field, HeaderFormat
from repro.core.interface import Primitive, ServiceInterface

GOOD_HEADER = HeaderFormat(
    "good",
    [
        Field("seq", 16, owner="good"),
        Field("flag", 1, owner="good"),
    ],
)

GOOD_SERVICE = ServiceInterface(
    "good-service",
    [
        Primitive("open", "open a thing"),
        Primitive("push", "push a unit"),
    ],
)
