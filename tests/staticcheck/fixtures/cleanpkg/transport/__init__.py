"""Fixture transport layer."""
