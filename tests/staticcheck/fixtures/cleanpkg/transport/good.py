"""A sublayer that honours T1/T2/T3: every rule passes here."""

from typing import Any

from repro.core.pdu import unwrap
from repro.core.sublayer import Sublayer

from ..core.base import GOOD_HEADER, GOOD_SERVICE


class ProviderSublayer(Sublayer):
    """Offers the narrow good-service interface."""

    SERVICE = GOOD_SERVICE

    def srv_open(self, conn: Any) -> None:
        self.state.opened = True

    def srv_push(self, unit: Any) -> None:
        self.send_down(unit)


class GoodSublayer(Sublayer):
    """Uses only declared primitives and its own header fields."""

    HEADER = GOOD_HEADER

    def on_attach(self) -> None:
        self.state.sent = 0

    def from_above(self, sdu: Any, **meta: Any) -> None:
        self.state.sent = self.state.sent + 1
        self.below.open(meta.get("conn"))
        self.below.push(self.wrap({"seq": self.state.sent, "flag": 1}, sdu))

    def from_below(self, pdu: Any, **meta: Any) -> None:
        values, inner = unwrap(pdu, self.name)
        if values["flag"]:
            self.deliver_up(inner, seq=values["seq"])
