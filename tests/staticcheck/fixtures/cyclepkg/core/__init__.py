"""Fixture core layer."""
