"""Half of an import cycle."""

from .b import b_value


def a_value() -> int:
    return b_value() + 1
