"""The other half of the import cycle."""

from .a import a_value


def b_value() -> int:
    return a_value() - 1
