"""Fixture core layer."""
