"""Header declaration for the foreign-header fixture."""

from repro.core.header import Field, HeaderFormat

NARROW_HEADER = HeaderFormat(
    "narrow",
    [
        Field("seq", 16, owner="narrow"),
    ],
)
