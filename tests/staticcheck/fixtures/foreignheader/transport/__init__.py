"""Fixture transport layer."""
