"""Deliberate T3 violations: touching header fields that are not ours."""

from typing import Any

from repro.core.pdu import unwrap
from repro.core.sublayer import Sublayer

from ..core.formats import NARROW_HEADER


class LeakySublayer(Sublayer):
    """Reads and writes header fields outside its declared format."""

    HEADER = NARROW_HEADER

    def from_above(self, sdu: Any, **meta: Any) -> None:
        # "window" is not a field of NARROW_HEADER.
        self.send_down(self.wrap({"seq": 1, "window": 512}, sdu))

    def from_below(self, pdu: Any, **meta: Any) -> None:
        values, inner = unwrap(pdu, self.name)
        # Neither is "ack" — this is the peer sublayer below us talking.
        if values["ack"]:
            self.deliver_up(inner, seq=values["seq"])

    def mark(self, pdu: Any) -> None:
        # Direct foreign-header write on a Pdu object.
        pdu.header["ecn"] = 1

    def pack_foreign(self) -> Any:
        # Packing an undeclared field into a resolvable format.
        return NARROW_HEADER.pack({"seq": 1, "urgent": 1})
