"""Fixture core layer."""
