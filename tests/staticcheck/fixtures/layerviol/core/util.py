"""A core module that (illegally) depends on the transport layer above."""

from layerviol.transport.widget import WIDGET


def lowest_level_helper() -> str:
    return WIDGET
