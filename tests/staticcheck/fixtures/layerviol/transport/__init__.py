"""Fixture transport layer."""
