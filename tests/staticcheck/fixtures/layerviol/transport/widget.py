"""The higher-layer module the core fixture illegally reaches up to."""

WIDGET = "widget"
