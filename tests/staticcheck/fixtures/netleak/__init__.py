"""Static-checker fixture: a transport sublayer importing the live runtime."""
