"""Stand-in for repro.net.clock: loop state the sublayers must not see."""


class LoopClock:
    pass
