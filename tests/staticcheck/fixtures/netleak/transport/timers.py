"""An ARQ timer path that (illegally) schedules on the live loop.

Sublayer timers go through the ``core`` clock protocol precisely so
the same retransmission logic runs on the simulator heap and on an
asyncio loop; the moment a transport sublayer imports the live
runtime's clock to "schedule directly", the stack is welded to one
runtime and the dependency arrow points upward.
"""

from ..net.clock import LoopClock


def arm_retransmit_timer() -> object:
    return LoopClock()
