"""Static-checker fixture: a protocol layer importing obs internals."""
