"""Stand-in for repro.obs.span: the observer protocol layers must not see."""

SPAN_CATEGORY = "span"


class SpanTracer:
    pass
