"""A transport sublayer that (illegally) reaches into the observer.

Observability must stay one-directional: obs watches the stack through
the hooks in core; the moment a protocol module imports obs internals,
the observer has become a dependency and the layer DAG is violated.
"""

from ..obs.span import SpanTracer


def send_with_tracing() -> object:
    return SpanTracer()
