"""Fixture core layer."""
