"""Fixture transport layer."""
