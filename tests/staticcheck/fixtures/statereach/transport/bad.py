"""Deliberate T3 violations: reaching through the port into foreign state."""

from typing import Any

from repro.core.sublayer import Sublayer


class ReachingSublayer(Sublayer):
    """Commits all three flavours of cross-sublayer state reach."""

    def from_above(self, sdu: Any, **meta: Any) -> None:
        # Reading the provider's private state through the port.
        if self.below.state.window > 0:
            self.send_down(sdu)

    def from_below(self, pdu: Any, **meta: Any) -> None:
        # Skipping a sublayer: adjacency only (T2/T3).
        self.below.below.push(pdu)
        self.deliver_up(pdu)

    def poke_peer(self, peer: Any) -> None:
        # Writing a foreign InstrumentedState.
        peer.state.count = 1
