"""Static-checker fixture: a routing layer importing the fleet tier."""
