"""A routing sublayer that (illegally) consults the fleet above it.

The fleet tier composes router stacks into topologies; the moment a
router sublayer imports fleet state to "shortcut" a routing decision,
the whole-network view has leaked into a per-node layer and the
dependency arrow points upward.
"""

from ..topo.spec import FleetSpec


def route_with_global_view() -> object:
    return FleetSpec()
