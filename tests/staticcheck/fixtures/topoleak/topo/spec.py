"""Stand-in for repro.topo.spec: fleet state the layers must not see."""

FLEET_KIND = "grid"


class FleetSpec:
    pass
