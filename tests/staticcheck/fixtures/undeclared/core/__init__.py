"""Fixture core layer."""
