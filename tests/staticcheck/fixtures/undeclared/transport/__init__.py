"""Fixture transport layer."""
