"""Deliberate T2 violation: invoking a primitive nobody declares."""

from typing import Any

from repro.core.interface import Primitive, ServiceInterface
from repro.core.sublayer import Sublayer


class SmallProvider(Sublayer):
    SERVICE = ServiceInterface(
        "small-service",
        [
            Primitive("open", "the one declared primitive"),
        ],
    )

    def srv_open(self, conn: Any) -> None:
        self.state.opened = True


class OverreachingSublayer(Sublayer):
    """Calls a port primitive no ServiceInterface in the corpus declares."""

    def from_above(self, sdu: Any, **meta: Any) -> None:
        self.below.open(meta.get("conn"))
        self.below.frobnicate(sdu)  # undeclared: BoundPort would reject this
