"""Fixture core layer."""
