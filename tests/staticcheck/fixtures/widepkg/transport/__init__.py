"""Fixture transport layer."""
