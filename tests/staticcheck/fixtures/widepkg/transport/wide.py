"""Deliberate T2 warning: a service interface that is anything but narrow."""

from repro.core.interface import Primitive, ServiceInterface
from repro.core.sublayer import Sublayer


class WideProvider(Sublayer):
    SERVICE = ServiceInterface(
        "wide-service",
        [
            Primitive("open", ""),
            Primitive("close", ""),
            Primitive("send", ""),
            Primitive("recv", ""),
            Primitive("peek", ""),
            Primitive("stat", ""),
            Primitive("tune", ""),
            Primitive("drain", ""),
        ],
    )
