"""The T2 batch-parity rule: batch hooks need their scalar partner."""

from repro.staticcheck import run_staticcheck


def test_batch_without_scalar_detected(fixtures):
    report = run_staticcheck(fixtures / "batchskew")
    assert not report.passed
    violations = [v for v in report.violations if v.rule == "batch-parity"]
    # SkewedFraming trips both directions; HonestFraming trips neither.
    assert len(violations) == 2
    assert all("SkewedFraming" in v.message for v in violations)
    assert any("from_above_batch" in v.message for v in violations)
    assert any("from_below_batch" in v.message for v in violations)
    assert all(v.severity == "error" for v in violations)


def test_paired_overrides_pass(fixtures):
    report = run_staticcheck(fixtures / "cleanpkg")
    assert report.result("batch-parity").passed
