"""The ``python -m repro.staticcheck`` entry point."""

import json

from repro.staticcheck.__main__ import main


def test_cli_clean_package_exits_zero(fixtures, capsys):
    assert main([str(fixtures / "cleanpkg")]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s)" in out


def test_cli_violations_exit_one(fixtures, capsys):
    assert main([str(fixtures / "statereach")]) == 1
    out = capsys.readouterr().out
    assert "[state-reach]" in out


def test_cli_json_output(fixtures, capsys):
    assert main(["--format", "json", str(fixtures / "undeclared")]) == 1
    data = json.loads(capsys.readouterr().out)
    assert data["passed"] is False
    assert any(v["rule"] == "undeclared-primitive" for v in data["violations"])


def test_cli_github_output(fixtures, capsys):
    assert main(["--format", "github", str(fixtures / "statereach")]) == 1
    out = capsys.readouterr().out
    assert "::error file=" in out
    assert "title=staticcheck state-reach" in out
    assert out.strip().splitlines()[-1].startswith("::notice title=staticcheck::")


def test_cli_github_output_clean(fixtures, capsys):
    assert main(["--format", "github", str(fixtures / "cleanpkg")]) == 0
    out = capsys.readouterr().out.strip()
    assert out.splitlines() == [
        "::notice title=staticcheck::7/7 rules passed — 0 error(s), 0 warning(s)"
    ]


def test_cli_strict_flips_warnings(fixtures, capsys):
    assert main([str(fixtures / "widepkg")]) == 0
    capsys.readouterr()
    assert main(["--strict", str(fixtures / "widepkg")]) == 1


def test_cli_max_width_override(fixtures, capsys):
    assert main(["--max-width", "8", str(fixtures / "widepkg")]) == 0


def test_cli_allow_flag(fixtures, capsys):
    assert (
        main(
            [
                "--allow",
                "layerviol.core -> layerviol.transport",
                str(fixtures / "layerviol"),
            ]
        )
        == 0
    )


def test_cli_usage_error_on_missing_package(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert "error:" in capsys.readouterr().err


def test_cli_self_check(src_repro, capsys):
    assert main([str(src_repro)]) == 0
