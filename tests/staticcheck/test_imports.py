"""The T1 static rules: layer ordering and import cycles."""

from repro.staticcheck import (
    StaticCheckConfig,
    check_import_cycles,
    check_layer_order,
    collect_imports,
    load_package,
    run_staticcheck,
)


def test_clean_fixture_passes(fixtures):
    report = run_staticcheck(fixtures / "cleanpkg")
    assert report.passed
    assert report.violations == []


def test_layer_order_violation_detected(fixtures):
    report = run_staticcheck(fixtures / "layerviol")
    assert not report.passed
    result = report.result("layer-order")
    assert not result.passed
    [violation] = [v for v in report.violations if v.rule == "layer-order"]
    assert violation.module == "layerviol.core.util"
    assert "layerviol.transport.widget" in violation.message
    assert violation.line > 0


def test_layer_order_allowlist_exempts(fixtures):
    config = StaticCheckConfig(
        allowlist=frozenset({"layerviol.core.util -> layerviol.transport"})
    )
    report = run_staticcheck(fixtures / "layerviol", config)
    assert report.passed


def test_allowlist_prefix_matches_whole_packages(fixtures):
    config = StaticCheckConfig(
        allowlist=frozenset({"layerviol.core -> layerviol.transport"})
    )
    report = run_staticcheck(fixtures / "layerviol", config)
    assert report.passed


def test_import_cycle_detected(fixtures):
    report = run_staticcheck(fixtures / "cyclepkg")
    assert not report.passed
    result = report.result("import-cycle")
    assert not result.passed
    [violation] = [v for v in report.violations if v.rule == "import-cycle"]
    assert "cyclepkg.core.a" in violation.message
    assert "cyclepkg.core.b" in violation.message


def test_collect_imports_resolves_relative_and_absolute(fixtures):
    corpus = load_package(fixtures / "cleanpkg")
    edges = collect_imports(corpus)
    pairs = {(e.importer, e.imported) for e in edges}
    # relative: transport/good.py does `from ..core.base import ...`
    assert ("cleanpkg.transport.good", "cleanpkg.core.base") in pairs
    # imports that leave the corpus (repro.*) must not create edges
    assert all(imported.startswith("cleanpkg") for _, imported in pairs)


def test_passes_are_independent(fixtures):
    """Cycle checking is not confused by a layer violation and vice versa."""
    corpus = load_package(fixtures / "layerviol")
    edges = collect_imports(corpus)
    assert check_import_cycles(corpus, edges) == []
    config = StaticCheckConfig(allowlist=frozenset())
    assert check_layer_order(corpus, edges, config) != []
