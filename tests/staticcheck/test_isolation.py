"""The T3 static rules: state reach and foreign header fields."""

from repro.staticcheck import run_staticcheck


def test_state_reach_detects_all_three_flavours(fixtures):
    report = run_staticcheck(fixtures / "statereach")
    assert not report.passed
    violations = [v for v in report.violations if v.rule == "state-reach"]
    messages = "\n".join(v.message for v in violations)
    assert len(violations) == 3
    assert "self.below.state" in messages
    assert "self.below.below" in messages
    assert "peer.state.count" in messages
    assert all(v.severity == "error" for v in violations)


def test_own_state_writes_are_not_flagged(fixtures):
    report = run_staticcheck(fixtures / "cleanpkg")
    assert [v for v in report.violations if v.rule == "state-reach"] == []


def test_foreign_header_fields_detected(fixtures):
    report = run_staticcheck(fixtures / "foreignheader")
    assert not report.passed
    violations = [
        v for v in report.violations if v.rule == "foreign-header-field"
    ]
    flagged = {m for v in violations for m in ("window", "ack", "ecn", "urgent")
               if repr(m) in v.message}
    assert flagged == {"window", "ack", "ecn", "urgent"}
    # the declared field never trips the rule
    assert not any("'seq'" in v.message for v in violations)


def test_own_header_fields_are_not_flagged(fixtures):
    report = run_staticcheck(fixtures / "cleanpkg")
    assert [
        v for v in report.violations if v.rule == "foreign-header-field"
    ] == []


def test_state_reach_through_aliases(fixtures):
    report = run_staticcheck(fixtures / "aliasreach")
    assert not report.passed
    violations = [v for v in report.violations if v.rule == "state-reach"]
    messages = "\n".join(v.message for v in violations)
    # me = self; me.below.state ...
    assert "me.below.state" in messages
    # port = self.below; port.state ...
    assert "port.state" in messages
    # me = self; port = me.below; port._buffer (chained rebinding)
    assert "port._buffer" in messages
    # getattr(self.below, "state") with a literal name
    assert "getattr(self.below, 'state')" in messages
    # peer.state.count += 1 (augmented foreign-state write)
    assert "peer.state.count" in messages
    # aliased *own* state write is not foreign
    assert "me.state.count" not in messages


def test_augmented_assignment_to_foreign_header_field(fixtures):
    report = run_staticcheck(fixtures / "aliasreach")
    violations = [
        v for v in report.violations if v.rule == "foreign-header-field"
    ]
    messages = "\n".join(v.message for v in violations)
    # values["hops"] -= 1 on an unwrap() result
    assert "'hops'" in messages
    # declared field read via .get() stays clean
    assert "'seq'" not in messages
