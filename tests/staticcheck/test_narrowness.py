"""The T2 static rules: undeclared primitives and interface width."""

from repro.staticcheck import StaticCheckConfig, run_staticcheck


def test_undeclared_primitive_detected(fixtures):
    report = run_staticcheck(fixtures / "undeclared")
    assert not report.passed
    violations = [
        v for v in report.violations if v.rule == "undeclared-primitive"
    ]
    assert len(violations) == 1
    assert "frobnicate" in violations[0].message
    # the declared primitive is fine
    assert not any("open" in v.message for v in violations)


def test_interface_width_is_a_warning(fixtures):
    report = run_staticcheck(fixtures / "widepkg")
    violations = [v for v in report.violations if v.rule == "interface-width"]
    assert len(violations) == 1
    assert violations[0].severity == "warning"
    assert "wide-service" in violations[0].message
    # warnings do not fail the run...
    assert report.passed
    assert report.errors == []
    assert len(report.warnings) == 1


def test_interface_width_fails_under_strict(fixtures):
    report = run_staticcheck(
        fixtures / "widepkg", StaticCheckConfig(strict=True)
    )
    assert not report.passed
    assert not report.result("interface-width").passed


def test_width_threshold_is_configurable(fixtures):
    report = run_staticcheck(
        fixtures / "widepkg", StaticCheckConfig(max_interface_width=8)
    )
    assert [v for v in report.violations if v.rule == "interface-width"] == []
