"""The live-runtime tier: hosts every stack, imported by none of them."""

from repro.staticcheck import DEFAULT_LAYERS, run_staticcheck


def test_net_registered_on_the_top_tier():
    assert DEFAULT_LAYERS["net"] > max(
        tier
        for name, tier in DEFAULT_LAYERS.items()
        if name not in ("net", "topo")
    )


def test_transport_module_importing_net_is_flagged(fixtures):
    report = run_staticcheck(fixtures / "netleak")
    assert not report.passed
    [violation] = [v for v in report.violations if v.rule == "layer-order"]
    assert violation.module == "netleak.transport.timers"
    assert "netleak.net.clock" in violation.message
    assert violation.line > 0


def test_repro_itself_keeps_net_on_top(src_repro):
    # The real package must satisfy the rule the fixture violates: net
    # imports compose/transport/obs freely (always deferring transport
    # imports into functions only for cycle hygiene, not legality),
    # and no protocol or substrate layer imports net back — stacks see
    # the live runtime only through the core clock protocol and the
    # on_transmit hook.
    report = run_staticcheck(src_repro)
    assert report.passed, [str(v) for v in report.violations]
