"""The obs tier: observable by all, imported by none of the layers."""

from repro.staticcheck import DEFAULT_LAYERS, run_staticcheck


def test_obs_registered_above_every_protocol_layer():
    # Only the telemetry consumers — the fault-injection harness and
    # the runtime orchestrators built on it (topo, net) — sit above
    # obs; every protocol and substrate layer stays strictly below.
    assert DEFAULT_LAYERS["obs"] > max(
        tier
        for name, tier in DEFAULT_LAYERS.items()
        if name not in ("obs", "faults", "topo", "net")
    )


def test_faults_registered_above_every_stack_layer():
    assert DEFAULT_LAYERS["faults"] > max(
        tier
        for name, tier in DEFAULT_LAYERS.items()
        if name not in ("faults", "topo", "net")
    )


def test_protocol_module_importing_obs_is_flagged(fixtures):
    report = run_staticcheck(fixtures / "obsleak")
    assert not report.passed
    [violation] = [v for v in report.violations if v.rule == "layer-order"]
    assert violation.module == "obsleak.transport.sender"
    assert "obsleak.obs.span" in violation.message
    assert violation.line > 0


def test_repro_itself_keeps_obs_out_of_the_layers(src_repro):
    # The real package must satisfy the rule the fixture violates: obs
    # imports core/sim freely, nothing imports obs back.
    report = run_staticcheck(src_repro)
    assert report.passed, [str(v) for v in report.violations]
