"""StaticReport: shared CheckResult shape, emitters, and require()."""

import json

import pytest

from repro.core import litmus
from repro.core.errors import LitmusFailure
from repro.core.report import CheckResult, Report
from repro.staticcheck import StaticReport, Violation, build_report
from repro.staticcheck.report import ALL_RULES, ERROR, WARNING


def _violation(rule="state-reach", severity=ERROR, line=7):
    return Violation(
        rule=rule,
        severity=severity,
        module="pkg.mod",
        path="pkg/mod.py",
        line=line,
        message="something reached somewhere",
    )


def test_static_report_shares_litmus_shape():
    """Static and runtime reports are the same core types (ISSUE: CI and
    tests consume the same output)."""
    assert issubclass(StaticReport, Report)
    assert issubclass(litmus.LitmusReport, Report)
    assert issubclass(litmus.TestResult, CheckResult)
    # the litmus API is preserved through the refactor
    result = litmus.TestResult("T1", True)
    assert result.test == "T1" and result.name == "T1"


def test_build_report_covers_every_rule():
    report = build_report([], checked_modules=3)
    assert [r.name for r in report.results] == [rule for rule, _ in ALL_RULES]
    assert report.passed
    for result in report.results:
        assert result.metrics["checked_modules"] == 3
        assert result.metrics["litmus"] in ("T1", "T2", "T3")


def test_errors_fail_warnings_do_not():
    report = build_report(
        [_violation(), _violation("interface-width", WARNING)],
        checked_modules=1,
    )
    assert not report.result("state-reach").passed
    assert report.result("interface-width").passed
    assert not report.passed


def test_strict_promotes_warnings():
    report = build_report(
        [_violation("interface-width", WARNING)], checked_modules=1, strict=True
    )
    assert not report.result("interface-width").passed


def test_json_emitter_round_trips():
    report = build_report([_violation()], checked_modules=1)
    data = json.loads(report.to_json())
    assert data["passed"] is False
    assert {r["name"] for r in data["results"]} == {r for r, _ in ALL_RULES}
    [violation] = data["violations"]
    assert violation["rule"] == "state-reach"
    assert violation["line"] == 7


def test_text_emitter_lists_violations_then_summary():
    report = build_report([_violation()], checked_modules=1)
    text = report.text()
    assert "pkg/mod.py:7: error: [state-reach]" in text
    assert "state-reach: FAIL" in text
    assert "1 error(s), 0 warning(s)" in text


def test_require_raises_like_litmus():
    report = build_report([_violation()], checked_modules=1)
    with pytest.raises(LitmusFailure) as excinfo:
        report.require()
    assert excinfo.value.test == "state-reach"
    build_report([], checked_modules=1).require()  # clean: no raise


def test_violations_are_sorted_and_deterministic():
    violations = [_violation(line=9), _violation(line=2)]
    report = build_report(violations, checked_modules=1)
    assert [v.line for v in report.violations] == [2, 9]
