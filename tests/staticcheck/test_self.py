"""The repository is its own test corpus: src/repro must check clean."""

from repro.staticcheck import (
    StaticCheckConfig,
    load_package,
    build_model,
    run_staticcheck,
)


def test_repo_source_is_statically_clean(src_repro):
    report = run_staticcheck(src_repro)
    assert report.errors == [], report.text()
    assert report.warnings == [], report.text()
    assert report.passed


def test_self_check_is_not_vacuous(src_repro):
    """The model must actually see the repo's sublayers and interfaces —
    a pass over an empty model would prove nothing."""
    corpus = load_package(src_repro)
    model = build_model(corpus)
    sublayers = {d.name for d in model.sublayer_classes()}
    assert {"RdSublayer", "CmSublayer", "OsrSublayer", "DmSublayer"} <= sublayers
    assert len(sublayers) >= 15
    assert {"rd-service", "cm-service", "dm-service"} <= {
        d.name for d in model.interfaces
    }
    assert {"open", "listen", "send", "close"} <= model.declared_primitives()
    header, known = model.effective_header(model.classes["RdSublayer"])
    assert known and header is not None
    assert "sack_left" in header.fields
    # inherited HEADER resolution (TimerCmSublayer subclasses CmSublayer)
    header, known = model.effective_header(model.classes["TimerCmSublayer"])
    assert known and header is not None and header.name == "cm"
    # the shim is recognised (and exempted from foreign-header-field)
    assert model.is_shim(model.classes["Rfc793Shim"])


def test_default_allowlist_is_load_bearing(src_repro):
    """Dropping the allowlist must surface the documented exceptions —
    proving the layer-order rule actually inspects the real code."""
    report = run_staticcheck(
        src_repro, StaticCheckConfig(allowlist=frozenset())
    )
    offenders = {
        v.module for v in report.violations if v.rule == "layer-order"
    }
    assert offenders == {
        "repro.datalink.stacks",
        "repro.network.topology",
        "repro.datalink.framing.lemmas",
        "repro.transport.sublayered.host",
        "repro.transport.quic.host",
    }
