"""The fleet tier: composes every layer, imported by none of them."""

from repro.staticcheck import DEFAULT_LAYERS, run_staticcheck


def test_topo_registered_above_everything():
    # The live runtime (net) is topo's peer: both orchestrate whole
    # stacks and sit together on the top tier.
    assert DEFAULT_LAYERS["topo"] == DEFAULT_LAYERS["net"]
    assert DEFAULT_LAYERS["topo"] > max(
        tier
        for name, tier in DEFAULT_LAYERS.items()
        if name not in ("topo", "net")
    )


def test_routing_module_importing_topo_is_flagged(fixtures):
    report = run_staticcheck(fixtures / "topoleak")
    assert not report.passed
    [violation] = [v for v in report.violations if v.rule == "layer-order"]
    assert violation.module == "topoleak.network.routing"
    assert "topoleak.topo.spec" in violation.message
    assert violation.line > 0


def test_repro_itself_keeps_topo_on_top(src_repro):
    # The real package must satisfy the rule the fixture violates:
    # topo imports compose/network/par/obs/faults freely, nothing
    # below it imports topo back.
    report = run_staticcheck(src_repro)
    assert report.passed, [str(v) for v in report.violations]
