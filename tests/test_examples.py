"""Smoke tests: every shipped example runs to completion and prints
its success markers.  Keeps the examples from rotting as the library
evolves."""

import contextlib
import io
import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

CASES = [
    ("quickstart.py", ["intact", "T3: PASS"]),
    ("verified_framing.py", ["ALL PROVED", "counterexample", "delivered 20/20"]),
    ("custom_congestion.py", ["intact=True", "IDENTICAL"]),
    ("interop_shim.py", ["SYN", "200 OK"]),
    ("routed_network.py", ["converged", "rerouted"]),
    ("wireless_mac.py", ["everyone eventually heard everything: True"]),
    ("quic_streams.py", ["intact", "plaintext leaks on the wire: 0"]),
]


@pytest.mark.parametrize("script,markers", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, markers):
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    output = buffer.getvalue()
    for marker in markers:
        assert marker in output, f"{script}: missing {marker!r} in output"
