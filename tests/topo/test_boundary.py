"""Shard-boundary cases: the lookahead horizon and same-instant ranks.

The conservative window is half-open ``[L, L + Δ)``.  A packet sent at
exactly ``L`` arrives at exactly ``L + Δ`` — the horizon itself — and
must be deferred to the *next* window, not executed early and not
dropped.  These tests construct that case exactly and check the
sharded execution still matches the serial ground truth event for
event.
"""

from repro.topo.runner import _run_serial, _run_windows_inprocess
from repro.topo.spec import FleetSpec
from repro.topo.traffic import Flow

DELAY = 0.005


def line(regions):
    nodes = tuple(sorted(n for region in regions for n in region))
    edges = tuple((n, n + 1) for n in nodes[:-1])
    return FleetSpec(
        name="line",
        nodes=nodes,
        edges=edges,
        regions=regions,
        link_delay=DELAY,
    )


def run_both(spec, plan):
    serial = _run_serial(spec, "serial", "static", plan, None, None)
    sharded = _run_windows_inprocess(spec, "static", plan, None, None)
    assert serial.deliveries == sharded.deliveries
    assert serial.merged_snapshot() == sharded.merged_snapshot()
    return serial, sharded


def test_arrival_exactly_at_horizon_is_deferred_not_dropped():
    # Send at t=0 (the first window's lower bound L): the cross-region
    # arrival lands at L + Δ, exactly the first horizon.
    spec = line(((1,), (2,)))
    plan = [Flow(index=0, src=1, dst=2, start=0.0, packets=1, interval=0.01)]
    serial, sharded = run_both(spec, plan)
    assert len(sharded.deliveries) == 1
    assert sharded.deliveries[0]["t"] == DELAY
    # Window 1 executed only the send; the horizon event needed window 2.
    assert sharded.extras["windows"] == 2


def test_every_hop_lands_on_a_horizon():
    # 1 -> 2 -> 3 with the region cut between 2 and 3: the intra-region
    # hop arrives exactly at window 1's horizon, the cross-region hop
    # exactly at window 2's.  Three windows, no losses.
    spec = line(((1, 2), (3,)))
    plan = [Flow(index=0, src=1, dst=3, start=0.0, packets=1, interval=0.01)]
    serial, sharded = run_both(spec, plan)
    assert len(sharded.deliveries) == 1
    assert sharded.deliveries[0]["t"] == 2 * DELAY
    assert sharded.extras["windows"] == 3


def test_same_instant_arrivals_execute_in_rank_order():
    # Packets from nodes 1 and 3 arrive at node 2 at the same instant.
    # The plan deliberately schedules 3->2 *first*, so insertion order
    # disagrees with rank order: only the (send_time, link) rank keeps
    # serial and sharded identical.
    spec = line(((1,), (2,), (3,)))
    plan = [
        Flow(index=0, src=3, dst=2, start=0.0, packets=1, interval=0.01),
        Flow(index=1, src=1, dst=2, start=0.0, packets=1, interval=0.01),
    ]
    serial, sharded = run_both(spec, plan)
    assert [d["src"] for d in serial.deliveries] == [1, 3]


def test_stream_of_boundary_packets_keeps_order():
    # Back-to-back packets with interval == Δ: every send sits on a
    # window bound and every arrival on a horizon.
    spec = line(((1,), (2,)))
    plan = [Flow(index=0, src=1, dst=2, start=0.0, packets=5, interval=DELAY)]
    serial, sharded = run_both(spec, plan)
    assert [d["ident"] for d in sharded.deliveries] == list(range(5))
    assert [d["t"] for d in sharded.deliveries] == [
        (k + 1) * DELAY for k in range(5)
    ]
