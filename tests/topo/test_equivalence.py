"""Serial == sharded, byte for byte: the conservative-lookahead proof.

Every test compares the three artifact streams — delivery order,
merged metrics snapshot, merged spans — between the serial ground
truth and a sharded execution of the same spec.  Because artifacts are
collected per region in both modes, any divergence in event-execution
order shows up as a diff here.
"""

import json

import pytest

from repro.topo import make_spec, run_fleet, write_artifacts


def artifacts(result):
    return (
        result.deliveries,
        result.merged_snapshot(),
        [span for region in result.regions for span in region["spans"]],
    )


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_sharded_matches_serial_static(shards):
    spec = make_spec("grid", 16, shards=shards, seed=3)
    serial = run_fleet(spec, mode="serial", routing="static", flows=6, packets=5)
    sharded = run_fleet(spec, mode="sharded", routing="static", flows=6, packets=5)
    assert len(serial.deliveries) == 30
    assert artifacts(serial) == artifacts(sharded)


def test_shard_count_does_not_change_behavior():
    # 1, 2, and 4-way partitions of the same graph simulate the same
    # physics: identical metrics and identical timestamped deliveries.
    # (The *order witness* is region-major, so it is only comparable
    # between runs of the same partition — that's the test above.)
    results = [
        run_fleet(
            make_spec("grid", 16, shards=shards, seed=3),
            mode="sharded",
            routing="static",
            flows=6,
            packets=5,
        )
        for shards in (1, 2, 4)
    ]
    base = results[0]
    key = lambda d: (d["t"], d["src"], d["dst"], d["ident"])  # noqa: E731
    for other in results[1:]:
        assert other.merged_snapshot() == base.merged_snapshot()
        assert sorted(other.deliveries, key=key) == sorted(
            base.deliveries, key=key
        )


def test_sharded_matches_serial_protocol():
    spec = make_spec("ring", 8, shards=2, seed=1)
    kwargs = dict(routing="protocol", flows=4, packets=3, duration=40.0)
    serial = run_fleet(spec, mode="serial", **kwargs)
    sharded = run_fleet(spec, mode="sharded", **kwargs)
    assert serial.converged and sharded.converged
    assert serial.deliveries  # traffic actually flowed post-warmup
    assert artifacts(serial) == artifacts(sharded)


def test_forked_workers_match_serial():
    spec = make_spec("grid", 16, shards=2, seed=3)
    serial = run_fleet(spec, mode="serial", routing="static", flows=6, packets=5)
    forked = run_fleet(
        spec, mode="sharded", routing="static", flows=6, packets=5, jobs=2
    )
    assert artifacts(serial) == artifacts(forked)
    if forked.extras.get("workers"):  # fork available on this platform
        assert forked.extras["workers"] == 2


def test_link_cut_applies_identically(tmp_path):
    spec = make_spec("grid", 16, shards=2, seed=3)
    # (7, 8) is a cross-region edge this plan actually routes over.
    cut = (7, 8)
    assert cut in spec.cross_edges()
    changes = [(0.05, cut[0], cut[1], False)]
    kwargs = dict(routing="static", flows=6, packets=5, link_changes=changes)
    serial = run_fleet(spec, mode="serial", **kwargs)
    sharded = run_fleet(spec, mode="sharded", **kwargs)
    assert artifacts(serial) == artifacts(sharded)
    counters = serial.merged_snapshot()["counters"]
    a, b = cut
    assert (
        counters.get(f"fleetlink/{a}->{b}/dropped_cut", 0)
        + counters.get(f"fleetlink/{b}->{a}/dropped_cut", 0)
        > 0
    )


def test_written_artifacts_are_byte_identical(tmp_path):
    spec = make_spec("grid", 16, shards=2, seed=3)
    kwargs = dict(routing="static", flows=6, packets=5)
    serial_dir = tmp_path / "serial"
    sharded_dir = tmp_path / "sharded"
    write_artifacts(run_fleet(spec, mode="serial", **kwargs), serial_dir)
    write_artifacts(run_fleet(spec, mode="sharded", **kwargs), sharded_dir)
    for name in ("deliveries.jsonl", "metrics.json", "spans.jsonl"):
        assert (serial_dir / name).read_bytes() == (sharded_dir / name).read_bytes()
    # summary.json legitimately differs (the mode field) — nothing else.
    serial_summary = json.loads((serial_dir / "summary.json").read_text())
    sharded_summary = json.loads((sharded_dir / "summary.json").read_text())
    serial_summary.pop("mode"), sharded_summary.pop("mode")
    assert serial_summary == sharded_summary


def test_merged_spans_pass_trace_invariants(tmp_path):
    from repro.obs.export import load_jsonl

    spec = make_spec("grid", 16, shards=2, seed=3)
    result = run_fleet(spec, mode="sharded", routing="static", flows=6, packets=5)
    paths = write_artifacts(result, tmp_path)
    spans = load_jsonl(paths["spans"])
    assert len(spans) == len(result.deliveries)
    sids = [span["sid"] for span in spans]
    assert len(set(sids)) == len(sids)  # merge_jsonl rebased them
