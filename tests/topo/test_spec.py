"""Topology generators, region partitions, and the FIB oracle."""

import pytest

from repro.core.errors import ConfigurationError
from repro.topo import (
    KINDS,
    FleetSpec,
    fat_tree,
    grid,
    make_spec,
    random_graph,
    ring,
    star,
    static_fibs,
)
from repro.topo.spec import adjacency, bfs_distances, iface_index, link_id


def test_star_shape():
    nodes, edges = star(5)
    assert len(nodes) == 5
    assert len(edges) == 4
    assert all(a == 1 for a, _ in edges)


def test_ring_shape():
    nodes, edges = ring(6)
    assert len(edges) == 6
    adj = adjacency(nodes, edges)
    assert all(len(adj[n]) == 2 for n in nodes)


def test_grid_shape():
    nodes, edges = grid(3, 4)
    assert len(nodes) == 12
    # rows*(cols-1) + (rows-1)*cols internal edges
    assert len(edges) == 3 * 3 + 2 * 4


def test_fat_tree_k4():
    nodes, edges = fat_tree(4)
    # 4 cores + 4 pods x (2 agg + 2 edge + 4 hosts) = 36
    assert len(nodes) == 36


def test_random_graph_is_seeded_and_connected():
    a = random_graph(24, 4, seed=9)
    b = random_graph(24, 4, seed=9)
    assert a == b
    assert random_graph(24, 4, seed=10) != a
    spec = make_spec("random", 24, seed=9)
    assert len(bfs_distances(spec, spec.nodes[0])) == len(spec.nodes)


@pytest.mark.parametrize("kind", KINDS)
def test_make_spec_every_kind_is_connected(kind):
    spec = make_spec(kind, 20, shards=2, seed=1)
    assert len(bfs_distances(spec, spec.nodes[0])) == len(spec.nodes)
    assert spec.shards == 2


def test_regions_partition_the_nodes():
    spec = make_spec("grid", 16, shards=4)
    seen = [n for region in spec.regions for n in region]
    assert sorted(seen) == sorted(spec.nodes)
    assert len(spec.regions) == 4
    assert all(spec.region_of(n) is not None for n in spec.nodes)


def test_cross_edges_span_regions():
    spec = make_spec("grid", 16, shards=2)
    for a, b in spec.cross_edges():
        assert spec.region_of(a) != spec.region_of(b)


def test_static_fibs_follow_shortest_paths():
    spec = make_spec("grid", 16)
    fibs = static_fibs(spec)
    for dst in spec.nodes:
        dist = bfs_distances(spec, dst)
        for node in spec.nodes:
            if node == dst:
                continue
            hop = fibs[node][dst]
            assert dist[hop] == dist[node] - 1


def test_iface_index_orders_neighbors_by_address():
    spec = make_spec("ring", 4)
    index = iface_index(spec)
    adj = adjacency(spec.nodes, spec.edges)
    for node in spec.nodes:
        assert [index[(node, p)] for p in adj[node]] == list(range(len(adj[node])))


def test_link_id_is_direction_distinct():
    spec = make_spec("ring", 4)
    ids = {link_id(spec, a, b) for a, b in spec.edges}
    ids |= {link_id(spec, b, a) for a, b in spec.edges}
    assert len(ids) == 2 * len(spec.edges)


def test_spec_validates_unknown_region_node():
    with pytest.raises(ConfigurationError):
        FleetSpec(
            name="bad",
            nodes=(1, 2),
            edges=((1, 2),),
            regions=((1,), (3,)),
        )
