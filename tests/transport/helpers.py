"""Shared builders for transport tests: host pairs over impaired links."""

from __future__ import annotations

import random
from typing import Any

from repro.sim import DuplexLink, LinkConfig, Simulator
from repro.transport import (
    MonolithicTcpHost,
    Rfc793Shim,
    SublayeredTcpHost,
    TcpConfig,
)


def make_pair(
    kind_a: str = "sub",
    kind_b: str = "sub",
    loss: float = 0.0,
    duplicate: float = 0.0,
    reorder_jitter: float = 0.0,
    delay: float = 0.02,
    rate_bps: float = 8_000_000,
    seed: int = 1,
    config: TcpConfig | None = None,
    config_b: TcpConfig | None = None,
    **host_kwargs: Any,
):
    """Two TCP hosts ('sub', 'sub+shim', or 'mono') joined by a link."""
    sim = Simulator()
    config = config or TcpConfig(mss=1000)

    def build(kind: str, name: str, cfg: TcpConfig):
        if kind == "mono":
            return MonolithicTcpHost(name, sim.clock(), cfg)
        if kind == "sub":
            return SublayeredTcpHost(name, sim.clock(), cfg, **host_kwargs)
        if kind == "sub+shim":
            return SublayeredTcpHost(
                name, sim.clock(), cfg, shim=Rfc793Shim(), **host_kwargs
            )
        raise ValueError(kind)

    a = build(kind_a, "a", config)
    b = build(kind_b, "b", config_b or config)
    link = DuplexLink(
        sim,
        LinkConfig(
            delay=delay,
            rate_bps=rate_bps,
            loss=loss,
            duplicate=duplicate,
            reorder_jitter=reorder_jitter,
        ),
        rng_forward=random.Random(seed),
        rng_reverse=random.Random(seed + 1),
    )
    link.attach(a, b)
    return sim, a, b, link


def pattern(nbytes: int) -> bytes:
    return bytes(i % 251 for i in range(nbytes))


def transfer(
    sim: Simulator,
    a,
    b,
    nbytes: int = 30_000,
    until: float = 180.0,
    close: bool = True,
    lport: int = 12345,
    rport: int = 80,
):
    """Run a one-way transfer a->b; returns (sent, received, sockets)."""
    b.listen(rport)
    data = pattern(nbytes)
    sock = a.connect(lport, rport)

    def go() -> None:
        sock.send(data)
        if close:
            sock.close()

    sock.on_connect = go
    sim.run(until=until)
    peer = b.socket_for(rport, lport)
    received = peer.bytes_received() if peer is not None else b""
    return data, received, sock, peer
