"""Tests for the timer-based (Watson-style) CM replacement.

The paper's Section 3 names this swap explicitly: "one could in
principle seamlessly replace ... connection management (by a
timer-based scheme [31])".
"""

import random

import pytest

from repro.sim import DuplexLink, LinkConfig, Simulator
from repro.transport import SublayeredTcpHost, TcpConfig, TimerCmSublayer

from .helpers import pattern


def timer_cm_factory(cfg):
    return TimerCmSublayer(
        "cm", handshake_timeout=cfg.rto_initial, quiet_interval=30.0
    )


def make_timer_pair(loss=0.0, seed=1, quiet=30.0, **link_kwargs):
    sim = Simulator()
    cfg = TcpConfig(mss=1000)

    def factory(c):
        return TimerCmSublayer(
            "cm", handshake_timeout=c.rto_initial, quiet_interval=quiet
        )

    a = SublayeredTcpHost("a", sim.clock(), cfg, cm_factory=factory)
    b = SublayeredTcpHost("b", sim.clock(), cfg, cm_factory=factory)
    link = DuplexLink(
        sim,
        LinkConfig(delay=0.02, rate_bps=8_000_000, loss=loss, **link_kwargs),
        rng_forward=random.Random(seed),
        rng_reverse=random.Random(seed + 1),
    )
    link.attach(a, b)
    return sim, a, b


class TestZeroRtt:
    def test_send_immediately_after_connect(self):
        """No handshake round trip: data flows from the first packet."""
        sim, a, b = make_timer_pair()
        b.listen(80)
        sock = a.connect(1000, 80)
        sock.send(b"zero rtt!")  # before any packet has returned
        sim.run(until=10)
        assert b.socket_for(80, 1000).bytes_received() == b"zero rtt!"

    def test_no_handshake_packets_on_wire(self):
        sim, a, b = make_timer_pair()
        kinds = set()
        forward = a.on_transmit

        def tap(unit, **meta):
            cm_part = unit.find("cm")
            if cm_part is not None:
                kinds.add(cm_part.field("kind"))
            forward(unit, **meta)

        a.on_transmit = tap
        b.listen(80)
        sock = a.connect(1000, 80)
        sock.send(pattern(5_000))
        sim.run(until=10)
        from repro.transport.sublayered.headers import CM_HSACK, CM_SYN, CM_SYNACK

        assert not kinds & {CM_SYN, CM_SYNACK, CM_HSACK}

    def test_implicit_passive_open_counted(self):
        sim, a, b = make_timer_pair()
        b.listen(80)
        sock = a.connect(1000, 80)
        sock.send(b"x")
        sim.run(until=10)
        assert b.stack.sublayer("cm").state.snapshot()["implicit_opens"] == 1

    def test_first_data_to_non_listening_port_dropped(self):
        sim, a, b = make_timer_pair()
        sock = a.connect(1000, 99)
        sock.send(b"void")
        sim.run(until=5)
        assert b.stack.sublayer("cm").state.snapshot()["implicit_opens"] == 0


class TestReliability:
    @pytest.mark.parametrize("loss", [0.05, 0.15])
    def test_transfer_under_loss(self, loss):
        sim, a, b = make_timer_pair(loss=loss, seed=3)
        b.listen(80)
        data = pattern(50_000)
        sock = a.connect(1000, 80)
        sock.send(data)
        sock.close()
        sim.run(until=180)
        assert b.socket_for(80, 1000).bytes_received() == data

    def test_bidirectional(self):
        sim, a, b = make_timer_pair(loss=0.08, seed=5)
        b.listen(80)
        up, down = pattern(20_000), bytes(reversed(pattern(20_000)))
        b.on_accept = lambda peer: peer.send(down)
        sock = a.connect(1000, 80)
        sock.send(up)
        sim.run(until=120)
        assert b.socket_for(80, 1000).bytes_received() == up
        assert sock.bytes_received() == down

    def test_duplicate_first_segment_still_exactly_once(self):
        sim, a, b = make_timer_pair(duplicate=0.3, seed=9)
        b.listen(80)
        data = pattern(20_000)
        sock = a.connect(1000, 80)
        sock.send(data)
        sim.run(until=60)
        assert b.socket_for(80, 1000).bytes_received() == data

    def test_close_works(self):
        sim, a, b = make_timer_pair(loss=0.05, seed=2)
        b.listen(80)
        closed = []
        sock = a.connect(1000, 80)
        sock.on_close = lambda: closed.append(1)
        sock.send(b"bye")
        sock.close()
        sim.run(until=30)
        assert closed == [1]


class TestDeltaT:
    def test_idle_state_expires(self):
        sim, a, b = make_timer_pair(quiet=5.0)
        b.listen(80)
        sock = a.connect(1000, 80)
        sock.send(b"ping")
        sim.run(until=2)
        assert (80, 1000) in b.stack.sublayer("cm").state.snapshot()["conns"]
        sim.run(until=30)  # quiet interval passes with no traffic
        assert (80, 1000) not in b.stack.sublayer("cm").state.snapshot()["conns"]
        assert b.stack.sublayer("cm").state.snapshot()["expired"] >= 1

    def test_active_connection_survives(self):
        sim, a, b = make_timer_pair(quiet=3.0)
        b.listen(80)
        sock = a.connect(1000, 80)

        def drip(n=0):
            if n < 10:
                sock.send(bytes([n]))
                sim.schedule(2.0, lambda: drip(n + 1))

        drip()
        sim.run(until=25)
        # steady traffic kept it alive through many quiet intervals
        assert b.socket_for(80, 1000).bytes_received() == bytes(range(10))


class TestSwapIsolation:
    def test_other_sublayers_untouched(self):
        """The C5 claim for a *whole-CM* replacement: RD/DM/OSR state
        vocabularies identical under handshake vs timer CM."""
        from .helpers import make_pair, transfer

        sim, a, b, _ = make_pair("sub", "sub")
        transfer(sim, a, b, nbytes=10_000)
        handshake_vocab = {
            name: a.stack.sublayer(name).state.field_names()
            for name in ("osr", "rd", "dm")
        }

        sim2, c, d = make_timer_pair()
        d.listen(80)
        sock = c.connect(12345, 80)
        sock.send(pattern(10_000))
        sock.close()
        sim2.run(until=60)
        timer_vocab = {
            name: c.stack.sublayer(name).state.field_names()
            for name in ("osr", "rd", "dm")
        }
        assert handshake_vocab == timer_vocab
