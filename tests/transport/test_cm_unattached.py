"""The unattached-CM exception paths.

These used to be ``assert self.below is not None`` — which vanishes
under ``python -O`` and then surfaces as an opaque ``AttributeError``.
They are now :class:`ConfigurationError` with the wiring explained.
"""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.stack import Stack
from repro.transport.sublayered.cm import CmSublayer


def make_solo_cm() -> CmSublayer:
    """A CM wired into a stack with nothing below it (no DM)."""
    cm = CmSublayer("cm")
    Stack("solo", [cm])
    return cm


def test_open_without_dm_below_raises():
    cm = make_solo_cm()
    with pytest.raises(ConfigurationError, match="no port below"):
        cm.srv_open((1, 2))
    assert cm.state.conns == {}


def test_listen_without_dm_below_raises():
    cm = make_solo_cm()
    with pytest.raises(ConfigurationError, match="no port below"):
        cm.srv_listen(80)


def test_flag_sublayer_check_survives_python_dash_o():
    """The check is a real raise, not an assert: compiling with
    optimization on must not remove it (regression guard for the
    whole assert-replacement batch)."""
    import subprocess
    import sys

    code = (
        "from repro.core.stack import Stack\n"
        "from repro.transport.sublayered.cm import CmSublayer\n"
        "from repro.core.errors import ConfigurationError\n"
        "cm = CmSublayer('cm'); Stack('solo', [cm])\n"
        "try:\n"
        "    cm.srv_listen(80)\n"
        "except ConfigurationError:\n"
        "    print('RAISED')\n"
    )
    result = subprocess.run(
        [sys.executable, "-O", "-c", code],
        capture_output=True,
        text=True,
        check=True,
    )
    assert "RAISED" in result.stdout
