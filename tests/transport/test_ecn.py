"""Tests for the ECN path — the paper's "explicit congestion control
notifications like ECN are in the OSR subheader"."""

import random

import pytest

from repro.core.bits import Bits
from repro.sim import DuplexLink, Link, LinkConfig, Simulator
from repro.transport import SublayeredTcpHost, TcpConfig

from .helpers import pattern


def make_ecn_pair(rate_bps=1_500_000, threshold=0.02, seed=1):
    sim = Simulator()
    cfg = TcpConfig(mss=1000)
    a = SublayeredTcpHost("a", sim.clock(), cfg)
    b = SublayeredTcpHost("b", sim.clock(), cfg)
    link = DuplexLink(
        sim,
        LinkConfig(delay=0.02, rate_bps=rate_bps, ecn_threshold=threshold),
        rng_forward=random.Random(seed),
        rng_reverse=random.Random(seed + 1),
    )
    link.attach(a, b)
    return sim, a, b, link


class TestLinkMarking:
    def test_marks_only_under_queueing(self):
        sim, a, b, link = make_ecn_pair(rate_bps=100_000_000)  # no queue
        b.listen(80)
        sock = a.connect(1000, 80)
        sock.on_connect = lambda: sock.send(pattern(30_000))
        sim.run(until=30)
        assert link.forward.stats.ecn_marked == 0

    def test_marks_under_queueing(self):
        sim, a, b, link = make_ecn_pair(rate_bps=1_000_000)
        b.listen(80)
        sock = a.connect(1000, 80)
        sock.on_connect = lambda: sock.send(pattern(100_000))
        sim.run(until=60)
        assert link.forward.stats.ecn_marked > 0

    def test_marking_clones_not_mutates(self):
        """The sender's stored segment must stay unmarked (it may be
        retransmitted through a different path)."""
        from repro.core.header import Field, HeaderFormat
        from repro.core.pdu import Pdu
        from repro.transport.sublayered.headers import OSR_HEADER

        sim = Simulator()
        link = Link(sim, LinkConfig(rate_bps=1000, ecn_threshold=0.0),
                    rng=random.Random(0))
        received = []
        link.connect(lambda u, **m: received.append(u))
        original = Pdu("osr", OSR_HEADER, {"wnd": 100, "ecn": 0}, b"x" * 100)
        link.send(original)   # occupies the serializer
        link.send(original)   # queues: gets marked
        sim.run_until_idle()
        assert original.field("ecn") == 0
        assert received[1].field("ecn") & 1

    def test_non_osr_units_pass_unmarked(self):
        sim = Simulator()
        link = Link(sim, LinkConfig(rate_bps=1000, ecn_threshold=0.0),
                    rng=random.Random(0))
        received = []
        link.connect(lambda u, **m: received.append(u))
        link.send(b"plain" * 40)
        link.send(b"plain" * 40)
        sim.run_until_idle()
        assert received[1] == b"plain" * 40
        assert link.forward.stats.ecn_marked == 0 if hasattr(link, "forward") else True


class TestEndToEnd:
    def test_ecn_cuts_without_loss(self):
        sim, a, b, link = make_ecn_pair()
        b.listen(80)
        data = pattern(150_000)
        sock = a.connect(1000, 80)
        sock.on_connect = lambda: (sock.send(data), sock.close())
        sim.run(until=60)
        assert b.socket_for(80, 1000).bytes_received() == data
        osr_a = a.stack.sublayer("osr").state.snapshot()
        osr_b = b.stack.sublayer("osr").state.snapshot()
        assert link.forward.stats.ecn_marked > 0
        assert osr_b["ecn_echoed"] > 0
        assert osr_a["ecn_cuts"] > 0
        # congestion was handled without a single retransmission
        assert a.stack.sublayer("rd").state.snapshot()["retransmitted"] == 0

    def test_cuts_are_rtt_spaced(self):
        sim, a, b, link = make_ecn_pair()
        b.listen(80)
        sock = a.connect(1000, 80)
        sock.on_connect = lambda: sock.send(pattern(150_000))
        sim.run(until=60)
        osr_a = a.stack.sublayer("osr").state.snapshot()
        osr_b = b.stack.sublayer("osr").state.snapshot()
        # many echoes, far fewer cuts: the per-RTT rate limiter works
        assert osr_a["ecn_cuts"] < osr_b["ecn_echoed"]

    def test_no_ecn_without_threshold(self):
        sim = Simulator()
        cfg = TcpConfig(mss=1000)
        a = SublayeredTcpHost("a", sim.clock(), cfg)
        b = SublayeredTcpHost("b", sim.clock(), cfg)
        DuplexLink(
            sim, LinkConfig(delay=0.02, rate_bps=1_500_000),
            rng_forward=random.Random(1), rng_reverse=random.Random(2),
        ).attach(a, b)
        b.listen(80)
        sock = a.connect(1000, 80)
        sock.on_connect = lambda: sock.send(pattern(100_000))
        sim.run(until=60)
        assert a.stack.sublayer("osr").state.snapshot()["ecn_cuts"] == 0
