"""Interoperability tests (Section 3.1, challenge 2): sublayered TCP
behind the RFC 793 shim talking to the monolithic TCP, and to itself
over the standard wire format."""

import pytest

from repro.transport.rfc793 import TcpSegment

from .helpers import make_pair, pattern, transfer


class TestSubToMono:
    def test_clean_transfer(self):
        sim, a, b, _ = make_pair("sub+shim", "mono")
        data, received, _, _ = transfer(sim, a, b, nbytes=30_000)
        assert received == data

    def test_transfer_under_loss(self):
        sim, a, b, _ = make_pair("sub+shim", "mono", loss=0.1, seed=3)
        data, received, _, _ = transfer(sim, a, b, nbytes=30_000, until=300)
        assert received == data

    def test_wire_carries_standard_segments(self):
        """With the shim, only RFC 793 segments touch the wire."""
        sim, a, b, _ = make_pair("sub+shim", "mono")
        captured = []
        forward = a.on_transmit

        def tap(unit, **meta):
            captured.append(unit)
            forward(unit, **meta)

        a.on_transmit = tap
        transfer(sim, a, b, nbytes=10_000)
        assert captured
        assert all(isinstance(u, TcpSegment) for u in captured)

    def test_mono_peer_reaches_established(self):
        sim, a, b, _ = make_pair("sub+shim", "mono")
        transfer(sim, a, b, nbytes=1_000, close=False)
        peer = b.socket_for(80, 12345)
        assert peer.state == "ESTABLISHED"

    def test_close_propagates_to_mono(self):
        sim, a, b, _ = make_pair("sub+shim", "mono")
        b.listen(80)
        events = []
        b.on_accept = lambda peer: setattr(peer, "on_close", lambda: events.append("fin"))
        sock = a.connect(1000, 80)
        sock.on_connect = lambda: (sock.send(b"bye"), sock.close())
        closed = []
        sock.on_close = lambda: closed.append(1)
        sim.run(until=30)
        assert events == ["fin"]   # mono saw our FIN
        assert closed == [1]       # mono's ack closed us


class TestMonoToSub:
    def test_clean_transfer(self):
        sim, a, b, _ = make_pair("mono", "sub+shim")
        data, received, _, _ = transfer(sim, a, b, nbytes=30_000)
        assert received == data

    def test_transfer_under_loss(self):
        sim, a, b, _ = make_pair("mono", "sub+shim", loss=0.1, seed=5)
        data, received, _, _ = transfer(sim, a, b, nbytes=30_000, until=300)
        assert received == data

    def test_bidirectional_mixed_stacks(self):
        sim, a, b, _ = make_pair("mono", "sub+shim", loss=0.05)
        b.listen(80)
        up, down = pattern(15_000), bytes(reversed(pattern(15_000)))
        sock = a.connect(1000, 80)
        sock.on_connect = lambda: sock.send(up)
        b.on_accept = lambda peer: peer.send(down)
        sim.run(until=200)
        assert b.socket_for(80, 1000).bytes_received() == up
        assert sock.bytes_received() == down

    def test_mono_close_reaches_sub(self):
        sim, a, b, _ = make_pair("mono", "sub+shim")
        b.listen(80)
        events = []
        b.on_accept = lambda peer: setattr(
            peer, "on_peer_close", lambda: events.append("fin")
        )
        sock = a.connect(1000, 80)
        sock.on_connect = lambda: (sock.send(b"done"), sock.close())
        sim.run(until=30)
        assert events == ["fin"]


class TestSubToSubOverStandardWire:
    """Both ends sublayered, both behind shims: the whole conversation
    happens in RFC 793 segments, yet every sublayer stays native."""

    def test_clean_transfer(self):
        sim, a, b, _ = make_pair("sub+shim", "sub+shim")
        data, received, _, _ = transfer(sim, a, b, nbytes=30_000)
        assert received == data

    def test_under_loss(self):
        sim, a, b, _ = make_pair("sub+shim", "sub+shim", loss=0.1, seed=9)
        data, received, _, _ = transfer(sim, a, b, nbytes=30_000, until=300)
        assert received == data

    def test_flow_control_crosses_the_shim(self):
        from repro.transport import TcpConfig

        config = TcpConfig(mss=1000, recv_buffer=4000)
        sim, a, b, _ = make_pair("sub+shim", "mono", config=config)
        b.listen(80)
        accepted = []

        def accept(peer):
            peer.pause_reading()
            accepted.append(peer)

        b.on_accept = accept
        sock = a.connect(1000, 80)
        sock.on_connect = lambda: sock.send(pattern(20_000))
        sim.run(until=20)
        # the mono receiver's advertised window throttled our sender
        assert len(accepted[0].bytes_received()) < 20_000


class TestShimTransparency:
    def test_shim_only_changes_wire_format(self):
        """The interop claim quantified: adding the shim leaves every
        other sublayer's state-field vocabulary untouched."""
        fields = {}
        for label, kinds in (("native", ("sub", "sub")),
                             ("shimmed", ("sub+shim", "sub+shim"))):
            sim, a, b, _ = make_pair(*kinds)
            transfer(sim, a, b, nbytes=10_000)
            fields[label] = {
                name: a.stack.sublayer(name).state.field_names()
                for name in ("osr", "rd", "cm", "dm")
            }
        assert fields["native"] == fields["shimmed"]
