"""Tests for the monolithic (lwIP-style) TCP."""

import pytest

from repro.core.errors import ConnectionError_
from repro.transport import TcpConfig
from repro.transport.isn import CryptoIsn, TimerIsn
from repro.transport.monolithic import pcb as S

from .helpers import make_pair, pattern, transfer


class TestHandshake:
    def test_three_way_handshake(self):
        sim, a, b, _ = make_pair("mono", "mono")
        b.listen(80)
        accepted = []
        b.on_accept = accepted.append
        sock = a.connect(1000, 80)
        connected = []
        sock.on_connect = lambda: connected.append(1)
        sim.run(until=5)
        assert connected == [1]
        assert sock.state == S.ESTABLISHED
        assert len(accepted) == 1
        assert accepted[0].state == S.ESTABLISHED

    def test_syn_retransmitted_under_loss(self):
        sim, a, b, _ = make_pair("mono", "mono", loss=0.6, seed=5)
        b.listen(80)
        sock = a.connect(1000, 80)
        sim.run(until=60)
        assert sock.state == S.ESTABLISHED

    def test_connect_gives_up_on_dead_peer(self):
        sim, a, b, _ = make_pair("mono", "mono", loss=1.0)
        b.listen(80)
        sock = a.connect(1000, 80)
        errors = []
        sock.on_error = errors.append
        sim.run(until=300)
        assert errors == ["connection timed out"]
        assert sock.state == S.CLOSED

    def test_syn_to_closed_port_ignored(self):
        sim, a, b, _ = make_pair("mono", "mono")
        sock = a.connect(1000, 81)  # nobody listens on 81
        sim.run(until=2)
        assert sock.state == S.SYN_SENT

    def test_duplicate_port_pair_rejected(self):
        sim, a, b, _ = make_pair("mono", "mono")
        b.listen(80)
        a.connect(1000, 80)
        with pytest.raises(ConnectionError_):
            a.connect(1000, 80)


class TestTransfer:
    def test_clean_transfer(self):
        sim, a, b, _ = make_pair("mono", "mono")
        data, received, _, _ = transfer(sim, a, b, nbytes=40_000)
        assert received == data

    def test_transfer_under_loss(self):
        sim, a, b, _ = make_pair("mono", "mono", loss=0.1, seed=3)
        data, received, _, _ = transfer(sim, a, b, nbytes=40_000)
        assert received == data

    def test_transfer_under_everything(self):
        sim, a, b, _ = make_pair(
            "mono", "mono", loss=0.12, duplicate=0.05, reorder_jitter=0.01, seed=7
        )
        data, received, _, _ = transfer(sim, a, b, nbytes=40_000, until=400)
        assert received == data

    def test_bidirectional_transfer(self):
        sim, a, b, _ = make_pair("mono", "mono", loss=0.05)
        b.listen(80)
        up = pattern(20_000)
        down = bytes(reversed(pattern(20_000)))
        sock = a.connect(1000, 80)
        sock.on_connect = lambda: sock.send(up)

        def accept(peer):
            peer.send(down)

        b.on_accept = accept
        sim.run(until=120)
        peer = b.socket_for(80, 1000)
        assert peer.bytes_received() == up
        assert sock.bytes_received() == down

    def test_many_small_writes(self):
        sim, a, b, _ = make_pair("mono", "mono")
        b.listen(80)
        sock = a.connect(1000, 80)
        chunks = [bytes([i]) * 17 for i in range(100)]
        sock.on_connect = lambda: [sock.send(c) for c in chunks]
        sim.run(until=60)
        peer = b.socket_for(80, 1000)
        assert peer.bytes_received() == b"".join(chunks)

    def test_send_after_close_rejected(self):
        sim, a, b, _ = make_pair("mono", "mono")
        b.listen(80)
        sock = a.connect(1000, 80)
        outcome = []

        def go():
            sock.close()
            try:
                sock.send(b"late")
            except ConnectionError_:
                outcome.append("rejected")

        sock.on_connect = go
        sim.run(until=10)
        assert outcome == ["rejected"]


class TestRetransmission:
    def test_fast_retransmit_counts(self):
        sim, a, b, _ = make_pair("mono", "mono", loss=0.1, seed=11)
        transfer(sim, a, b, nbytes=60_000)
        snapshot = a.pcb_snapshot(12345, 80)
        # either timer or fast retransmit repaired losses; the stream
        # completed, so *some* recovery machinery ran
        assert b.socket_for(80, 12345).bytes_received() == pattern(60_000)

    def test_rto_backoff_on_dead_link(self):
        sim, a, b, link = make_pair("mono", "mono")
        b.listen(80)
        sock = a.connect(1000, 80)
        sim.run(until=2)
        assert sock.state == S.ESTABLISHED
        # kill the forward direction mid-stream
        link.forward.config.loss = 1.0
        sock.send(b"x" * 5000)
        sim.run(until=30)
        snapshot = a.pcb_snapshot(1000, 80)
        assert snapshot["retransmits"] >= 3
        assert snapshot["rto"] > TcpConfig().rto_initial

    def test_rtt_estimate_converges(self):
        sim, a, b, _ = make_pair("mono", "mono", delay=0.05)
        transfer(sim, a, b, nbytes=60_000, close=False)
        snapshot = a.pcb_snapshot(12345, 80)
        assert snapshot["srtt"] is not None
        assert 0.08 < snapshot["srtt"] < 0.4  # ~2x one-way delay + tx


class TestCongestion:
    def test_slow_start_grows_cwnd(self):
        sim, a, b, _ = make_pair("mono", "mono")
        transfer(sim, a, b, nbytes=60_000, close=False)
        snapshot = a.pcb_snapshot(12345, 80)
        assert snapshot["cwnd"] > TcpConfig().initial_cwnd

    def test_loss_shrinks_ssthresh(self):
        sim, a, b, _ = make_pair("mono", "mono", loss=0.15, seed=9)
        transfer(sim, a, b, nbytes=80_000, close=False, until=120)
        snapshot = a.pcb_snapshot(12345, 80)
        assert snapshot["ssthresh"] < 64 * 1024  # loss forced ssthresh down


class TestFlowControl:
    def test_paused_reader_blocks_sender(self):
        config = TcpConfig(mss=1000, recv_buffer=4000)
        sim, a, b, _ = make_pair("mono", "mono", config=config)
        b.listen(80)
        accepted = []

        def accept(peer):
            peer.pause_reading()
            accepted.append(peer)

        b.on_accept = accept
        sock = a.connect(1000, 80)
        sock.on_connect = lambda: sock.send(pattern(20_000))
        sim.run(until=20)
        peer = accepted[0]
        # the sender must have stopped well short of the full stream
        assert len(peer.bytes_received()) < 20_000

    def test_resume_unblocks_via_window_update(self):
        config = TcpConfig(mss=1000, recv_buffer=4000)
        sim, a, b, _ = make_pair("mono", "mono", config=config)
        b.listen(80)
        accepted = []

        def accept(peer):
            peer.pause_reading()
            accepted.append(peer)

        b.on_accept = accept
        sock = a.connect(1000, 80)
        data = pattern(20_000)
        sock.on_connect = lambda: sock.send(data)
        sim.run(until=10)
        peer = accepted[0]

        def drain():
            peer.resume_reading()
            if len(peer.bytes_received()) < len(data):
                sim.schedule(1.0, drain)

        drain()
        sim.run(until=200)
        assert peer.bytes_received() == data


class TestClose:
    def test_full_close_handshake(self):
        sim, a, b, _ = make_pair("mono", "mono")
        b.listen(80)
        closed = []
        accepted = []

        def accept(peer):
            accepted.append(peer)
            peer.on_close = lambda: peer.close()

        b.on_accept = accept
        sock = a.connect(1000, 80)
        sock.on_connect = lambda: (sock.send(b"bye"), sock.close())
        sim.run(until=30)
        # active closer reaches TIME_WAIT then CLOSED; passive LAST_ACK->CLOSED
        assert sock.state == S.CLOSED
        assert accepted[0].state == S.CLOSED

    def test_half_close_still_receives(self):
        sim, a, b, _ = make_pair("mono", "mono")
        b.listen(80)
        replied = []

        def accept(peer):
            def got_fin():
                peer.send(b"late reply")
                peer.close()

            peer.on_close = got_fin

        b.on_accept = accept
        sock = a.connect(1000, 80)
        sock.on_connect = lambda: sock.close()
        sim.run(until=30)
        assert sock.bytes_received() == b"late reply"


class TestIsnSwap:
    @pytest.mark.parametrize("scheme", [CryptoIsn(), TimerIsn()])
    def test_transfer_with_alternate_isn(self, scheme):
        config = TcpConfig(mss=1000, isn_scheme=scheme)
        sim, a, b, _ = make_pair("mono", "mono", config=config, loss=0.05)
        data, received, _, _ = transfer(sim, a, b, nbytes=20_000)
        assert received == data


class TestEntanglementInstrumentation:
    def test_multiple_subfunctions_touch_shared_pcb(self):
        """The Section 2.3 claim, measured: several subfunction actors
        read/write the same PCB fields during one transfer."""
        sim, a, b, _ = make_pair("mono", "mono", loss=0.05)
        transfer(sim, a, b, nbytes=30_000)
        shared = a.access_log.shared_fields()
        shared_pcb = {f for (t, f), actors in shared.items() if t == "pcb"}
        # the famous ones: the window and sequence state
        assert "snd_una" in shared_pcb or "snd_nxt" in shared_pcb
        actors = a.access_log.actors()
        assert {"cm", "rd", "cc", "flow"} <= actors
