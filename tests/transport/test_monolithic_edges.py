"""Edge-case tests for the monolithic TCP's state machine."""

import pytest

from repro.transport import TcpConfig
from repro.transport.monolithic import pcb as S

from .helpers import make_pair, pattern, transfer


class TestSimultaneousAndOrderedClose:
    def test_ordered_close_reaches_closed_on_both_sides(self):
        sim, a, b, _ = make_pair("mono", "mono")
        b.listen(80)
        b.on_accept = lambda peer: setattr(peer, "on_close", lambda: peer.close())
        sock = a.connect(1000, 80)
        sock.on_connect = lambda: sock.close()
        sim.run(until=30)
        assert sock.state == S.CLOSED

    def test_simultaneous_close(self):
        """Both sides close at once: FIN_WAIT_1 -> CLOSING -> TIME_WAIT."""
        sim, a, b, _ = make_pair("mono", "mono", delay=0.05)
        b.listen(80)
        accepted = []
        b.on_accept = accepted.append
        sock = a.connect(1000, 80)
        sim.run(until=2)
        assert sock.state == S.ESTABLISHED
        # close both ends in the same instant: the FINs cross in flight
        sock.close()
        accepted[0].close()
        sim.run(until=30)
        assert sock.state == S.CLOSED
        assert accepted[0].state == S.CLOSED

    def test_time_wait_reacks_retransmitted_fin(self):
        sim, a, b, _ = make_pair("mono", "mono")
        b.listen(80)
        accepted = []

        def accept(peer):
            accepted.append(peer)
            peer.on_close = lambda: peer.close()

        b.on_accept = accept
        sock = a.connect(1000, 80)
        sock.on_connect = lambda: sock.close()
        sim.run(until=1)
        # while a lingers in TIME_WAIT, replay the peer's FIN at it
        state = sock.state
        if state == S.TIME_WAIT:
            from repro.transport.rfc793 import TcpSegment

            snapshot = a.pcb_snapshot(1000, 80)
            replay = TcpSegment(header={
                "sport": 80, "dport": 1000,
                "seq": (snapshot["rcv_nxt"] - 1) % (1 << 32),
                "ack": snapshot["snd_nxt"] % (1 << 32),
                "ack_flag": 1, "fin": 1,
            })
            sent = {"n": 0}
            a.on_transmit = lambda seg, **m: sent.__setitem__("n", sent["n"] + 1)
            a.receive(replay)
            assert sent["n"] == 1  # re-acked
        sim.run(until=30)
        assert sock.state == S.CLOSED


class TestZeroWindow:
    def test_persist_probe_unblocks_after_resume(self):
        """Sender fills the window of a paused reader, probes through
        the zero window, and completes after resume — no deadlock."""
        config = TcpConfig(mss=1000, recv_buffer=3000)
        sim, a, b, _ = make_pair("mono", "mono", config=config)
        b.listen(80)
        accepted = []

        def accept(peer):
            peer.pause_reading()
            accepted.append(peer)

        b.on_accept = accept
        data = pattern(12_000)
        sock = a.connect(1000, 80)
        sock.on_connect = lambda: sock.send(data)
        sim.run(until=15)
        received_while_paused = len(accepted[0].bytes_received())
        assert received_while_paused < len(data)
        # resume at t=15; the pending probe discovers the open window
        accepted[0].resume_reading()

        def keep_draining():
            accepted[0].resume_reading()
            if len(accepted[0].bytes_received()) < len(data):
                sim.schedule(0.5, keep_draining)

        keep_draining()
        sim.run(until=120)
        assert accepted[0].bytes_received() == data

    def test_probe_counted_as_traffic(self):
        config = TcpConfig(mss=1000, recv_buffer=2000)
        sim, a, b, _ = make_pair("mono", "mono", config=config)
        b.listen(80)
        b.on_accept = lambda peer: peer.pause_reading()
        sock = a.connect(1000, 80)
        sock.on_connect = lambda: sock.send(pattern(10_000))
        before = a.segments_sent
        sim.run(until=30)
        # probes keep flowing during the stall
        assert a.segments_sent > before + 3


class TestMisbehavedPeers:
    def test_ack_beyond_snd_nxt_ignored(self):
        sim, a, b, _ = make_pair("mono", "mono")
        b.listen(80)
        sock = a.connect(1000, 80)
        sim.run(until=2)
        from repro.transport.rfc793 import TcpSegment

        snapshot = a.pcb_snapshot(1000, 80)
        evil = TcpSegment(header={
            "sport": 80, "dport": 1000,
            "seq": snapshot["rcv_nxt"] % (1 << 32),
            "ack": (snapshot["snd_nxt"] + 99999) % (1 << 32),
            "ack_flag": 1,
        })
        a.receive(evil)
        after = a.pcb_snapshot(1000, 80)
        assert after["snd_una"] == snapshot["snd_una"]

    def test_segment_for_unknown_connection_ignored(self):
        sim, a, b, _ = make_pair("mono", "mono")
        from repro.transport.rfc793 import TcpSegment

        stray = TcpSegment(header={
            "sport": 9, "dport": 9, "seq": 1, "ack": 1, "ack_flag": 1,
        })
        a.receive(stray)  # must not raise
        assert a.segments_received == 1

    def test_non_segment_unit_ignored(self):
        sim, a, b, _ = make_pair("mono", "mono")
        a.receive(object())  # e.g. a native sublayered pdu on a mixed wire
        assert a.segments_received == 0

    def test_old_duplicate_data_reacked_not_redelivered(self):
        sim, a, b, _ = make_pair("mono", "mono")
        data, received, sock, peer = transfer(sim, a, b, nbytes=5_000, close=False)
        assert received == data
        from repro.transport.rfc793 import TcpSegment

        snapshot = b.pcb_snapshot(80, 12345)
        old = TcpSegment(
            header={
                "sport": 12345, "dport": 80,
                "seq": (snapshot["irs"] + 1) % (1 << 32),
                "ack": snapshot["snd_nxt"] % (1 << 32),
                "ack_flag": 1, "psh": 1,
            },
            payload=data[:1000],
        )
        b.receive(old)
        assert peer.bytes_received() == data  # nothing duplicated
