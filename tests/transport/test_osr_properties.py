"""Property tests for OSR's reassembly and the QUIC stream sublayer."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from .helpers import make_pair, transfer


class TestOsrReassemblyEndToEnd:
    @given(st.integers(0, 2**31), st.integers(1, 40))
    @settings(max_examples=20, deadline=None)
    def test_any_seed_and_jitter_reassembles(self, seed, jitter_ms):
        """End-to-end property: arbitrary reordering severity and seed
        never break byte-stream integrity."""
        sim, a, b, _ = make_pair(
            "sub", "sub",
            reorder_jitter=jitter_ms / 1000.0,
            seed=seed % 100000,
        )
        data, received, _, _ = transfer(sim, a, b, nbytes=12_000, until=120)
        assert received == data

    @given(st.integers(0, 2**31))
    @settings(max_examples=12, deadline=None)
    def test_loss_duplication_reordering_combined(self, seed):
        sim, a, b, _ = make_pair(
            "sub", "sub",
            loss=0.12, duplicate=0.08, reorder_jitter=0.015,
            seed=seed % 100000,
        )
        data, received, _, _ = transfer(sim, a, b, nbytes=12_000, until=240)
        assert received == data


class TestQuicStreamProperties:
    @given(
        st.lists(
            st.tuples(st.integers(1, 6), st.binary(min_size=1, max_size=400)),
            min_size=1, max_size=12,
        ),
        st.integers(0, 2**31),
    )
    @settings(max_examples=15, deadline=None)
    def test_interleaved_stream_writes_reassemble(self, writes, seed):
        """Arbitrary interleavings of writes across up to 6 streams
        arrive per-stream in order, under loss."""
        from repro.sim import DuplexLink, LinkConfig, Simulator
        from repro.transport.quic import QuicHost

        sim = Simulator()
        a = QuicHost("a", sim.clock())
        b = QuicHost("b", sim.clock())
        DuplexLink(
            sim,
            LinkConfig(delay=0.01, rate_bps=8_000_000, loss=0.08),
            rng_forward=random.Random(seed % 100000),
            rng_reverse=random.Random(seed % 100000 + 1),
        ).attach(a, b)
        b.listen(443)
        conn = a.connect(5000, 443)

        expected: dict[int, bytes] = {}

        def go():
            for sid, chunk in writes:
                conn.send(sid, chunk)
                expected[sid] = expected.get(sid, b"") + chunk

        conn.on_connect = go
        sim.run(until=120)
        peer = b.connection_for(443, 5000)
        for sid, body in expected.items():
            assert peer.stream_bytes(sid) == body, sid
