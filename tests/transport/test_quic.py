"""Tests for mini-QUIC (the Section 5 sublayering)."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ConnectionError_, HeaderError
from repro.core.litmus import WireTap, run_litmus
from repro.sim import DuplexLink, LinkConfig, Simulator
from repro.transport.quic import (
    AckFrame,
    CloseFrame,
    HandshakeFrame,
    INITIAL_KEY,
    QuicHost,
    StreamFrame,
    decode_frames,
    derive_traffic_key,
    encode_frames,
)


def make_pair(loss=0.0, seed=1, **link_kwargs):
    sim = Simulator()
    a = QuicHost("a", sim.clock())
    b = QuicHost("b", sim.clock())
    link = DuplexLink(
        sim,
        LinkConfig(delay=0.02, rate_bps=8_000_000, loss=loss, **link_kwargs),
        rng_forward=random.Random(seed),
        rng_reverse=random.Random(seed + 1),
    )
    link.attach(a, b)
    return sim, a, b


def pattern(nbytes, salt=0):
    return bytes((i * (salt + 1)) % 251 for i in range(nbytes))


class TestFrameCodec:
    def test_stream_roundtrip(self):
        frame = StreamFrame(stream_id=3, offset=1000, data=b"abc", fin=True)
        assert decode_frames(frame.encode()) == [frame]

    def test_ack_roundtrip(self):
        frame = AckFrame(largest=77, first_range=5)
        assert decode_frames(frame.encode()) == [frame]

    def test_handshake_roundtrip(self):
        frame = HandshakeFrame(hs_kind=1, random=bytes(32))
        assert decode_frames(frame.encode()) == [frame]

    def test_close_roundtrip(self):
        assert decode_frames(CloseFrame(code=7).encode()) == [CloseFrame(code=7)]

    def test_multiple_frames(self):
        frames = [
            StreamFrame(1, 0, b"xy"),
            AckFrame(3),
            StreamFrame(2, 10, b"z", fin=True),
        ]
        assert decode_frames(encode_frames(frames)) == frames

    def test_truncated_rejected(self):
        frame = StreamFrame(1, 0, b"hello")
        with pytest.raises(HeaderError):
            decode_frames(frame.encode()[:-2])

    def test_unknown_kind_rejected(self):
        with pytest.raises(HeaderError):
            decode_frames(b"\x99")

    def test_bad_random_length_rejected(self):
        with pytest.raises(HeaderError):
            HandshakeFrame(hs_kind=1, random=b"short")

    @given(
        st.integers(0, 65535), st.integers(0, 2**32 - 1),
        st.binary(max_size=64), st.booleans(),
    )
    def test_stream_roundtrip_property(self, sid, offset, data, fin):
        frame = StreamFrame(sid, offset, data, fin)
        assert decode_frames(frame.encode()) == [frame]


class TestKeys:
    def test_both_sides_derive_same_key(self):
        c, s = bytes(range(32)), bytes(range(32, 64))
        assert derive_traffic_key(c, s, (1, 2)) == derive_traffic_key(c, s, (2, 1))

    def test_key_depends_on_randoms(self):
        c, s = bytes(32), bytes(range(32))
        assert derive_traffic_key(c, s, (1, 2)) != derive_traffic_key(s, c, (1, 2))

    def test_initial_key_is_fixed(self):
        assert len(INITIAL_KEY) == 32


class TestHandshake:
    def test_connect(self):
        sim, a, b = make_pair()
        b.listen(443)
        conn = a.connect(5000, 443)
        connected = []
        conn.on_connect = lambda: connected.append(1)
        accepted = []
        b.on_accept = accepted.append
        sim.run(until=5)
        assert connected == [1]
        assert len(accepted) == 1 and accepted[0].connected

    def test_handshake_survives_loss(self):
        sim, a, b = make_pair(loss=0.5, seed=7)
        b.listen(443)
        conn = a.connect(5000, 443)
        sim.run(until=60)
        assert conn.connected

    def test_connect_gives_up(self):
        sim, a, b = make_pair(loss=1.0)
        b.listen(443)
        conn = a.connect(5000, 443)
        errors = []
        conn.on_error = errors.append
        sim.run(until=300)
        assert errors

    def test_double_open_rejected(self):
        sim, a, b = make_pair()
        b.listen(443)
        a.connect(5000, 443)
        with pytest.raises(ConnectionError_):
            a.connect(5000, 443)


class TestTransfer:
    def test_single_stream(self):
        sim, a, b = make_pair()
        b.listen(443)
        data = pattern(40_000)
        conn = a.connect(5000, 443)
        conn.on_connect = lambda: conn.send(1, data, fin=True)
        sim.run(until=30)
        peer = b.connection_for(443, 5000)
        assert peer.stream_bytes(1) == data
        assert 1 in peer.finished_streams

    @pytest.mark.parametrize("loss", [0.05, 0.15])
    def test_multi_stream_under_loss(self, loss):
        sim, a, b = make_pair(loss=loss, seed=3)
        b.listen(443)
        payloads = {sid: pattern(25_000, salt=sid) for sid in (1, 2, 3)}
        conn = a.connect(5000, 443)

        def go():
            for sid, data in payloads.items():
                conn.send(sid, data, fin=True)

        conn.on_connect = go
        sim.run(until=180)
        peer = b.connection_for(443, 5000)
        for sid, data in payloads.items():
            assert peer.stream_bytes(sid) == data, sid
            assert sid in peer.finished_streams

    def test_send_before_established_buffers(self):
        sim, a, b = make_pair()
        b.listen(443)
        conn = a.connect(5000, 443)
        conn.send(7, b"early", fin=True)  # 0 packets back yet
        sim.run(until=10)
        assert b.connection_for(443, 5000).stream_bytes(7) == b"early"

    def test_bidirectional_streams(self):
        sim, a, b = make_pair(loss=0.05, seed=9)
        b.listen(443)
        up, down = pattern(15_000, 1), pattern(15_000, 2)
        conn = a.connect(5000, 443)
        conn.on_connect = lambda: conn.send(1, up, fin=True)
        b.on_accept = lambda peer: peer.send(2, down, fin=True)
        sim.run(until=120)
        assert b.connection_for(443, 5000).stream_bytes(1) == up
        assert conn.stream_bytes(2) == down

    def test_close_propagates(self):
        sim, a, b = make_pair()
        b.listen(443)
        closed = []
        b.on_accept = lambda peer: setattr(
            peer, "on_peer_close", lambda code: closed.append(code)
        )
        conn = a.connect(5000, 443)
        conn.on_connect = lambda: (conn.send(1, b"bye", fin=True), conn.close(3))
        sim.run(until=20)
        assert closed == [3]

    def test_send_after_fin_rejected(self):
        sim, a, b = make_pair()
        b.listen(443)
        conn = a.connect(5000, 443)

        def go():
            conn.send(1, b"x", fin=True)
            with pytest.raises(ConnectionError_):
                conn.send(1, b"more")

        conn.on_connect = go
        sim.run(until=10)


class TestSecurity:
    def test_everything_on_wire_is_sealed(self):
        """T3 for the record sublayer: no plaintext stream bytes appear
        inside any wire unit."""
        sim, a, b = make_pair()
        captured = []
        forward = a.on_transmit

        def tap(unit, **meta):
            captured.append(unit)
            forward(unit, **meta)

        a.on_transmit = tap
        b.listen(443)
        secret = b"TOP-SECRET-PAYLOAD-MARKER"
        conn = a.connect(5000, 443)
        conn.on_connect = lambda: conn.send(1, secret * 10, fin=True)
        sim.run(until=20)
        assert b.connection_for(443, 5000).stream_bytes(1) == secret * 10
        for unit in captured:
            record = unit.find("record")
            if record is not None:
                assert secret not in bytes(record.payload())

    def test_forged_packet_dropped(self):
        sim, a, b = make_pair()
        b.listen(443)
        conn = a.connect(5000, 443)
        conn.on_connect = lambda: conn.send(1, b"real data", fin=True)
        sim.run(until=20)
        before = b.connection_for(443, 5000).stream_bytes(1)
        # craft a corrupted copy of a real unit
        captured = []
        a.on_transmit = lambda unit, **m: captured.append(unit)
        conn2 = a.connect(5001, 443)
        sim.run(until=1)  # capture a CHLO (epoch 0) to mutate
        assert captured
        unit = captured[0].clone()
        inner = unit.find("record")
        sealed = bytearray(inner.payload())
        sealed[len(sealed) // 2] ^= 0xFF
        inner.inner = bytes(sealed)
        failures_before = b.stack.sublayer("record").state.snapshot()[
            "auth_failures"
        ]
        b.receive(unit)
        failures_after = b.stack.sublayer("record").state.snapshot()[
            "auth_failures"
        ]
        assert failures_after == failures_before + 1
        assert b.connection_for(443, 5000).stream_bytes(1) == before

    def test_keys_differ_per_connection(self):
        sim, a, b = make_pair()
        b.listen(443)
        c1 = a.connect(5000, 443)
        c2 = a.connect(5001, 443)
        sim.run(until=10)
        keys = a.stack.sublayer("record").state.snapshot()["keys"]
        assert keys[((5000, 443), 1)] != keys[((5001, 443), 1)]


class TestHolFreedom:
    def test_lossless_stream_not_blocked_by_lossy_one(self):
        """The SST/Minion property: drop exactly the packet carrying
        stream 1's first chunk; stream 2 still completes promptly while
        stream 1 waits for the retransmission."""
        sim = Simulator()
        # mtu/frame sizes chosen so each data packet carries one frame
        a = QuicHost("a", sim.clock(), mtu=600, max_frame_data=500)
        b = QuicHost("b", sim.clock(), mtu=600, max_frame_data=500)
        link = DuplexLink(
            sim, LinkConfig(delay=0.02, rate_bps=8_000_000),
            rng_forward=random.Random(1), rng_reverse=random.Random(2),
        )
        link.attach(a, b)
        b.listen(443)
        conn = a.connect(5000, 443)
        sim.run(until=2)  # complete the handshake first
        assert conn.connected

        dropped = {"n": 0}
        forward = a.on_transmit

        def selective(unit, **meta):
            dropped["n"] += 1
            if dropped["n"] == 1:  # the packet with stream 1's 1st chunk
                return
            forward(unit, **meta)

        a.on_transmit = selective
        chunk1, chunk2 = pattern(1_500, 1), pattern(1_500, 2)
        # interleave the two streams chunk by chunk
        for i in range(3):
            conn.send(1, chunk1[i * 500 : (i + 1) * 500], fin=(i == 2))
            conn.send(2, chunk2[i * 500 : (i + 1) * 500], fin=(i == 2))
        arrival = {}
        peer = b.connection_for(443, 5000)
        peer.on_stream_fin = lambda sid: arrival.setdefault(sid, sim.now)
        sim.run(until=60)
        assert peer.stream_bytes(1) == chunk1 and peer.stream_bytes(2) == chunk2
        # stream 2 finished strictly before stream 1's retransmission landed
        assert arrival[2] < arrival[1]


class TestLitmus:
    def test_quic_stack_passes_t1_t2_t3(self):
        sim, a, b = make_pair(loss=0.08, seed=5)
        wire = WireTap(a.stack, b.stack)
        b.listen(443)
        data = pattern(20_000)
        conn = a.connect(5000, 443)
        conn.on_connect = lambda: conn.send(1, data, fin=True)
        sim.run(until=60)
        assert b.connection_for(443, 5000).stream_bytes(1) == data
        report = run_litmus(a.stack, b.stack, wire)
        assert report.passed, report.summary()
