"""Unit tests for the QUIC connection sublayer's fiddly internals:
ack-frame construction and loss declaration."""

import pytest

from repro.core.clock import ManualClock
from repro.core.stack import Stack
from repro.transport.quic.connection import ConnectionSublayer
from repro.transport.quic.frames import AckFrame, StreamFrame


def make_connection():
    conn_sub = ConnectionSublayer("connection")
    stack = Stack("x", [conn_sub], clock=ManualClock())
    stack.on_transmit = lambda unit, **m: None
    return conn_sub


def record_with(received: set[int], floor: int) -> dict:
    conn_sub = make_connection()
    record = conn_sub._new_record("client")
    record["received"] = set(received)
    record["rcv_floor"] = floor
    return conn_sub, record


class TestAckFrameConstruction:
    def test_contiguous_run(self):
        conn_sub, record = record_with({5, 6, 7}, floor=4)
        ack = conn_sub._ack_frame(record)
        assert ack.largest == 7
        # everything from floor+1..7 received: range reaches the floor
        assert ack.largest - ack.first_range <= 5

    def test_gap_limits_range(self):
        conn_sub, record = record_with({7, 8}, floor=5)  # pn 6 missing
        ack = conn_sub._ack_frame(record)
        assert ack.largest == 8
        assert ack.largest - ack.first_range == 7  # range must stop at 7

    def test_empty_received_acks_floor(self):
        conn_sub, record = record_with(set(), floor=3)
        ack = conn_sub._ack_frame(record)
        assert ack.largest == 3
        assert ack.first_range == 0

    def test_single_pn(self):
        conn_sub, record = record_with({9}, floor=-1)
        ack = conn_sub._ack_frame(record)
        assert ack.largest == 9
        assert ack.largest - ack.first_range == 9


class TestLossDeclaration:
    def setup_conn(self):
        conn_sub = make_connection()
        conn = (1, 2)
        record = conn_sub._new_record("client")
        record["established"] = True
        # four packets outstanding
        for pn in range(4):
            record["sent"][pn] = (
                (StreamFrame(1, pn * 100, b"x" * 100),), 110, 0.0
            )
            record["bytes_in_flight"] += 110
        record["pn_next"] = 4
        conn_sub._put(conn, record)
        return conn_sub, conn

    def test_packet_threshold_loss(self):
        conn_sub, conn = self.setup_conn()
        # ack pn 3..3 only: pn 0 is <= 3 - PACKET_THRESHOLD -> lost
        conn_sub._on_ack(conn, AckFrame(largest=3, first_range=0))
        record = conn_sub._get(conn)
        assert 3 not in record["sent"]          # acked
        assert 0 not in record["sent"]          # declared lost
        assert 1 in record["sent"] and 2 in record["sent"]  # still waiting
        # its frames were immediately repacketized in a NEW packet
        # (QUIC retransmits frames, not packets)
        new_pns = [pn for pn in record["sent"] if pn >= 4]
        assert new_pns, "lost frames were not re-sent"
        resent_frames, _size, _when = record["sent"][new_pns[0]]
        assert any(f.offset == 0 for f in resent_frames)

    def test_ack_range_clears_multiple(self):
        conn_sub, conn = self.setup_conn()
        conn_sub._on_ack(conn, AckFrame(largest=2, first_range=2))
        record = conn_sub._get(conn)
        assert set(record["sent"]) == {3}
        assert record["bytes_in_flight"] == 110

    def test_stale_ack_is_noop(self):
        conn_sub, conn = self.setup_conn()
        conn_sub._on_ack(conn, AckFrame(largest=2, first_range=2))
        before = dict(conn_sub._get(conn)["sent"])
        conn_sub._on_ack(conn, AckFrame(largest=2, first_range=2))
        assert conn_sub._get(conn)["sent"] == before
