"""The paper's rate-control property, tested directly.

Section 3 states OSR's guarantee: "if the network or receiver
bottleneck rate changes and stays steady, the sending OSR will
eventually reach and stay at that bottleneck rate."  These tests
measure steady-state goodput against the configured bottleneck, track
adaptation when the bottleneck changes mid-flow, and check rough AIMD
fairness between two competing flows.
"""

import random

import pytest

from repro.sim import DuplexLink, LinkConfig, Simulator
from repro.transport import SublayeredTcpHost, TcpConfig


def goodput_series(peer_sock, sim, window: float):
    """Sample delivered bytes every `window` seconds; return Mbit/s series."""
    samples = []
    last = {"bytes": 0}

    def sample():
        now_bytes = len(peer_sock.bytes_received())
        samples.append(8 * (now_bytes - last["bytes"]) / window / 1e6)
        last["bytes"] = now_bytes
        sim.schedule(window, sample)

    sim.schedule(window, sample)
    return samples


def make_flow(sim, link, lport=1000, rport=80, nbytes=2_000_000):
    cfg = TcpConfig(mss=1000)
    a = SublayeredTcpHost(f"a{lport}", sim.clock(), cfg)
    b = SublayeredTcpHost(f"b{lport}", sim.clock(), cfg)
    link.attach(a, b)
    b.listen(rport)
    data = bytes(i % 251 for i in range(nbytes))
    sock = a.connect(lport, rport)
    sock.on_connect = lambda: sock.send(data)
    return a, b, sock


class TestBottleneckConvergence:
    @pytest.mark.parametrize("rate_mbps", [1.0, 4.0])
    def test_steady_state_goodput_reaches_bottleneck(self, rate_mbps):
        sim = Simulator()
        link = DuplexLink(
            sim,
            LinkConfig(delay=0.02, rate_bps=rate_mbps * 1e6,
                       drop_tail_delay=0.1),
            rng_forward=random.Random(1),
            rng_reverse=random.Random(2),
        )
        a, b, sock = make_flow(sim, link, nbytes=4_000_000)
        peer_ready = {}

        def find_peer():
            peer = b.socket_for(80, 1000)
            if peer is not None:
                peer_ready["sock"] = peer
                peer_ready["series"] = goodput_series(peer, sim, window=0.5)
            else:
                sim.schedule(0.1, find_peer)

        sim.schedule(0.1, find_peer)
        sim.run(until=20)
        series = peer_ready["series"]
        live = [s for s in series if s > 0]  # drop post-completion zeros
        steady = live[len(live) // 3 :]      # past slow start
        mean = sum(steady) / len(steady)
        # within 60-100% of the configured bottleneck (headers + acks
        # spend some of it)
        assert 0.6 * rate_mbps <= mean <= 1.02 * rate_mbps, series

    def test_adapts_when_bottleneck_drops(self):
        """Halve the link rate mid-flow: goodput settles near the new rate."""
        sim = Simulator()
        link = DuplexLink(
            sim,
            LinkConfig(delay=0.02, rate_bps=4e6, drop_tail_delay=0.1),
            rng_forward=random.Random(3),
            rng_reverse=random.Random(4),
        )
        a, b, sock = make_flow(sim, link, nbytes=8_000_000)
        holder = {}

        def find_peer():
            peer = b.socket_for(80, 1000)
            if peer is not None:
                holder["series"] = goodput_series(peer, sim, window=0.5)
            else:
                sim.schedule(0.1, find_peer)

        sim.schedule(0.1, find_peer)
        sim.schedule(10.0, lambda: setattr(link.forward.config, "rate_bps", 1e6))
        sim.run(until=25)
        series = holder["series"]
        before = series[10:19]   # t in (5, 9.5): steady at 4 Mbit/s
        after = series[-8:]      # final seconds: steady at 1 Mbit/s
        mean_before = sum(before) / len(before)
        mean_after = sum(after) / len(after)
        assert mean_before > 2.0          # was running well above 1 Mbit/s
        assert 0.5 <= mean_after <= 1.02  # converged to the new bottleneck

    def test_two_flows_share_roughly_fairly(self):
        """Two AIMD flows on one bottleneck both make sustained progress
        and neither starves (coarse fairness)."""
        sim = Simulator()
        cfg = TcpConfig(mss=1000)
        hosts = []
        link = DuplexLink(
            sim,
            LinkConfig(delay=0.02, rate_bps=2e6, drop_tail_delay=0.08),
            rng_forward=random.Random(5),
            rng_reverse=random.Random(6),
        )
        # one sender host and one receiver host, two connections demuxed
        a = SublayeredTcpHost("a", sim.clock(), cfg)
        b = SublayeredTcpHost("b", sim.clock(), cfg)
        link.attach(a, b)
        b.listen(80)
        b.listen(81)
        data = bytes(i % 251 for i in range(1_500_000))
        s1 = a.connect(1000, 80)
        s2 = a.connect(1001, 81)
        s1.on_connect = lambda: s1.send(data)
        s2.on_connect = lambda: s2.send(data)
        sim.run(until=15)
        got1 = len(b.socket_for(80, 1000).bytes_received())
        got2 = len(b.socket_for(81, 1001).bytes_received())
        total = got1 + got2
        assert total > 0
        share1 = got1 / total
        assert 0.2 <= share1 <= 0.8, (got1, got2)
