"""Property-based tests for RD's interval-coverage receive logic.

The receiver must deliver every stream byte exactly once with the
right content, no matter how the sender segments, re-segments,
duplicates, or reorders — the invariant the C2 interop bug taught us
to state precisely.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clock import ManualClock
from repro.core.stack import Stack
from repro.transport.sublayered.headers import RD_HEADER
from repro.transport.sublayered.rd import RdSublayer
from repro.transport.seqspace import fold

CONN = (80, 1000)
LOCAL_ISN = 5000
REMOTE_ISN = 9000
STREAM = bytes(i % 251 for i in range(400))


class _FakeCm:
    """A stand-in CM below RD: records sends, answers get_isns."""

    def srv_get_isns(self, conn):
        return (LOCAL_ISN, REMOTE_ISN)

    def srv_open(self, conn):
        pass

    def srv_listen(self, port):
        pass

    def srv_close(self, conn, final_offset):
        pass


def make_receiver():
    """An RD wired as a stack top, with manual injection from 'below'."""
    from repro.core.interface import BoundPort, InterfaceLog

    rd = RdSublayer("rd")
    stack = Stack("rx", [rd], clock=ManualClock())
    stack.on_transmit = lambda unit, **meta: None  # swallow acks
    rd.below = BoundPort(
        # reuse CM's service shape via a tiny adapter
        __import__(
            "repro.transport.sublayered.cm", fromlist=["CmSublayer"]
        ).CmSublayer.SERVICE,
        _FakeCm(),
        "cm",
        "rd",
        InterfaceLog(),
    )
    delivered: list[tuple[int, bytes]] = []
    rd._deliver_up = lambda unit, conn=None, offset=None, **m: delivered.append(
        (offset, bytes(unit))
    )
    rd.nf_established(CONN)
    return rd, delivered


def inject(rd, offset: int, data: bytes) -> None:
    """Deliver one wire segment [offset, offset+len) to the receiver."""
    pdu = rd.wrap(
        {
            "seq": fold(REMOTE_ISN + 1 + offset),
            "ack": 0,
            "has_data": 1,
            "is_ack": 0,
        },
        bytes(data),
    )
    rd.from_below(pdu, conn=CONN)


def reconstruct(delivered) -> dict[int, int]:
    """Byte position -> value from the delivered (offset, data) pieces."""
    out: dict[int, int] = {}
    for offset, data in delivered:
        for i, byte in enumerate(data):
            position = offset + i
            assert position not in out, f"byte {position} delivered twice"
            out[position] = byte
    return out


segment_plans = st.lists(
    st.tuples(
        st.integers(0, len(STREAM) - 1),               # offset
        st.integers(1, 120),                           # length
    ),
    min_size=1,
    max_size=40,
)


class TestCoverageProperties:
    @given(segment_plans, st.randoms(use_true_random=False))
    @settings(max_examples=150, deadline=None)
    def test_exactly_once_right_content_any_segmentation(self, plan, rng):
        """Arbitrary (overlapping, duplicated, reordered, re-segmented)
        wire segments: every byte is delivered at most once, with the
        stream's correct value at that position."""
        rd, delivered = make_receiver()
        segments = [
            (offset, STREAM[offset : offset + length])
            for offset, length in plan
        ]
        # adversarial ordering plus wholesale duplication
        segments = segments + segments[: len(segments) // 2]
        rng.shuffle(segments)
        for offset, data in segments:
            if data:
                inject(rd, offset, data)
        positions = reconstruct(delivered)
        for position, value in positions.items():
            assert value == STREAM[position]

    @given(st.integers(1, 60), st.integers(1, 60))
    @settings(max_examples=100, deadline=None)
    def test_resegmented_retransmission(self, first_len, second_len):
        """A retransmission covering a different span than the original
        (the monolithic-TCP interop case) never duplicates bytes."""
        rd, delivered = make_receiver()
        inject(rd, 0, STREAM[:first_len])
        inject(rd, 0, STREAM[: first_len + second_len])  # longer re-send
        positions = reconstruct(delivered)
        assert positions == {
            i: STREAM[i] for i in range(first_len + second_len)
        }

    def test_gap_fill_coalesces_ooo_ranges(self):
        rd, delivered = make_receiver()
        inject(rd, 100, STREAM[100:150])
        inject(rd, 200, STREAM[200:250])
        inject(rd, 0, STREAM[0:300])  # one segment covering everything
        positions = reconstruct(delivered)
        assert positions == {i: STREAM[i] for i in range(300)}
        record = rd.state.snapshot()["conns"][CONN]
        assert record["rcv_nxt"] == 300
        assert record["rcv_ooo"] == {}

    def test_exact_duplicate_counted(self):
        rd, delivered = make_receiver()
        inject(rd, 0, STREAM[:50])
        inject(rd, 0, STREAM[:50])
        assert rd.state.snapshot()["duplicates_dropped"] == 1
        assert len(delivered) == 1

    @given(st.permutations(list(range(8))))
    @settings(max_examples=50, deadline=None)
    def test_rcv_nxt_reaches_total_under_any_arrival_order(self, order):
        rd, delivered = make_receiver()
        chunk = 50
        for index in order:
            inject(rd, index * chunk, STREAM[index * chunk : (index + 1) * chunk])
        record = rd.state.snapshot()["conns"][CONN]
        assert record["rcv_nxt"] == 8 * chunk
        assert reconstruct(delivered) == {
            i: STREAM[i] for i in range(8 * chunk)
        }
