"""Tests for sequence arithmetic, ISN schemes, and the RFC 793 codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.clock import ManualClock
from repro.transport.isn import ClockIsn, CryptoIsn, ISN_SCHEMES, TimerIsn
from repro.transport.rfc793 import TCP_HEADER, TcpSegment
from repro.transport.seqspace import SEQ_MOD, fold, seq_between, unfold


class TestSeqSpace:
    def test_fold_wraps(self):
        assert fold(SEQ_MOD + 5) == 5

    def test_unfold_identity(self):
        assert unfold(1000, fold(1000)) == 1000

    def test_unfold_ahead(self):
        assert unfold(1000, fold(1500)) == 1500

    def test_unfold_behind(self):
        assert unfold(1000, fold(800)) == 800

    def test_unfold_across_wrap(self):
        reference = SEQ_MOD - 10
        assert unfold(reference, 5) == SEQ_MOD + 5

    def test_seq_between(self):
        assert seq_between(10, 15, 20)
        assert not seq_between(10, 20, 20)

    @given(
        st.integers(0, 2**40),
        st.integers(-(2**30), 2**30),
    )
    def test_unfold_roundtrip_property(self, reference, delta):
        value = reference + delta
        if value < 0:
            return
        assert unfold(reference, fold(value)) == value


class TestIsnSchemes:
    def test_registry(self):
        assert set(ISN_SCHEMES) == {"clock", "crypto", "timer"}

    def test_clock_advances_with_time(self):
        clock = ManualClock()
        scheme = ClockIsn()
        first = scheme.choose(clock, (1, 2, 3, 4))
        clock.advance(1.0)
        second = scheme.choose(clock, (1, 2, 3, 4))
        assert second != first
        assert (second - first) % SEQ_MOD == 250_000  # 4 us tick

    def test_clock_ignores_tuple(self):
        clock = ManualClock(5.0)
        scheme = ClockIsn()
        assert scheme.choose(clock, (1, 2, 3, 4)) == scheme.choose(clock, (9, 9, 9, 9))

    def test_crypto_differs_per_tuple(self):
        clock = ManualClock(5.0)
        scheme = CryptoIsn()
        assert scheme.choose(clock, (1, 2, 3, 4)) != scheme.choose(clock, (1, 2, 3, 5))

    def test_crypto_differs_per_secret(self):
        clock = ManualClock(5.0)
        a = CryptoIsn(secret=b"one").choose(clock, (1, 2, 3, 4))
        b = CryptoIsn(secret=b"two").choose(clock, (1, 2, 3, 4))
        assert a != b

    def test_crypto_deterministic(self):
        clock = ManualClock(5.0)
        scheme = CryptoIsn(secret=b"k")
        assert scheme.choose(clock, (1, 2, 3, 4)) == scheme.choose(clock, (1, 2, 3, 4))

    def test_timer_epoch_granularity(self):
        clock = ManualClock()
        scheme = TimerIsn(max_segment_lifetime=1.0)
        first = scheme.choose(clock, (1, 2, 3, 4))
        clock.advance(0.5)
        assert scheme.choose(clock, (1, 2, 3, 4)) == first  # same epoch
        clock.advance(0.6)
        assert scheme.choose(clock, (1, 2, 3, 4)) != first

    def test_all_fit_in_32_bits(self):
        clock = ManualClock(123456.789)
        for cls in ISN_SCHEMES.values():
            isn = cls().choose(clock, (1, 2, 3, 4))
            assert 0 <= isn < SEQ_MOD


class TestRfc793:
    def test_header_is_20_bytes(self):
        assert TCP_HEADER.byte_width == 20

    def test_segment_defaults(self):
        seg = TcpSegment(header={"sport": 1, "dport": 2})
        assert seg.header["data_offset"] == 5
        assert not seg.syn and not seg.fin and not seg.has_ack

    def test_flag_properties(self):
        seg = TcpSegment(header={"syn": 1, "ack_flag": 1, "ack": 100})
        assert seg.syn and seg.has_ack and seg.ack == 100

    def test_seg_len_counts_syn_fin(self):
        assert TcpSegment(header={"syn": 1}).seg_len() == 1
        assert TcpSegment(header={"fin": 1}, payload=b"ab").seg_len() == 3

    def test_wire_bytes(self):
        assert TcpSegment(header={}, payload=b"abc").wire_bytes == 23

    def test_bytes_roundtrip(self):
        seg = TcpSegment(
            header={"sport": 80, "dport": 12345, "seq": 7, "ack": 9,
                    "ack_flag": 1, "psh": 1, "window": 500},
            payload=b"payload",
        )
        again = TcpSegment.from_bytes(seg.to_bytes())
        assert again.header == seg.header
        assert again.payload == seg.payload

    def test_flag_names(self):
        seg = TcpSegment(header={"syn": 1, "ack_flag": 1})
        assert "SYN" in seg.flag_names() and "ACK" in seg.flag_names()

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1), st.binary(max_size=64))
    def test_roundtrip_property(self, seq, ack, payload):
        seg = TcpSegment(header={"seq": seq, "ack": ack}, payload=payload)
        again = TcpSegment.from_bytes(seg.to_bytes())
        assert again.seq == seq and again.ack == ack and again.payload == payload
