"""Tests for the sublayered TCP (Fig 5)."""

import pytest

from repro.core.errors import ConnectionError_
from repro.core.litmus import WireTap, run_litmus
from repro.transport import TcpConfig
from repro.transport.isn import CryptoIsn, TimerIsn
from repro.transport.sublayered import (
    AimdCc,
    FixedWindowCc,
    NATIVE_HEADER_BITS,
    RateBasedCc,
)

from .helpers import make_pair, pattern, transfer


class TestHandshake:
    def test_connect_and_accept(self):
        sim, a, b, _ = make_pair("sub", "sub")
        b.listen(80)
        accepted = []
        b.on_accept = accepted.append
        sock = a.connect(1000, 80)
        sim.run(until=5)
        assert sock.connected
        assert len(accepted) == 1
        assert accepted[0].connected

    def test_handshake_survives_loss(self):
        sim, a, b, _ = make_pair("sub", "sub", loss=0.6, seed=5)
        b.listen(80)
        sock = a.connect(1000, 80)
        sim.run(until=60)
        assert sock.connected

    def test_connect_gives_up_on_dead_peer(self):
        sim, a, b, _ = make_pair("sub", "sub", loss=1.0)
        b.listen(80)
        sock = a.connect(1000, 80)
        errors = []
        sock.on_error = errors.append
        sim.run(until=300)
        assert errors and "timed out" in errors[0]

    def test_isns_established_on_both_sides(self):
        sim, a, b, _ = make_pair("sub", "sub")
        b.listen(80)
        a.connect(1000, 80)
        sim.run(until=5)
        cm_a = a.stack.sublayer("cm")
        cm_b = b.stack.sublayer("cm")
        isns_a = cm_a.srv_get_isns((1000, 80))
        isns_b = cm_b.srv_get_isns((80, 1000))
        assert isns_a is not None and isns_b is not None
        assert isns_a == (isns_b[1], isns_b[0])  # mirrored pair

    def test_double_open_rejected(self):
        sim, a, b, _ = make_pair("sub", "sub")
        b.listen(80)
        a.connect(1000, 80)
        with pytest.raises(ConnectionError_):
            a.connect(1000, 80)


class TestTransfer:
    def test_clean_transfer(self):
        sim, a, b, _ = make_pair("sub", "sub")
        data, received, _, _ = transfer(sim, a, b, nbytes=40_000)
        assert received == data

    @pytest.mark.parametrize(
        "impairment",
        [
            {"loss": 0.1},
            {"duplicate": 0.1},
            {"reorder_jitter": 0.02},
            {"loss": 0.12, "duplicate": 0.05, "reorder_jitter": 0.01},
        ],
    )
    def test_transfer_under_impairment(self, impairment):
        sim, a, b, _ = make_pair("sub", "sub", seed=7, **impairment)
        data, received, _, _ = transfer(sim, a, b, nbytes=40_000, until=400)
        assert received == data

    def test_bidirectional(self):
        sim, a, b, _ = make_pair("sub", "sub", loss=0.05)
        b.listen(80)
        up, down = pattern(20_000), bytes(reversed(pattern(20_000)))
        sock = a.connect(1000, 80)
        sock.on_connect = lambda: sock.send(up)
        b.on_accept = lambda peer: peer.send(down)
        sim.run(until=120)
        assert b.socket_for(80, 1000).bytes_received() == up
        assert sock.bytes_received() == down

    def test_two_concurrent_connections_demuxed(self):
        sim, a, b, _ = make_pair("sub", "sub")
        b.listen(80)
        b.listen(81)
        s1 = a.connect(1000, 80)
        s2 = a.connect(1001, 81)
        d1, d2 = b"one" * 1000, b"two" * 1000
        s1.on_connect = lambda: s1.send(d1)
        s2.on_connect = lambda: s2.send(d2)
        sim.run(until=30)
        assert b.socket_for(80, 1000).bytes_received() == d1
        assert b.socket_for(81, 1001).bytes_received() == d2

    def test_send_before_established_buffers(self):
        sim, a, b, _ = make_pair("sub", "sub")
        b.listen(80)
        sock = a.connect(1000, 80)
        sock.send(b"early bird")  # handshake not done yet
        sim.run(until=10)
        assert b.socket_for(80, 1000).bytes_received() == b"early bird"

    def test_send_after_close_rejected(self):
        sim, a, b, _ = make_pair("sub", "sub")
        b.listen(80)
        sock = a.connect(1000, 80)

        def go():
            sock.close()
            with pytest.raises(ConnectionError_):
                sock.send(b"late")

        sock.on_connect = go
        sim.run(until=10)

    def test_unbound_port_dropped_by_dm(self):
        sim, a, b, _ = make_pair("sub", "sub")
        # no listener on b
        sock = a.connect(1000, 99)
        sim.run(until=3)
        dm = b.stack.sublayer("dm")
        assert dm.state.snapshot()["dropped_unbound"] > 0


class TestSublayerBehaviour:
    def test_rd_delivers_out_of_order_osr_reorders(self):
        """The Fig 5 division of labour: under reordering, RD hands
        segments up out of order and OSR pastes them back."""
        sim, a, b, _ = make_pair("sub", "sub", reorder_jitter=0.05, seed=13)
        data, received, _, _ = transfer(sim, a, b, nbytes=60_000, until=300)
        assert received == data
        osr_b = b.stack.sublayer("osr")
        assert osr_b.state.snapshot()["reordered"] > 0

    def test_rd_retransmits_under_loss(self):
        sim, a, b, _ = make_pair("sub", "sub", loss=0.15, seed=3)
        data, received, _, _ = transfer(sim, a, b, nbytes=40_000, until=300)
        assert received == data
        rd_a = a.stack.sublayer("rd")
        assert rd_a.state.snapshot()["retransmitted"] > 0

    def test_rd_dedups_duplicates(self):
        sim, a, b, _ = make_pair("sub", "sub", duplicate=0.3, seed=3)
        data, received, _, _ = transfer(sim, a, b, nbytes=30_000, until=300)
        assert received == data
        rd_b = b.stack.sublayer("rd")
        assert rd_b.state.snapshot()["duplicates_dropped"] > 0

    def test_cm_goes_silent_after_handshake(self):
        """Section 7: 'Our sublayered TCP has CM initially active and
        then silent' — no CM handshake packets after establishment."""
        sim, a, b, _ = make_pair("sub", "sub")
        b.listen(80)
        sock = a.connect(1000, 80)
        sim.run(until=5)
        cm_a = a.stack.sublayer("cm")
        syns_after_handshake = cm_a.state.snapshot()["syns_sent"]
        sock.send(pattern(40_000))
        sim.run(until=60)
        assert cm_a.state.snapshot()["syns_sent"] == syns_after_handshake

    def test_native_header_bits_accounted(self):
        sim, a, b, _ = make_pair("sub", "sub")
        captured = []
        forward = a.on_transmit  # keep the link wiring intact

        def tap(unit, **meta):
            captured.append(unit)
            forward(unit, **meta)

        a.on_transmit = tap
        b.listen(80)
        sock = a.connect(1000, 80)
        sim.run(until=5)
        sock.send(b"x" * 100)
        sim.run(until=10)
        data_units = [u for u in captured if u.find("osr") is not None
                      and len(u.payload() or b"") > 0]
        assert data_units
        assert data_units[0].header_bits() == NATIVE_HEADER_BITS


class TestLitmus:
    def test_full_run_passes_t1_t2_t3(self):
        sim, a, b, _ = make_pair("sub", "sub", loss=0.1, seed=5)
        wire = WireTap(a.stack, b.stack)
        data, received, _, _ = transfer(sim, a, b, nbytes=30_000)
        assert received == data
        report = run_litmus(a.stack, b.stack, wire)
        assert report.passed, report.summary()

    def test_header_nesting_order(self):
        sim, a, b, _ = make_pair("sub", "sub")
        wire = WireTap(a.stack, b.stack)
        transfer(sim, a, b, nbytes=5_000)
        data_pdus = [p for p in wire.pdus if p.find("rd") is not None]
        assert data_pdus
        for pdu in data_pdus:
            owners = pdu.owners()
            assert owners[0] == "dm"
            assert owners.index("cm") < owners.index("rd")


class TestFlowControl:
    def test_paused_reader_blocks_sender(self):
        config = TcpConfig(mss=1000, recv_buffer=4000)
        sim, a, b, _ = make_pair("sub", "sub", config=config)
        b.listen(80)
        accepted = []

        def accept(peer):
            peer.pause_reading()
            accepted.append(peer)

        b.on_accept = accept
        sock = a.connect(1000, 80)
        sock.on_connect = lambda: sock.send(pattern(20_000))
        sim.run(until=20)
        assert len(accepted[0].bytes_received()) < 20_000

    def test_resume_reopens_window(self):
        config = TcpConfig(mss=1000, recv_buffer=4000)
        sim, a, b, _ = make_pair("sub", "sub", config=config)
        b.listen(80)
        accepted = []

        def accept(peer):
            peer.pause_reading()
            accepted.append(peer)

        b.on_accept = accept
        sock = a.connect(1000, 80)
        data = pattern(20_000)
        sock.on_connect = lambda: sock.send(data)
        sim.run(until=10)
        peer = accepted[0]

        def drain():
            peer.resume_reading()
            if len(peer.bytes_received()) < len(data):
                sim.schedule(1.0, drain)

        drain()
        sim.run(until=300)
        assert peer.bytes_received() == data


class TestClose:
    def test_close_both_sides(self):
        sim, a, b, _ = make_pair("sub", "sub", loss=0.05)
        b.listen(80)
        events = []

        def accept(peer):
            peer.on_peer_close = lambda: (events.append("b-saw-fin"), peer.close())
            peer.on_close = lambda: events.append("b-closed")

        b.on_accept = accept
        sock = a.connect(1000, 80)
        sock.on_connect = lambda: (sock.send(b"bye"), sock.close())
        sock.on_close = lambda: events.append("a-closed")
        sock.on_peer_close = lambda: events.append("a-saw-fin")
        sim.run(until=60)
        assert set(events) == {"a-closed", "b-saw-fin", "b-closed", "a-saw-fin"}

    def test_fin_waits_for_data_delivery(self):
        """peer_close fires only after all stream bytes arrived, even if
        the FIN overtakes data."""
        sim, a, b, _ = make_pair("sub", "sub", reorder_jitter=0.05, seed=21)
        b.listen(80)
        order = []

        def accept(peer):
            peer.on_data = lambda chunk: order.append("data") if not order or order[-1] != "data" else None
            peer.on_peer_close = lambda: order.append("fin")

        b.on_accept = accept
        sock = a.connect(1000, 80)
        sock.on_connect = lambda: (sock.send(pattern(20_000)), sock.close())
        sim.run(until=120)
        assert order and order[-1] == "fin"
        peer = b.socket_for(80, 1000)
        assert peer.bytes_received() == pattern(20_000)


class TestReplaceability:
    @pytest.mark.parametrize("cc_factory", [
        lambda mss: AimdCc(mss),
        lambda mss: RateBasedCc(mss),
        lambda mss: FixedWindowCc(mss, segments=8),
    ])
    def test_congestion_control_swap(self, cc_factory):
        sim, a, b, _ = make_pair(
            "sub", "sub", loss=0.05, cc_factory=cc_factory, seed=5
        )
        data, received, _, _ = transfer(sim, a, b, nbytes=30_000, until=300)
        assert received == data

    @pytest.mark.parametrize("scheme", [CryptoIsn(), TimerIsn()])
    def test_isn_scheme_swap(self, scheme):
        config = TcpConfig(mss=1000, isn_scheme=scheme)
        sim, a, b, _ = make_pair("sub", "sub", config=config, loss=0.05)
        data, received, _, _ = transfer(sim, a, b, nbytes=20_000)
        assert received == data

    def test_swap_touches_only_osr_state(self):
        """Replacing congestion control changes no other sublayer's
        state fields — the C5 isolation claim."""
        fields = {}
        for label, factory in (
            ("aimd", lambda mss: AimdCc(mss)),
            ("rate", lambda mss: RateBasedCc(mss)),
        ):
            sim, a, b, _ = make_pair("sub", "sub", cc_factory=factory)
            transfer(sim, a, b, nbytes=10_000)
            fields[label] = {
                name: a.stack.sublayer(name).state.field_names()
                for name in ("rd", "cm", "dm")
            }
        assert fields["aimd"] == fields["rate"]
