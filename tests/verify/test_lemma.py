"""Tests for the lemma framework."""

import pytest

from repro.core.errors import VerificationError
from repro.verify.lemma import Lemma, LemmaLibrary, exhaustive, sampled


def small_domain():
    return lambda: range(5)


class TestLemma:
    def test_proves_true_property(self):
        lemma = Lemma("sq", "squares non-negative", lambda x: x * x >= 0,
                      exhaustive(small_domain()), sublayer="math")
        result = lemma.prove()
        assert result.proved
        assert result.cases_checked == 5

    def test_counterexample_found(self):
        lemma = Lemma("lt3", "all below 3", lambda x: x < 3,
                      exhaustive(small_domain()), sublayer="math")
        result = lemma.prove()
        assert not result.proved
        assert result.counterexample == (3,)
        assert result.cases_checked == 4

    def test_exception_is_failure_with_detail(self):
        def boom(x):
            raise RuntimeError("bad case")

        lemma = Lemma("boom", "crashes", boom, exhaustive(small_domain()),
                      sublayer="math")
        result = lemma.prove()
        assert not result.proved
        assert "RuntimeError" in result.detail

    def test_multi_domain_product(self):
        lemma = Lemma(
            "comm", "addition commutes", lambda a, b: a + b == b + a,
            exhaustive(small_domain(), small_domain()), sublayer="math",
        )
        result = lemma.prove()
        assert result.proved
        assert result.cases_checked == 25

    def test_sampled_cases_deterministic(self):
        gen = lambda rng: (rng.randrange(100),)
        lemma = Lemma("nonneg", "samples non-negative", lambda x: x >= 0,
                      sampled(gen, samples=50, seed=1), sublayer="math")
        first = lemma.prove()
        second = lemma.prove()
        assert first.proved and first.cases_checked == 50
        assert second.cases_checked == 50

    def test_crosses_sublayers(self):
        lemma = Lemma("x", "s", lambda: True, lambda: [()], sublayer="a/b")
        assert lemma.crosses_sublayers


class TestLemmaLibrary:
    def build(self):
        lib = LemmaLibrary("demo")
        lib.add(Lemma("base", "s", lambda x: x >= 0,
                      exhaustive(small_domain()), sublayer="a"))
        lib.add(Lemma("dep", "s", lambda x: x + 1 > x,
                      exhaustive(small_domain()), sublayer="b",
                      depends_on=["base"]))
        lib.add(Lemma("iface", "s", lambda: True, lambda: [()],
                      sublayer="a/b", depends_on=["base", "dep"]))
        return lib

    def test_len_contains(self):
        lib = self.build()
        assert len(lib) == 3
        assert "dep" in lib

    def test_duplicate_rejected(self):
        lib = self.build()
        with pytest.raises(VerificationError):
            lib.add(Lemma("base", "s", lambda: True, lambda: [()], sublayer="a"))

    def test_unknown_dependency_rejected(self):
        lib = LemmaLibrary("x")
        with pytest.raises(VerificationError):
            lib.add(Lemma("a", "s", lambda: True, lambda: [()],
                          sublayer="a", depends_on=["ghost"]))

    def test_prove_all_in_order(self):
        report = self.build().prove_all()
        assert report.proved
        assert report.order == ["base", "dep", "iface"]

    def test_stop_on_failure(self):
        lib = LemmaLibrary("x")
        lib.add(Lemma("fails", "s", lambda x: x < 0,
                      exhaustive(small_domain()), sublayer="a"))
        lib.add(Lemma("after", "s", lambda: True, lambda: [()], sublayer="a",
                      depends_on=["fails"]))
        report = lib.prove_all(stop_on_failure=True)
        assert len(report.results) == 1

    def test_report_lookup_and_failures(self):
        lib = LemmaLibrary("x")
        lib.add(Lemma("bad", "s", lambda x: x != 2,
                      exhaustive(small_domain()), sublayer="a"))
        report = lib.prove_all()
        assert report.result("bad").counterexample == (2,)
        assert len(report.failures()) == 1
        with pytest.raises(KeyError):
            report.result("nope")

    def test_modularity_report(self):
        report = self.build().modularity_report()
        assert report["lemmas"] == 3
        assert report["per_sublayer"] == {"a": 1, "b": 1, "a/b": 1}
        assert report["cross_sublayer_lemmas"] == 1
        assert report["cross_sublayer_dependencies"] >= 2
        assert report["modular_fraction"] == pytest.approx(2 / 3)

    def test_summary_text(self):
        text = self.build().prove_all().summary()
        assert "ALL PROVED" in text
