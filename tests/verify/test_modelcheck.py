"""Tests for the explicit-state model checker and the TCP models."""

import pytest

from repro.verify.modelcheck import (
    Invariant,
    Model,
    channel_add,
    channel_remove,
    channel_variants,
    check,
)
from repro.verify.tcpmodels import CmModel, MonolithicModel, OsrModel, RdModel


class CounterModel(Model):
    """A toy model: a counter stepping 0..limit."""

    name = "counter"

    def __init__(self, limit=5):
        self.limit = limit

    def initial_states(self):
        yield 0

    def actions(self, state):
        if state < self.limit:
            return [("inc", state + 1)]
        return []


class TestChecker:
    def test_explores_all_states(self):
        result = check(CounterModel(5), [])
        assert result.states_explored == 6
        assert result.depth == 5
        assert result.holds

    def test_invariant_violation_with_trace(self):
        result = check(CounterModel(5), [Invariant("lt3", lambda s: s < 3)])
        assert not result.holds
        assert result.violated == "lt3"
        assert result.counterexample == ["inc", "inc", "inc"]

    def test_state_limit_flagged(self):
        result = check(CounterModel(100), [], max_states=10)
        assert result.hit_state_limit
        assert not bool(result)

    def test_bool_semantics(self):
        assert bool(check(CounterModel(3), []))

    def test_multiple_initial_states(self):
        class TwoStarts(CounterModel):
            def initial_states(self):
                yield 0
                yield 10

        result = check(TwoStarts(5), [])
        assert result.states_explored == 7  # 0..5 and 10


class TestChannelHelpers:
    def test_add_and_remove(self):
        ch = channel_add((), "m", capacity=2)
        assert ch == ("m",)
        assert channel_remove(ch, "m") == ()

    def test_add_respects_capacity(self):
        ch = ("a", "b")
        assert channel_add(ch, "c", capacity=2) is None

    def test_variants_include_loss(self):
        variants = dict(channel_variants((), "m", capacity=2))
        assert variants["sent"] == ("m",)
        assert variants["lost"] == ()

    def test_variants_duplication(self):
        variants = dict(channel_variants((), "m", capacity=2, duplicating=True))
        assert variants["duplicated"] == ("m", "m")


class TestCmModel:
    def test_handshake_isns_agree(self):
        result = check(CmModel(), CmModel.invariants())
        assert result.holds
        assert result.states_explored > 10

    def test_freshness_holds_without_stale_syns(self):
        assert check(CmModel(), CmModel.freshness_invariants()).holds

    def test_stale_syns_violate_freshness(self):
        result = check(CmModel(stale_syns=True), CmModel.freshness_invariants())
        assert not result.holds
        assert result.violated == "server-remote-isn-fresh"
        assert "stale-syn" in result.counterexample


class TestRdModel:
    def test_alternating_bit_correct(self):
        """W=1, M=2 over a FIFO lossy channel: the alternating-bit
        protocol, machine-verified."""
        model = RdModel(segments=4, window=1, seq_mod=2)
        assert check(model, model.invariants()).holds

    def test_window_half_seqspace_correct(self):
        model = RdModel(segments=5, window=2, seq_mod=4)
        assert check(model, model.invariants()).holds

    def test_window_exceeding_half_seqspace_fails(self):
        """The classic theorem boundary: W > M/2 lets a stale wire seq
        alias a fresh offset; the checker exhibits the trace."""
        model = RdModel(segments=5, window=3, seq_mod=4)
        result = check(model, model.invariants())
        assert not result.holds
        assert result.violated == "exactly-once-right-content"
        assert result.counterexample

    def test_unbounded_reordering_unsafe_for_any_finite_seqspace(self):
        """With a multiset channel (no lifetime bound), even W <= M/2
        fails — the formal reason TCP needs an MSL plus CM's fresh
        ISNs."""
        model = RdModel(segments=5, window=2, seq_mod=4, fifo=False)
        result = check(model, model.invariants())
        assert not result.holds

    def test_stale_traffic_breaks_rd_without_cm(self):
        """RD verifies only *under CM's postcondition*: with delayed
        duplicates from an old incarnation in the network, exactly-once
        fails immediately."""
        model = RdModel(segments=3, window=1, seq_mod=2, stale_traffic=True)
        result = check(model, model.invariants())
        assert not result.holds
        assert any(label.startswith("stale") for label in result.counterexample)


class TestOsrModel:
    def test_reassembly_in_order(self):
        model = OsrModel(segments=4)
        assert check(model, model.invariants()).holds

    def test_buffer_bound_tight(self):
        # worst case buffers segments-1 items (everything but the first)
        model = OsrModel(segments=4, buffer_limit=2)
        result = check(model, model.invariants())
        assert not result.holds
        assert result.violated == "buffer-bounded"


class TestCompositionVsMonolithic:
    def test_monolithic_holds(self):
        model = MonolithicModel(segments=2, window=1, seq_mod=2)
        assert check(model, model.invariants()).holds

    def test_compositional_state_space_much_smaller(self):
        """The E3 headline: summed sublayer obligations vs the product."""
        cm = check(CmModel(), CmModel.invariants())
        rd_model = RdModel(segments=3, window=2, seq_mod=4)
        rd = check(rd_model, rd_model.invariants())
        osr_model = OsrModel(segments=4)
        osr = check(osr_model, osr_model.invariants())
        mono_model = MonolithicModel(segments=3, window=2, seq_mod=4)
        mono = check(mono_model, mono_model.invariants())
        compositional = (
            cm.states_explored + rd.states_explored + osr.states_explored
        )
        assert compositional * 3 < mono.states_explored
