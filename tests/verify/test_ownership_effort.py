"""Tests for ownership/interference analysis and the effort report."""

import pytest

from repro.core.instrument import AccessLog, InstrumentedState, acting_as
from repro.verify.effort import EffortComparison, Obligation
from repro.verify.modelcheck import CheckResult
from repro.verify.ownership import analyze_ownership, compare_ownership

from ..transport.helpers import make_pair, transfer


def entangled_log():
    log = AccessLog()
    pcb = InstrumentedState("pcb", log=log)
    with acting_as("rd"):
        pcb.snd_una = 0
        pcb.window = 10
    with acting_as("cc"):
        _ = pcb.window
        pcb.window = 5
    with acting_as("flow"):
        _ = pcb.window
    with acting_as("cm"):
        pcb.state = "EST"
    return log


def disciplined_log():
    log = AccessLog()
    rd = InstrumentedState("rd", log=log)
    cc = InstrumentedState("cc", log=log)
    with acting_as("rd"):
        rd.snd_una = 0
    with acting_as("cc"):
        cc.window = 10
    return log


class TestOwnershipAnalysis:
    def test_shared_fields_found(self):
        report = analyze_ownership(entangled_log())
        assert ("pcb", "window") in report.shared_fields
        assert set(report.shared_fields[("pcb", "window")]) == {"rd", "cc", "flow"}

    def test_exclusive_ownership_clean(self):
        report = analyze_ownership(disciplined_log())
        assert report.shared_field_count == 0
        assert report.exclusively_owned_fraction == 1.0
        assert report.interaction_count == 0

    def test_interaction_pairs(self):
        report = analyze_ownership(entangled_log())
        assert ("cc", "flow") in report.interaction_pairs
        assert ("cc", "rd") in report.interaction_pairs

    def test_write_write_conflicts(self):
        report = analyze_ownership(entangled_log())
        assert report.write_write_conflicts == 1  # window written by rd and cc

    def test_frame_annotations_counted(self):
        report = analyze_ownership(disciplined_log())
        assert report.frame_annotations == 2  # one write clause each

    def test_target_filter(self):
        report = analyze_ownership(entangled_log(), targets={"nothing"})
        assert report.fields_total == 0

    def test_summary_text(self):
        text = analyze_ownership(entangled_log()).summary()
        assert "pcb.window" in text

    def test_compare_keys(self):
        comparison = compare_ownership(
            analyze_ownership(entangled_log()),
            analyze_ownership(disciplined_log()),
        )
        assert comparison["monolithic_shared_fields"] > 0
        assert comparison["sublayered_shared_fields"] == 0


class TestRealImplementations:
    """The A1 experiment in miniature: run both TCPs, compare logs."""

    def test_monolithic_pcb_is_entangled(self):
        sim, a, b, _ = make_pair("mono", "mono", loss=0.05)
        transfer(sim, a, b, nbytes=30_000)
        report = analyze_ownership(a.access_log, targets={"pcb"})
        assert report.shared_field_count >= 3
        assert report.exclusively_owned_fraction < 0.9
        assert report.interaction_count >= 3

    def test_sublayered_state_is_owned(self):
        sim, a, b, _ = make_pair("sub", "sub", loss=0.05)
        transfer(sim, a, b, nbytes=30_000)
        report = analyze_ownership(
            a.access_log, targets={"osr", "rd", "cm", "dm"}
        )
        assert report.shared_field_count == 0
        assert report.exclusively_owned_fraction == 1.0

    def test_monolithic_window_fields_shared(self):
        """The paper's example: 'the window is crucial for ensuring
        reliable delivery, but congestion/flow control can also alter
        the window'."""
        sim, a, b, _ = make_pair("mono", "mono", loss=0.1, seed=5)
        transfer(sim, a, b, nbytes=40_000)
        report = analyze_ownership(a.access_log, targets={"pcb"})
        window_actors = set(report.shared_fields.get(("pcb", "cwnd"), []))
        assert {"rd", "cc"} <= window_actors


class TestEffortComparison:
    def make(self):
        def result(name, states):
            return CheckResult(
                model=name, states_explored=states, transitions=states * 3,
                depth=5, holds=True,
            )

        comparison = EffortComparison()
        comparison.compositional = [
            Obligation("cm", "cm", result("cm", 40)),
            Obligation("rd", "rd", result("rd", 400)),
            Obligation("osr", "osr", result("osr", 16)),
        ]
        comparison.monolithic = [
            Obligation("whole", "whole-system", result("mono", 4000)),
        ]
        return comparison

    def test_totals_and_ratio(self):
        comparison = self.make()
        assert comparison.compositional_states == 456
        assert comparison.monolithic_states == 4000
        assert comparison.state_ratio == pytest.approx(4000 / 456)

    def test_largest_single_obligation(self):
        biggest = self.make().largest_single_obligation
        assert biggest == {"compositional": 400, "monolithic": 4000}

    def test_rows_and_summary(self):
        comparison = self.make()
        assert len(comparison.rows()) == 4
        assert comparison.all_discharged
        assert "ratio" in comparison.summary()
