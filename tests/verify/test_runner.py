"""Tests for the parallel/cached batch proof runner and report ordering."""

import json
import os

import pytest

from repro.core.errors import VerificationError
from repro.par import ProofCache
from repro.verify import prove_libraries
from repro.verify.lemma import (
    Lemma,
    LemmaLibrary,
    LibraryReport,
    ProofResult,
    exhaustive,
)

FORKING = os.name == "posix"


def domain():
    return lambda: range(6)


def build_library(name="lib", body=lambda x: x * x >= 0):
    """A small library with a dependency chain and unsorted insertion order."""
    lib = LemmaLibrary(name)
    lib.add(Lemma("zebra", "last alphabetically, first inserted",
                  lambda x: x + 1 > x, exhaustive(domain()), sublayer="a"))
    lib.add(Lemma("mid", "depends on zebra", body,
                  exhaustive(domain()), sublayer="a", depends_on=["zebra"]))
    lib.add(Lemma("alpha", "depends on mid", lambda x: 2 * x == x + x,
                  exhaustive(domain()), sublayer="b", depends_on=["mid"]))
    return lib


class TestReportOrdering:
    def test_sort_orders_results_by_lemma_name(self):
        report = LibraryReport(order=["zebra", "mid", "alpha"])
        for name in ["zebra", "mid", "alpha"]:
            report.results.append(
                ProofResult(lemma=name, proved=True, cases_checked=1)
            )
        assert [r.lemma for r in report.sort().results] == [
            "alpha", "mid", "zebra",
        ]

    def test_serial_prove_all_returns_sorted_results(self):
        report = build_library().prove_all()
        names = [r.lemma for r in report.results]
        assert names == sorted(names) == ["alpha", "mid", "zebra"]
        # `order` keeps the dependency-respecting proof order.
        assert report.order == ["zebra", "mid", "alpha"]

    def test_as_dict_is_json_stable(self):
        one = json.dumps(build_library().prove_all().as_dict(), sort_keys=True)
        two = json.dumps(build_library().prove_all().as_dict(), sort_keys=True)
        assert one == two


class TestProveLibraries:
    def test_serial_batch_matches_prove_all(self):
        batch = prove_libraries([build_library()])["lib"]
        assert batch.as_dict() == build_library().prove_all().as_dict()

    @pytest.mark.skipif(not FORKING, reason="fork-only")
    def test_parallel_report_identical_to_serial(self):
        serial = prove_libraries([build_library()])["lib"].as_dict()
        parallel = prove_libraries([build_library()], jobs=2)["lib"].as_dict()
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )

    def test_duplicate_library_names_rejected(self):
        with pytest.raises(VerificationError, match="duplicate"):
            prove_libraries([build_library(), build_library()])

    def test_prove_all_delegates_to_runner(self):
        report = build_library().prove_all(parallel=1)
        assert report.proved and len(report.results) == 3

    def test_stop_on_failure_parity(self):
        def broken(x):
            return x < 1  # fails on x == 1

        serial = build_library(body=broken).prove_all(stop_on_failure=True)
        batch = prove_libraries(
            [build_library(body=broken)], stop_on_failure=True
        )["lib"]
        assert not serial.proved and not batch.proved
        assert [r.lemma for r in serial.results] == [
            r.lemma for r in batch.results
        ]


class TestCacheBehaviour:
    def test_unchanged_library_hits_cache(self, tmp_path):
        cache = ProofCache(root=tmp_path)
        prove_libraries([build_library()], cache=cache)
        assert cache.stats()["misses"] == 3
        warm = ProofCache(root=tmp_path)
        report = prove_libraries([build_library()], cache=warm)["lib"]
        assert warm.stats() == {"hits": 3, "misses": 0, "entries": 3}
        assert report.proved and report.total_cases > 0

    def test_cached_report_identical_to_cold(self, tmp_path):
        cache = ProofCache(root=tmp_path)
        cold = prove_libraries([build_library()], cache=cache)["lib"].as_dict()
        warm = prove_libraries([build_library()], cache=cache)["lib"].as_dict()
        assert json.dumps(cold, sort_keys=True) == json.dumps(
            warm, sort_keys=True
        )

    def test_edited_lemma_body_invalidates(self, tmp_path):
        cache = ProofCache(root=tmp_path)
        prove_libraries([build_library(body=lambda x: x * x >= 0)], cache=cache)
        edited = build_library(body=lambda x: x * x >= 0 * x)
        hits_before = cache.hits
        report = prove_libraries([edited], cache=cache)["lib"]
        assert report.proved
        # zebra and alpha are unchanged (hits); mid was edited (miss).
        assert cache.hits - hits_before == 2
        assert cache.misses == 3 + 1

    def test_failures_never_cached(self, tmp_path):
        cache = ProofCache(root=tmp_path)

        def broken(x):
            return x < 5

        for _ in range(2):
            report = prove_libraries(
                [build_library(body=broken)], cache=cache
            )["lib"]
            assert not report.proved
        # mid missed both times; its red result was never stored.
        assert cache.stats()["entries"] == 2
        assert cache.misses >= 2

    def test_prove_all_cache_requires_runner_hook(self, tmp_path):
        from repro.verify import lemma as lemma_module

        hook = lemma_module._prove_batch
        try:
            lemma_module._prove_batch = None
            with pytest.raises(VerificationError, match="batch runner"):
                build_library().prove_all(parallel=2)
        finally:
            lemma_module._prove_batch = hook
